from setuptools import find_packages, setup

with open("README.md", encoding="utf-8") as handle:
    long_description = handle.read()

setup(
    name="repro-split-correctness",
    version="1.5.0",
    description=(
        "Split-correctness in information extraction (PODS 2019): "
        "document spanners, splitters, decision procedures, and a "
        "corpus-scale extraction engine"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.__main__:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Topic :: Text Processing :: Indexing",
    ],
)
