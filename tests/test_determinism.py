"""Tests for determinism notions and determinization (Section 4.2-4.3)."""

import pytest
from hypothesis import given

from repro.automata.dfa import random_dfa
from repro.automata.nfa import NFA
from repro.core.spans import Span, SpanTuple
from repro.spanners.containment import spanner_contains
from repro.spanners.determinism import (
    determinize,
    dfvsa_contains,
    dfvsa_equivalent,
    is_deterministic,
    is_dfvsa,
    is_weakly_deterministic,
    lexicographic_normalize,
)
from repro.spanners.refwords import Close, Open, gamma
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.reductions import (
    union_universality_instance,
    weak_determinism_containment_instance,
)
from tests.conftest import formula_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


def weakly_det_not_det():
    """Opens y before x (violating the fixed order) deterministically."""
    alphabet = AB | gamma(["x", "y"])
    transitions = [
        (0, Open("y"), 1),
        (1, Open("x"), 2),
        (2, "a", 3),
        (3, Close("x"), 4),
        (4, Close("y"), 5),
    ]
    return VSetAutomaton(AB, ["x", "y"],
                         NFA(alphabet, range(6), 0, [5], transitions))


class TestPredicates:
    def test_weakly_deterministic(self):
        auto = weakly_det_not_det()
        assert is_weakly_deterministic(auto)
        assert not is_deterministic(auto)

    def test_epsilon_breaks_weak_determinism(self):
        spanner = compile_regex_formula("x{a}|x{b}", AB)
        assert not is_weakly_deterministic(spanner)

    def test_ordered_is_deterministic(self):
        alphabet = AB | gamma(["x", "y"])
        transitions = [
            (0, Open("x"), 1),
            (1, Open("y"), 2),
            (2, "a", 3),
            (3, Close("x"), 4),
            (4, Close("y"), 5),
        ]
        auto = VSetAutomaton(AB, ["x", "y"],
                             NFA(alphabet, range(6), 0, [5], transitions))
        assert is_deterministic(auto)
        assert is_dfvsa(auto)


class TestDeterminization:
    @given(formula_nodes_st())
    def test_proposition_4_4(self, node):
        # determinize() yields an equivalent deterministic functional VSA.
        spanner = compile_regex_formula(node, AB, require_functional=False)
        det = determinize(spanner)
        assert is_deterministic(det)
        assert det.is_functional()
        for document in documents_upto(AB, 3):
            assert det.evaluate(document) == spanner.evaluate(document)

    def test_determinize_out_of_order_ops(self):
        det = determinize(weakly_det_not_det())
        assert is_dfvsa(det)
        assert det.evaluate("a") == {
            SpanTuple({"x": Span(1, 2), "y": Span(1, 2)})
        }

    @given(formula_nodes_st())
    def test_lexicographic_normalize(self, node):
        spanner = compile_regex_formula(node, AB, require_functional=False)
        normalized = lexicographic_normalize(spanner)
        assert normalized.is_functional()
        for document in documents_upto(AB, 3):
            assert normalized.evaluate(document) == spanner.evaluate(document)


class TestDfvsaContainment:
    def test_theorem_4_3(self):
        small = determinize(compile_regex_formula(".*x{a}.*", AB))
        large = determinize(compile_regex_formula(".*x{a|b}.*", AB))
        assert dfvsa_contains(small, large)
        assert not dfvsa_contains(large, small)
        assert dfvsa_equivalent(large, large)

    def test_preconditions_checked(self):
        nondet = compile_regex_formula(".*x{a}.*", AB)
        det = determinize(nondet)
        with pytest.raises(ValueError):
            dfvsa_contains(nondet, det)

    def test_variable_sets_must_match(self):
        left = determinize(compile_regex_formula("x{a}", AB))
        right = determinize(compile_regex_formula("y{a}", AB))
        with pytest.raises(ValueError):
            dfvsa_contains(left, right)

    @given(formula_nodes_st(), formula_nodes_st())
    def test_agrees_with_general_containment(self, n1, n2):
        from repro.spanners.regex_formulas import svars

        if svars(n1) != svars(n2):
            return
        left = determinize(compile_regex_formula(n1, AB,
                                                 require_functional=False))
        right = determinize(compile_regex_formula(n2, AB,
                                                  require_functional=False))
        assert dfvsa_contains(left, right) == spanner_contains(left, right)


class TestTheorem42Family:
    """The weakly-deterministic hardness family refuting [25]'s coNP claim."""

    def test_instances_are_weakly_deterministic_shaped(self):
        dfas = [random_dfa("cd", 2, seed=1), random_dfa("cd", 2, seed=2)]
        a, a_prime = weak_determinism_containment_instance(dfas, "cd")
        assert a.is_functional()
        assert a_prime.is_functional()

    @pytest.mark.parametrize("seed", range(6))
    def test_reduction_correct(self, seed):
        dfas = [random_dfa("cd", 3, seed=seed * 7 + k) for k in range(2)]
        truth = union_universality_instance(dfas, "cd")
        a, a_prime = weak_determinism_containment_instance(dfas, "cd")
        assert spanner_contains(a, a_prime) == truth

    def test_universal_union_contained(self):
        # A_1 = c*, A_2 = everything-else cover Sigma*.
        from repro.automata.regex import regex_to_nfa

        cover1 = regex_to_nfa("c*", frozenset("cd")).to_dfa()
        cover2 = regex_to_nfa("(c|d)*d(c|d)*", frozenset("cd")).to_dfa()
        a, a_prime = weak_determinism_containment_instance(
            [cover1, cover2], "cd"
        )
        assert spanner_contains(a, a_prime)
