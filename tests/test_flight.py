"""Tests for the service-grade introspection layer: the structured
event log (:mod:`repro.obs.log`), the query flight recorder
(:mod:`repro.obs.flight`), the sampling profiler
(:mod:`repro.obs.profile`), and the live ``/debug`` endpoints wired
through :class:`repro.serve.ExtractionService` and
:class:`repro.serve.ServiceHTTPServer`."""

import asyncio
import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import Corpus, ExtractionEngine, Program
from repro.errors import DeadlineExceededError
from repro.obs import (
    FlightRecorder,
    QueryRecord,
    SamplingProfiler,
    Tracer,
    configure_event_log,
    event_log,
    phase_durations,
    profile_for,
)
from repro.obs.log import EventLog
from repro.obs.profile import fold_frame, thread_role
from repro.obs.trace import SpanRecord
from repro.query import Q, Spanner
from repro.runtime import FastSeparatorSplitter, RegisteredSplitter
from repro.serve import ExtractionService, ServiceHTTPServer
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter

TXT = frozenset("ab .")
PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
           "|.*(\\.| )y{a+}|y{a+}")

DOCS = ["aa ab a.", "ab ab aa.", "aa ab a.", "b aa b"]


def a_run_extractor():
    return compile_regex_formula(PATTERN, TXT)


def registry():
    return [
        RegisteredSplitter("tokens", token_splitter(TXT), priority=1,
                           executor=FastSeparatorSplitter(" ")),
    ]


class SlowSpanner:
    """Per-chunk evaluation takes ``delay`` seconds — what makes
    wall-clock deadlines fire mid-run reliably."""

    def __init__(self, specification, delay=0.02):
        self.specification = specification
        self.delay = delay

    def evaluate(self, text):
        time.sleep(self.delay)
        return set(self.specification.evaluate(text))


def make_service(workers=0, batch_size=2, flight=None, program=None,
                 **kwargs):
    engine = ExtractionEngine(registry(), workers=workers,
                              batch_size=batch_size)
    if program is None:
        program = Program(a_run_extractor(), name="a-runs")
    return ExtractionService(engine, program=program, flight=flight,
                             **kwargs)


@pytest.fixture
def captured_events():
    """A StringIO sink attached to the global event log for the test's
    duration; yields a function returning the parsed JSON lines."""
    stream = io.StringIO()
    handler = configure_event_log(stream=stream)

    def lines():
        return [json.loads(line)
                for line in stream.getvalue().splitlines()]

    yield lines
    event_log().detach(handler)


# ----------------------------------------------------------------------
# The structured event log
# ----------------------------------------------------------------------


class TestEventLog:
    def test_disabled_without_handlers(self):
        log = EventLog(name="repro.test.disabled")
        assert not log.enabled
        assert log.emit("anything", n=1) is None

    def test_emit_envelope_is_one_json_line(self):
        log = EventLog(name="repro.test.envelope")
        stream = io.StringIO()
        handler = log.attach(__import__("logging").StreamHandler(stream))
        try:
            payload = log.emit("unit.ping", tenant="acme", answer=42)
        finally:
            log.detach(handler)
        assert payload["event"] == "unit.ping"
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        for key in ("ts", "mono", "level", "event", "pid"):
            assert key in parsed
        assert parsed["tenant"] == "acme"
        assert parsed["answer"] == 42

    def test_level_filtering_at_handler(self):
        stream = io.StringIO()
        log = EventLog(name="repro.test.levels")
        handler = __import__("logging").StreamHandler(stream)
        handler.setLevel(__import__("logging").WARNING)
        log.attach(handler)
        try:
            log.emit("quiet", level="info")
            log.emit("loud", level="warning")
        finally:
            log.detach(handler)
        events = [json.loads(line)["event"]
                  for line in stream.getvalue().splitlines()]
        assert events == ["loud"]

    def test_span_id_from_bound_tracer(self):
        log = EventLog(name="repro.test.spans")
        stream = io.StringIO()
        handler = log.attach(__import__("logging").StreamHandler(stream))
        tracer = Tracer()
        log.bind_tracer(tracer)
        try:
            with tracer.span("phase") as span:
                payload = log.emit("inside")
            outside = log.emit("outside")
        finally:
            log.detach(handler)
        assert payload["span"] == span.span_id
        assert "span" not in outside

    def test_configure_needs_exactly_one_destination(self):
        with pytest.raises(ValueError):
            configure_event_log()
        with pytest.raises(ValueError):
            configure_event_log(path="x", stream=io.StringIO())

    def test_configure_path_appends_json_lines(self, tmp_path):
        target = tmp_path / "events.jsonl"
        handler = configure_event_log(path=str(target))
        try:
            event_log().emit("file.ping", n=1)
            event_log().emit("file.ping", n=2)
        finally:
            event_log().detach(handler)
        lines = target.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]

    def test_global_log_disabled_by_default_after_detach(self):
        assert not event_log().enabled
        assert event_log().emit("nobody.listening") is None


# ----------------------------------------------------------------------
# phase_durations over drained records
# ----------------------------------------------------------------------


def _record(name, span_id, parent_id, duration, pid=1):
    return SpanRecord(name=name, span_id=span_id, parent_id=parent_id,
                      start=0.0, duration=duration, pid=pid, tid=1)


class TestPhaseDurations:
    def test_same_name_descendants_not_double_counted(self):
        records = [
            _record("evaluate", 1, None, 1.0),
            _record("evaluate", 2, 1, 0.4, pid=2),   # worker span
            _record("merge", 3, None, 0.1),
        ]
        totals = phase_durations(records)
        assert totals["evaluate"] == pytest.approx(1.0)
        assert totals["merge"] == pytest.approx(0.1)

    def test_matches_tracer_method(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert phase_durations(tracer.records()) \
            == tracer.phase_durations()


# ----------------------------------------------------------------------
# The flight recorder
# ----------------------------------------------------------------------


def _query_record(query_id="q-1", outcome="ok", queue_seconds=0.0,
                  run_seconds=0.01, **overrides):
    fields = dict(
        query_id=query_id, program="p", fingerprint="f",
        tenant="default", outcome=outcome, error=None, started=0.0,
        queue_seconds=queue_seconds, run_seconds=run_seconds,
        documents=1, tuples=1, deadline_budget=None,
    )
    fields.update(overrides)
    return QueryRecord(**fields)


class TestFlightRecorder:
    def test_ring_retains_last_capacity(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record(_query_record(query_id=f"q-{index}"))
        assert [r.query_id for r in recorder.recent()] \
            == ["q-2", "q-3", "q-4"]
        assert recorder.get("q-0") is None
        assert recorder.get("q-4").query_id == "q-4"
        assert recorder.describe()["recorded"] == 5

    def test_slow_threshold_routes_to_slow_log(self):
        recorder = FlightRecorder(capacity=8, slow_threshold=0.1)
        fast = recorder.record(_query_record("fast", run_seconds=0.01))
        slow = recorder.record(_query_record("slow", run_seconds=0.5))
        assert not fast.slow and slow.slow
        assert [r.query_id for r in recorder.slow()] == ["slow"]

    def test_queue_wait_counts_toward_slowness(self):
        recorder = FlightRecorder(slow_threshold=0.1)
        record = recorder.record(_query_record(
            queue_seconds=0.09, run_seconds=0.02))
        assert record.slow

    def test_deadline_miss_always_kept(self):
        recorder = FlightRecorder(slow_threshold=100.0)
        miss = recorder.record(_query_record(
            "miss", outcome="DeadlineExceededError"))
        assert miss.slow
        assert recorder.get("miss") is not None
        opt_out = FlightRecorder(slow_threshold=100.0,
                                 capture_deadline_misses=False)
        assert not opt_out.record(_query_record(
            "m2", outcome="DeadlineExceededError")).slow

    def test_explain_resolved_only_for_slow_queries(self):
        calls = []

        def explain():
            calls.append(1)
            return {"plan": "here"}

        recorder = FlightRecorder(slow_threshold=0.1)
        recorder.record(_query_record("fast", run_seconds=0.01),
                        explain=explain)
        assert calls == []
        slow = recorder.record(_query_record("slow", run_seconds=0.5),
                               explain=explain)
        assert calls == [1]
        assert slow.explain == {"plan": "here"}

    def test_spans_populate_phases_pids_and_slow_tree(self):
        spans = [
            _record("evaluate", 1, None, 0.2, pid=11),
            _record("evaluate", 2, 1, 0.1, pid=22),
        ]
        recorder = FlightRecorder(slow_threshold=0.0)
        record = recorder.record(_query_record(), span_records=spans)
        assert record.phases["evaluate"] == pytest.approx(0.2)
        assert record.pids == (11, 22)
        assert [node["name"] for node in record.span_tree] \
            == ["evaluate", "evaluate"]

    def test_slow_log_outlives_the_ring(self):
        recorder = FlightRecorder(capacity=2, slow_threshold=0.1)
        recorder.record(_query_record("slow-0", run_seconds=1.0))
        for index in range(4):
            recorder.record(_query_record(f"fill-{index}",
                                          run_seconds=0.01))
        assert recorder.get("slow-0") is not None  # evicted from ring
        assert all(r.query_id != "slow-0" for r in recorder.recent())

    def test_to_dict_shapes(self):
        record = _query_record()
        summary = record.to_dict()
        assert "span_tree" not in summary
        full = record.to_dict(full=True)
        assert "span_tree" in full and "explain" in full
        json.dumps(full)  # JSON-serializable as served

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(keep_slow=0)
        with pytest.raises(ValueError):
            FlightRecorder(slow_threshold=-1.0)


# ----------------------------------------------------------------------
# The sampling profiler
# ----------------------------------------------------------------------


class TestSamplingProfiler:
    def test_sample_once_counts_this_thread(self):
        profiler = SamplingProfiler(hz=10)
        assert profiler.sample_once() >= 1
        roles = profiler.by_role()
        assert sum(roles.values()) >= 1

    def test_collapsed_stack_format(self):
        profiler = SamplingProfiler(hz=10)
        profiler.sample_once()
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) >= 1
            assert ";" in stack  # role prefix + at least one frame

    def test_start_stop_collects_samples(self):
        profiler = SamplingProfiler(hz=200)
        with profiler:
            deadline = time.perf_counter() + 0.2
            while time.perf_counter() < deadline:
                sum(i * i for i in range(1000))
        stats = profiler.stats()
        assert stats["samples"] > 0
        assert not stats["running"]
        assert profiler.snapshot()["by_role"]

    def test_by_query_attribution(self):
        current = {"id": "q-42"}
        profiler = SamplingProfiler(
            hz=10, current_query=lambda: current["id"])
        profiler.sample_once()
        current["id"] = None
        profiler.sample_once()
        assert profiler.by_query() == {"q-42": 1}

    def test_profile_for_runs_and_stops(self):
        profiler = profile_for(0.1, hz=100)
        assert profiler.stats()["samples"] > 0
        assert not profiler.stats()["running"]

    def test_thread_roles(self):
        assert thread_role("MainThread") == "main"
        assert thread_role("repro-service-dispatcher") == "dispatcher"
        assert thread_role("worker-7") == "worker-7"

    def test_fold_frame_root_first(self):
        import sys

        frame = sys._current_frames()[threading.get_ident()]
        folded = fold_frame(frame)
        assert folded.split(";")[-1].startswith(__name__)

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestServiceFlightRecording:
    def test_result_carries_record(self):
        flight = FlightRecorder(capacity=8)
        with make_service(flight=flight) as service:
            result = service.extract(DOCS, tenant="acme")
        record = result.record
        assert record is not None
        assert result.query_id == record.query_id
        assert record.outcome == "ok" and record.ok
        assert record.tenant == "acme"
        assert record.documents == len(DOCS)
        assert record.tuples == result.total_tuples
        assert record.kernel_tier is not None
        assert record.phases.get("evaluate", 0) > 0
        assert record.counters["documents"] == len(DOCS)
        assert service.flight_record(record.query_id) is not None

    def test_recording_off_means_no_record(self):
        with make_service() as service:
            result = service.extract(DOCS)
        assert result.record is None
        assert result.query_id is None

    def test_capture_spans_false_leaves_engine_untraced(self):
        flight = FlightRecorder(capacity=8, capture_spans=False)
        with make_service(flight=flight) as service:
            assert not service._engine.tracer.enabled
            result = service.extract(DOCS)
        assert result.record.phases == {}
        assert result.record.run_seconds > 0

    def test_slow_query_gets_span_tree_and_explain(self):
        flight = FlightRecorder(capacity=8, slow_threshold=0.0)
        with make_service(flight=flight) as service:
            service.extract(DOCS)
        (slow,) = service.slow_queries()
        assert slow["slow"]
        assert slow["span_tree"]
        assert {"certify", "split", "schedule"} \
            <= {node["name"] for node in slow["span_tree"]}
        assert slow["explain"]["plan"]["kernel_tier"] is not None
        assert "index" in slow["explain"]

    def test_explicit_query_id_respected(self):
        flight = FlightRecorder(capacity=8)
        with make_service(flight=flight) as service:
            result = service.extract(DOCS, query_id="req-abc")
        assert result.query_id == "req-abc"
        assert service.flight_record("req-abc") is not None

    def test_inflight_view(self):
        flight = FlightRecorder(capacity=8)
        with make_service(flight=flight) as service:
            service.extract(DOCS, tenant="acme")
            view = service.inflight()
        assert view["queue_depth"] == 0
        assert view["running"] is None
        assert view["tenants"]["acme"]["queries"] == 1
        assert view["flight"]["retained"] == 1
        json.dumps(view)

    def test_current_query_id_visible_during_execution(self):
        flight = FlightRecorder(capacity=8)
        seen = []

        class Peeking:
            def __init__(self, specification, service_ref):
                self.specification = specification
                self.service_ref = service_ref

            def evaluate(self, text):
                seen.append(self.service_ref[0].current_query_id())
                return set(self.specification.evaluate(text))

        service_ref = []
        program = Program(Peeking(a_run_extractor(), service_ref),
                          name="peek")
        service = make_service(flight=flight, program=program)
        service_ref.append(service)
        with service:
            result = service.extract(DOCS)
            assert service.current_query_id() is None
        assert set(seen) == {result.query_id}

    def test_admission_and_completion_events(self, captured_events):
        flight = FlightRecorder(capacity=8)
        with make_service(flight=flight) as service:
            service.extract(DOCS, tenant="acme")
        events = [line["event"] for line in captured_events()]
        assert "service.admit" in events
        assert "service.complete" in events
        complete = next(line for line in captured_events()
                        if line["event"] == "service.complete")
        assert complete["tenant"] == "acme"
        assert complete["query_id"].startswith("q-")
        assert complete["tuples"] > 0


class TestDeadlineMissObservability:
    """The cross-process satellite: a workers=2 deadline miss produces
    a structured log line, a slow flight record with a multi-pid span
    tree, and an engine/pool that keep serving."""

    @pytest.fixture
    def missed(self, captured_events):
        flight = FlightRecorder(capacity=16, slow_threshold=None)
        program = Program(SlowSpanner(a_run_extractor(), delay=0.05),
                          name="molasses")
        service = make_service(workers=2, batch_size=2, flight=flight,
                               program=program)
        with service:
            # Warm up: build the traced pool and certify, off-budget.
            service.extract(["aa ab", "ab aa"])
            # Every token distinct so chunk dedup can't shrink the
            # workload: 48 unique chunks at 0.05 s each across 2
            # workers is ~1.2 s of evaluation against a 0.3 s budget.
            unique = [" ".join("a" * (3 * i + j + 1) for j in range(3))
                      for i in range(16)]
            with pytest.raises(DeadlineExceededError):
                service.extract(unique, tenant="dm", deadline=0.3)
            # (c) unchanged engine/pool health: the same service keeps
            # answering correctly after the miss.
            follow_up = service.extract(DOCS, tenant="dm")
            yield service, follow_up, captured_events

    def test_structured_log_line(self, missed):
        _service, _follow_up, events = missed
        (line,) = [line for line in events()
                   if line["event"] == "service.deadline_miss"]
        assert line["tenant"] == "dm"
        assert line["error"] == "DeadlineExceededError"
        assert line["level"] == "warning"
        assert line["slow"] is True
        assert line["run_seconds"] > 0

    def test_slow_record_has_multi_pid_span_tree(self, missed):
        service, _follow_up, _events = missed
        records = [record for record in service.slow_queries()
                   if record["outcome"] == "DeadlineExceededError"]
        (record,) = records
        assert record["deadline_budget"] == pytest.approx(0.3)
        assert record["phases"].get("evaluate", 0) > 0
        pids = {node["pid"] for node in record["span_tree"]}
        assert len(pids) >= 2          # dispatcher + pool worker(s)
        assert set(record["pids"]) == pids

    def test_service_health_after_miss(self, missed):
        service, follow_up, _events = missed
        assert follow_up.total_tuples > 0
        assert follow_up.record.outcome == "ok"
        stats = service.tenant_stats("dm")
        assert stats["deadline_misses"] == 1
        assert stats["queries"] == 2


# ----------------------------------------------------------------------
# HTTP /debug endpoints and request ids
# ----------------------------------------------------------------------


@pytest.fixture
def debug_http_service():
    flight = FlightRecorder(capacity=16, slow_threshold=0.0)
    service = make_service(flight=flight, max_queue=16).start()
    server = ServiceHTTPServer(service)
    bound = {}
    ready = threading.Event()

    def run():
        async def main():
            bound["loop"] = asyncio.get_running_loop()
            bound["addr"] = await server.start(port=0)
            ready.set()
            await server.serve_forever()
        try:
            asyncio.run(main())
        except asyncio.CancelledError:
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    host, port = bound["addr"]
    yield f"http://{host}:{port}", service
    asyncio.run_coroutine_threadsafe(server.stop(), bound["loop"])
    thread.join(timeout=10)
    service.close()


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response), response.headers


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.load(response), response.headers


class TestDebugEndpoints:
    def test_request_id_header_on_success(self, debug_http_service):
        base, _service = debug_http_service
        status, payload, headers = _post(
            base + "/extract", {"texts": list(DOCS)})
        assert status == 200
        assert headers["X-Repro-Request-Id"].startswith("q-")

    def test_extract_id_matches_flight_record(self, debug_http_service):
        base, service = debug_http_service
        _status, _payload, headers = _post(
            base + "/extract", {"texts": list(DOCS), "tenant": "web"})
        request_id = headers["X-Repro-Request-Id"]
        status, record, _ = _get(base + f"/debug/queries/{request_id}")
        assert status == 200
        assert record["query_id"] == request_id
        assert record["tenant"] == "web"
        assert record["outcome"] == "ok"

    def test_error_carries_request_id(self, debug_http_service,
                                      captured_events):
        base, _service = debug_http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base + "/extract",
                  {"texts": ["aa ab"], "deadline_ms": 0})
        assert info.value.code == 504
        header_id = info.value.headers["X-Repro-Request-Id"]
        body = json.load(info.value)
        assert body["request_id"] == header_id
        logged = [line for line in captured_events()
                  if line["event"] == "http.error"]
        assert any(line["request_id"] == header_id
                   and line["status"] == 504 for line in logged)

    def test_debug_queries_lists_summaries(self, debug_http_service):
        base, _service = debug_http_service
        _post(base + "/extract", {"texts": list(DOCS)})
        status, payload, _ = _get(base + "/debug/queries")
        assert status == 200
        assert payload["recording"] is True
        (query,) = payload["queries"]
        assert query["outcome"] == "ok"
        assert "span_tree" not in query  # summaries stay light

    def test_debug_slow_returns_full_records(self, debug_http_service):
        base, _service = debug_http_service
        _post(base + "/extract", {"texts": list(DOCS)})
        _status, payload, _ = _get(base + "/debug/slow")
        (record,) = payload["slow"]   # slow_threshold=0: everything
        assert record["span_tree"]
        assert record["explain"]

    def test_debug_unknown_query_is_404(self, debug_http_service):
        base, _service = debug_http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base + "/debug/queries/q-nope")
        assert info.value.code == 404
        assert json.load(info.value)["error"] == "unknown_query"

    def test_debug_inflight(self, debug_http_service):
        base, _service = debug_http_service
        _post(base + "/extract", {"texts": list(DOCS), "tenant": "web"})
        _status, payload, _ = _get(base + "/debug/inflight")
        assert payload["queue_depth"] == 0
        assert payload["tenants"]["web"]["queries"] == 1
        assert payload["flight"]["capacity"] == 16

    def test_debug_profile(self, debug_http_service):
        base, _service = debug_http_service
        _status, payload, _ = _get(
            base + "/debug/profile?seconds=0.2&hz=100")
        assert payload["seconds"] == pytest.approx(0.2)
        assert payload["stats"]["samples"] > 0
        assert payload["by_role"]
        assert isinstance(payload["collapsed"], str)

    def test_debug_profile_rejects_bad_params(self, debug_http_service):
        base, _service = debug_http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base + "/debug/profile?seconds=banana")
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base + "/debug/profile?seconds=-1")
        assert info.value.code == 400

    def test_debug_limit_validation(self, debug_http_service):
        base, _service = debug_http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base + "/debug/queries?limit=many")
        assert info.value.code == 400


# ----------------------------------------------------------------------
# The fluent route
# ----------------------------------------------------------------------


class TestFluentRecorded:
    def test_recorded_serve_round_trip(self):
        spanner = Spanner.regex(PATTERN, TXT)
        service = Q(spanner).split_by("tokens") \
            .recorded(capacity=4, slow_ms=0.0).serve()
        with service:
            result = service.extract(DOCS)
        assert result.record is not None
        assert result.record.slow      # slow_ms=0 keeps everything
        assert service.flight.capacity == 4

    def test_recorded_is_immutable_evolution(self):
        spanner = Spanner.regex(PATTERN, TXT)
        base = Q(spanner).split_by("tokens")
        recorded = base.recorded()
        assert base is not recorded
        assert recorded._flight is not None
        service = base.serve()
        try:
            assert service.flight is None
        finally:
            service.close()
