"""Tests for the classical automata substrate."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.automata import (
    DFA,
    EPSILON,
    NFA,
    count_words_by_length,
    is_unambiguous,
    nfa_contains,
    nfa_equivalent,
    nfa_universal,
    parse_regex,
    regex_to_nfa,
    ufa_contains,
)
from repro.automata.containment import (
    containment_counterexample,
    union_universal,
)
from repro.automata.dfa import random_dfa
from repro.automata.nfa import empty_language_nfa, literal_nfa, universal_nfa
from repro.automata.regex import RegexParseError
from repro.automata.ufa import AmbiguityError
from tests.conftest import documents_st, language_nodes_st

AB = frozenset("ab")


def brute_language(nfa, alphabet, max_length):
    from tests.reference import documents_upto

    return {d for d in documents_upto(alphabet, max_length)
            if nfa.accepts(d)}


class TestNFA:
    def test_accepts(self):
        nfa = regex_to_nfa("a*b", AB)
        assert nfa.accepts("b")
        assert nfa.accepts("aaab")
        assert not nfa.accepts("")
        assert not nfa.accepts("ba")

    def test_epsilon_closure_cycles(self):
        nfa = NFA(AB, [0, 1, 2], 0, [2],
                  [(0, EPSILON, 1), (1, EPSILON, 0), (1, EPSILON, 2)])
        assert nfa.epsilon_closure({0}) == {0, 1, 2}
        assert nfa.accepts("")

    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            NFA(AB, [0], 0, [0], [(0, "c", 0)])

    def test_trim_empty_language(self):
        nfa = NFA(AB, [0, 1], 0, [], [(0, "a", 1)])
        trimmed = nfa.trim()
        assert trimmed.is_empty()
        assert len(trimmed.states) == 1

    def test_shortest_word(self):
        nfa = regex_to_nfa("aab|b", AB)
        assert nfa.shortest_word() == ("b",)
        assert empty_language_nfa(AB).shortest_word() is None
        assert universal_nfa(AB).shortest_word() == ()

    def test_product_intersection(self):
        evens = regex_to_nfa("((a|b)(a|b))*", AB)
        with_a = regex_to_nfa("(a|b)*a(a|b)*", AB)
        product = evens.product(with_a)
        assert brute_language(product, AB, 4) == (
            brute_language(evens, AB, 4) & brute_language(with_a, AB, 4)
        )

    def test_union_concat_star(self):
        left = regex_to_nfa("a", AB)
        right = regex_to_nfa("b", AB)
        assert brute_language(left.union(right), AB, 2) == {"a", "b"}
        assert brute_language(left.concatenate(right), AB, 3) == {"ab"}
        assert "aaa" in brute_language(left.star(), AB, 3)
        assert "" in brute_language(left.star(), AB, 3)

    def test_remove_epsilon_preserves_language(self):
        nfa = regex_to_nfa("(a|~)(b|~)a*", AB)
        clean = nfa.remove_epsilon()
        for state in clean.states:
            assert EPSILON not in clean.symbols_from(state)
        assert brute_language(nfa, AB, 4) == brute_language(clean, AB, 4)

    def test_relabel_preserves_language(self):
        nfa = regex_to_nfa("a(a|b)*b", AB)
        assert brute_language(nfa, AB, 4) == brute_language(nfa.relabel(),
                                                            AB, 4)

    @given(language_nodes_st())
    def test_to_dfa_preserves_language(self, node):
        nfa = regex_to_nfa(node, AB)
        dfa = nfa.to_dfa()
        for word in ["", "a", "b", "ab", "ba", "aab", "bba"]:
            assert nfa.accepts(word) == dfa.accepts(word)


class TestDFA:
    def test_complement(self):
        dfa = regex_to_nfa("a*", AB).to_dfa()
        comp = dfa.complement()
        for word in ["", "a", "aa", "b", "ab"]:
            assert dfa.accepts(word) != comp.accepts(word)

    def test_minimize_reduces_states(self):
        # (a|b)*b has a 2-state minimal DFA.
        dfa = regex_to_nfa("(a|b)*b", AB).to_dfa()
        minimal = dfa.minimize()
        assert len(minimal.states) <= len(dfa.states)
        assert len(minimal.states) == 2

    @given(language_nodes_st())
    def test_minimize_preserves_language(self, node):
        dfa = regex_to_nfa(node, AB).to_dfa()
        minimal = dfa.minimize()
        for word in ["", "a", "b", "ab", "ba", "abab", "bb"]:
            assert dfa.accepts(word) == minimal.accepts(word)

    def test_random_dfa_deterministic_in_seed(self):
        d1 = random_dfa("ab", 4, seed=7)
        d2 = random_dfa("ab", 4, seed=7)
        for word in ["", "a", "ab", "bbb"]:
            assert d1.accepts(word) == d2.accepts(word)


class TestRegexParser:
    def test_postfix_operators(self):
        nfa = regex_to_nfa("a+b?", AB)
        assert nfa.accepts("a")
        assert nfa.accepts("aab")
        assert not nfa.accepts("b")

    def test_escapes_and_specials(self):
        assert regex_to_nfa("~", AB).accepts("")
        assert regex_to_nfa("!", AB).is_empty()
        star = frozenset("a*")
        assert regex_to_nfa("\\*", star).accepts("*")

    def test_any_symbol(self):
        nfa = regex_to_nfa(".", AB)
        assert nfa.accepts("a") and nfa.accepts("b")
        assert not nfa.accepts("")

    def test_parse_errors(self):
        for bad in ["(a", "a)", "*a", "a|*", "\\"]:
            with pytest.raises(RegexParseError):
                parse_regex(bad)

    def test_to_string_roundtrip(self):
        node = parse_regex("(a|b)*ab?")
        again = parse_regex(node.to_string())
        n1 = regex_to_nfa(node, AB)
        n2 = regex_to_nfa(again, AB)
        assert nfa_equivalent(n1, n2)


class TestContainment:
    def test_basic(self):
        small = regex_to_nfa("a*b", AB)
        large = regex_to_nfa("(a|b)*b", AB)
        assert nfa_contains(small, large)
        assert not nfa_contains(large, small)

    def test_counterexample_is_shortest(self):
        small = regex_to_nfa("a*b", AB)
        large = regex_to_nfa("(a|b)*b", AB)
        witness = containment_counterexample(large, small)
        assert witness is not None
        assert large.accepts(witness) and not small.accepts(witness)
        assert len(witness) == 2  # "bb" or "ba"+... shortest is length 2

    def test_universality(self):
        assert nfa_universal(regex_to_nfa("(a|b)*", AB))
        assert not nfa_universal(regex_to_nfa("a*", AB))
        # Union universality: a(a|b)* + b(a|b)* + ~ covers everything.
        assert union_universal(
            [regex_to_nfa("a(a|b)*", AB), regex_to_nfa("b(a|b)*|~", AB)], AB
        )
        assert not union_universal(
            [regex_to_nfa("a*", AB), regex_to_nfa("b*a", AB)], AB
        )

    @given(language_nodes_st(), language_nodes_st())
    def test_containment_matches_brute_force(self, left_node, right_node):
        left = regex_to_nfa(left_node, AB)
        right = regex_to_nfa(right_node, AB)
        decided = nfa_contains(left, right)
        brute = brute_language(left, AB, 4) <= brute_language(right, AB, 4)
        if decided:
            assert brute
        else:
            witness = containment_counterexample(left, right)
            assert left.accepts(witness) and not right.accepts(witness)


class TestUFA:
    def test_unambiguous_examples(self):
        assert is_unambiguous(regex_to_nfa("a*b", AB))
        assert is_unambiguous(regex_to_nfa("(a|b)*", AB).to_dfa().to_nfa())
        assert not is_unambiguous(regex_to_nfa("a|a", AB))
        # (a|b)*b is ambiguous as an NFA (two ways through the star).
        assert not is_unambiguous(regex_to_nfa("(ab|a)(b|~)", AB))

    def test_counting(self):
        counts = count_words_by_length(regex_to_nfa("(a|b)*", AB).to_dfa()
                                       .to_nfa(), 4)
        assert counts == [1, 2, 4, 8, 16]

    def test_ufa_containment_agrees_with_general(self):
        small = regex_to_nfa("a*b", AB)
        big = regex_to_nfa("(a|b)*b", AB).to_dfa().minimize().to_nfa()
        assert ufa_contains(small, big) == nfa_contains(small, big)
        assert ufa_contains(big, small) == nfa_contains(big, small)

    def test_ambiguity_error(self):
        ambiguous = regex_to_nfa("a|a", AB)
        fine = regex_to_nfa("(a|b)*", AB).to_dfa().to_nfa()
        with pytest.raises(AmbiguityError):
            ufa_contains(ambiguous, fine)

    @given(language_nodes_st(), language_nodes_st())
    def test_ufa_vs_general_on_determinized(self, n1, n2):
        left = regex_to_nfa(n1, AB).to_dfa().minimize().to_nfa()
        right = regex_to_nfa(n2, AB).to_dfa().minimize().to_nfa()
        assert ufa_contains(left, right) == nfa_contains(left, right)
