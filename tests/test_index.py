"""Tests for the corpus index subsystem (:mod:`repro.index`):
necessary-factor extraction, the trigram posting index, the
plan-integrated chunk prefilter, and the fluent/CLI surfaces."""

import json

import pytest
from hypothesis import given

from repro.engine import Corpus, ExtractionEngine, PlanCache, Program
from repro.index import CorpusIndex, FactorSet, IndexFilter, factors_of
from repro.index.factors import GRAM, formula_candidates
from repro.query import Q, Spanner, Splitter
from repro.errors import ReproError
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.spanners.regex_formulas import (
    compile_regex_formula,
    parse_regex_formula,
)
from repro.splitters.builders import separator_splitter

from tests.conftest import formula_nodes_st

ALPHA = frozenset("abcdefgh qz.")

QZ_PATTERN = (".*(\\.| )y{qz+}(\\.| ).*|y{qz+}(\\.| ).*"
              "|.*(\\.| )y{qz+}|y{qz+}")


def qz_extractor():
    return compile_regex_formula(QZ_PATTERN, ALPHA)


def sentence_registry():
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHA, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


CORPUS_TEXTS = [
    "ab qz cd. ef gh ab. ab ab ab.",
    "cd cd cd. ef ef ef.",
    "qzz ab. gh qz.",
    "",
    "abcd efgh.",
]


# ----------------------------------------------------------------------
# Factor extraction
# ----------------------------------------------------------------------


class TestFactorExtraction:
    def test_required_literal_found_via_ast_and_nfa(self):
        factors = factors_of(qz_extractor())
        assert factors is not None
        assert "qz" in factors.required
        assert factors.min_length >= 2
        assert factors.effective

    def test_nfa_only_path_finds_necessary_letters(self):
        # Strip the remembered formula: the NFA-path analysis alone
        # must still discover the necessary literal.
        spanner = qz_extractor()
        del spanner.formula
        factors = factors_of(spanner)
        assert factors is not None
        assert any("qz" in factor for factor in factors.required)

    def test_factorless_spanner_is_ineffective(self):
        spanner = compile_regex_formula(".*y{a+|b+}.*", ALPHA)
        factors = factors_of(spanner)
        assert factors is not None
        assert not factors.effective
        assert factors.admits("cd cd")  # nothing is ever pruned

    def test_empty_language_prunes_everything(self):
        spanner = compile_regex_formula("!y{a}", ALPHA)
        factors = factors_of(spanner)
        assert factors is not None
        assert factors.empty
        assert not factors.admits("ab qz")

    def test_min_length_of_exact_word(self):
        spanner = compile_regex_formula("y{abcd}", ALPHA)
        factors = factors_of(spanner)
        assert factors.min_length == 4
        assert "abcd" in factors.required
        assert not factors.admits("abc")
        assert factors.admits("abcd")

    def test_trigram_or_filter(self):
        # Two alternative literals: neither is required, but the
        # realizable trigrams cover both branches.
        spanner = compile_regex_formula("y{abcd}|y{efgh}", ALPHA)
        factors = factors_of(spanner)
        assert factors.trigrams is not None
        assert {"abc", "bcd", "efg", "fgh"} <= set(factors.trigrams)
        assert factors.admits("abcd")
        assert factors.admits("efgh")
        assert not factors.admits("adeh")

    def test_out_of_alphabet_text_is_always_admitted(self):
        factors = factors_of(qz_extractor())
        assert factors.admits("UPPERCASE NOT IN ALPHABET")

    def test_non_character_alphabet_unsupported(self):
        from repro.spanners.vset_automaton import VSetAutomaton
        from repro.automata.nfa import NFA
        from repro.spanners.refwords import gamma

        alphabet = frozenset([("tok", 1), ("tok", 2)])
        nfa = NFA(alphabet | gamma(frozenset()), [0], 0, [0],
                  [(0, symbol, 0) for symbol in alphabet])
        spanner = VSetAutomaton(alphabet, frozenset(), nfa)
        assert factors_of(spanner) is None

    def test_formula_candidates_capture_literal_runs(self):
        node = parse_regex_formula(".*x{qz+}(ab|cd)gh.*")
        candidates = formula_candidates(node)
        assert "qz" in candidates
        assert any("gh" in c for c in candidates)

    @given(formula_nodes_st())
    def test_admits_is_sound_on_random_formulas(self, node):
        """Rejected text => empty result, on every short document."""
        try:
            spanner = compile_regex_formula(node, frozenset("ab"))
        except ValueError:
            return
        factors = factors_of(spanner)
        if factors is None:
            return
        documents = ["", "a", "b", "ab", "ba", "aab", "bab", "abab",
                     "bbaa", "aabba"]
        for document in documents:
            if not factors.admits(document):
                assert spanner.evaluate(document) == set()


# ----------------------------------------------------------------------
# The trigram posting index
# ----------------------------------------------------------------------


class TestCorpusIndex:
    def build_index(self, num_shards=1):
        return CorpusIndex.build(
            Corpus.from_texts(CORPUS_TEXTS),
            Splitter.named("sentences", ALPHA),
            num_shards=num_shards,
        )

    def test_build_deduplicates_texts(self):
        index = self.build_index()
        assert index.documents == len(CORPUS_TEXTS)
        assert index.chunk_instances >= len(index)
        assert index.splitter == "sentences"
        assert "ab qz cd." in index
        assert index.text_id("not indexed") is None

    def test_sharded_build_equals_unsharded(self):
        whole = self.build_index()
        sharded = self.build_index(num_shards=3)
        assert sharded.shards_indexed == 3
        assert len(whole) == len(sharded)
        assert whole.documents == sharded.documents
        factors = factors_of(qz_extractor())
        whole_mask = whole.candidates(factors)
        # Text ids differ per build order; compare admitted text sets.
        admitted = {
            text for text in CORPUS_TEXTS[0].split(". ")
            if whole_mask is not None
        }
        assert admitted is not None  # masks computed without error

    def test_candidates_respect_required_factors(self):
        index = self.build_index()
        factors = factors_of(qz_extractor())
        mask = index.candidates(factors)
        assert mask is not None
        for text in ["ab qz cd.", "qzz ab.", "gh qz."]:
            assert (mask >> index.text_id(text)) & 1
        for text in ["cd cd cd.", "ef ef ef.", "abcd efgh."]:
            assert not (mask >> index.text_id(text)) & 1

    def test_candidates_long_factor_uses_trigram_approximation(self):
        index = CorpusIndex()
        hit = index.add_text("xxabcdexx".replace("x", "a"))
        miss = index.add_text("gh gh gh")
        factors = FactorSet(ALPHA, required=("abcde",))
        mask = index.candidates(factors)
        assert (mask >> hit) & 1
        assert not (mask >> miss) & 1

    def test_candidates_without_conditions_is_none(self):
        index = self.build_index()
        assert index.candidates(FactorSet(ALPHA)) is None
        assert CorpusIndex().candidates(
            FactorSet(ALPHA, required=("qz",))
        ) is None  # empty index cannot help

    def test_empty_language_candidates_nothing(self):
        index = self.build_index()
        assert index.candidates(FactorSet(ALPHA, empty=True)) == 0

    def test_short_texts_survive_trigram_or_filter(self):
        index = CorpusIndex()
        short = index.add_text("ab")  # no trigrams: must stay candidate
        long_miss = index.add_text("ghghgh")
        factors = FactorSet(ALPHA, trigrams=frozenset(["abc"]))
        mask = index.candidates(factors)
        assert (mask >> short) & 1
        assert not (mask >> long_miss) & 1

    def test_save_load_roundtrip(self, tmp_path):
        index = self.build_index(num_shards=2)
        path = str(tmp_path / "corpus.idx")
        index.save(path)
        loaded = CorpusIndex.load(path)
        assert len(loaded) == len(index)
        assert loaded.splitter == index.splitter
        assert loaded.documents == index.documents
        assert loaded.gram_count() == index.gram_count()
        factors = factors_of(qz_extractor())
        assert loaded.candidates(factors) == index.candidates(factors)

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_text(json.dumps({"version": 99, "texts": [],
                                    "postings": {}}))
        with pytest.raises(ValueError):
            CorpusIndex.load(str(path))

    def test_unicode_chunks_roundtrip(self, tmp_path):
        index = CorpusIndex()
        tid = index.add_text("héllo wörld")
        path = str(tmp_path / "uni.idx")
        index.save(path)
        assert CorpusIndex.load(path).text_id("héllo wörld") == tid


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


class TestEnginePrefilter:
    def engines(self):
        plan_cache = PlanCache()
        baseline = ExtractionEngine(sentence_registry(),
                                    plan_cache=plan_cache)
        filtered = ExtractionEngine(sentence_registry(),
                                    plan_cache=plan_cache, prefilter=True)
        return baseline, filtered

    def test_identical_results_with_pruning(self):
        baseline, filtered = self.engines()
        program = Program(qz_extractor(), name="qz")
        corpus = Corpus.from_texts(CORPUS_TEXTS)
        base = baseline.run(corpus, program)
        fast = filtered.run(corpus, program)
        assert base.by_document == fast.by_document
        stats = filtered.stats()
        assert stats.chunks_pruned > 0
        assert stats.chunks_evaluated < baseline.stats().chunks_evaluated
        assert stats.chunks_total == baseline.stats().chunks_total
        assert 0 < stats.prune_rate <= 1

    def test_indexed_engine_agrees_and_prunes(self):
        baseline, _ = self.engines()
        program = Program(qz_extractor(), name="qz")
        corpus = Corpus.from_texts(CORPUS_TEXTS)
        engine = ExtractionEngine(sentence_registry())
        index = engine.build_index(corpus, program)
        assert engine.index is None  # build does not attach
        engine.attach_index(index)
        assert engine.index is index
        result = engine.run(corpus, program)
        assert result.by_document == baseline.run(corpus, program) \
            .by_document
        assert engine.stats().chunks_pruned > 0

    def test_prefilter_false_never_prunes(self):
        engine = ExtractionEngine(sentence_registry(), prefilter=False)
        engine.attach_index(
            engine.build_index(Corpus.from_texts(CORPUS_TEXTS),
                               Program(qz_extractor()))
        )
        engine.run(Corpus.from_texts(CORPUS_TEXTS),
                   Program(qz_extractor()))
        assert engine.stats().chunks_pruned == 0

    def test_default_engine_unchanged(self):
        engine = ExtractionEngine(sentence_registry())
        engine.run(Corpus.from_texts(CORPUS_TEXTS),
                   Program(qz_extractor()))
        assert engine.stats().chunks_pruned == 0

    def test_whole_document_plan_prunes_documents(self):
        # No splitters registered: the whole document is one chunk and
        # non-matching documents are skipped entirely.
        engine = ExtractionEngine([], prefilter=True)
        baseline = ExtractionEngine([])
        program = Program(qz_extractor(), name="qz")
        corpus = Corpus.from_texts(["ab qz cd", "ab cd ef", "gh gh"])
        assert (engine.run(corpus, program).by_document
                == baseline.run(corpus, program).by_document)
        assert engine.stats().chunks_pruned == 2

    def test_prefilter_report_modes(self):
        baseline, filtered = self.engines()
        program = Program(qz_extractor(), name="qz")
        certified = filtered.certify(program)
        report = filtered.prefilter_report(certified)
        assert report["enabled"] and report["mode"] == "scan"
        assert "qz" in report["required"]
        off = baseline.prefilter_report(baseline.certify(program))
        assert not off["enabled"]

    def test_pruned_chunks_never_enter_chunk_cache(self):
        _, filtered = self.engines()
        program = Program(qz_extractor(), name="qz")
        filtered.run(Corpus.from_texts(CORPUS_TEXTS), program)
        stats = filtered.stats()
        assert stats.chunk_cache_misses + stats.chunk_cache_hits \
            == stats.chunks_total - stats.chunks_pruned

    def test_stats_since_and_merge_cover_pruning(self):
        from repro.engine import EngineStats

        first = EngineStats(chunks_total=10, chunks_pruned=4)
        second = EngineStats(chunks_total=16, chunks_pruned=6)
        assert second.since(first).chunks_pruned == 2
        assert first.merge(second).chunks_pruned == 10
        assert "chunks_pruned" in first.snapshot()


# ----------------------------------------------------------------------
# Fluent query surface
# ----------------------------------------------------------------------


class TestQueryIndexed:
    def spanner(self):
        return Spanner.regex(QZ_PATTERN, ALPHA, name="qz")

    def test_auto_index_on_over(self):
        query = Q(self.spanner()).split_by("sentences").indexed()
        results = query.over(CORPUS_TEXTS)
        plain = Q(self.spanner()).split_by("sentences") \
            .over(CORPUS_TEXTS)
        assert results.materialize() == plain.materialize()
        assert results.stats().chunks_pruned > 0
        assert query.engine().index is not None

    def test_prebuilt_index_reaches_engine(self):
        index = CorpusIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                                  Splitter.named("sentences", ALPHA))
        query = Q(self.spanner()).split_by("sentences").indexed(index)
        results = query.over(CORPUS_TEXTS)
        results.materialize()
        assert query.engine().index is index
        assert results.stats().chunks_pruned > 0

    def test_indexed_rejects_non_index(self):
        # Paths (str) are accepted since the binary store landed;
        # other non-index objects still get the typed rejection.
        with pytest.raises(ReproError):
            Q(self.spanner()).indexed(42)

    def test_explain_carries_index_block(self):
        query = Q(self.spanner()).split_by("sentences").indexed()
        results = query.over(CORPUS_TEXTS)
        results.materialize()
        report = results.explain()
        assert report["index"]["enabled"]
        assert report["index"]["mode"] == "indexed"
        assert "qz" in report["index"]["required"]
        assert report["stats"]["chunks_pruned"] > 0

    def test_unindexed_explain_reports_disabled(self):
        results = Q(self.spanner()).split_by("sentences") \
            .over(CORPUS_TEXTS)
        assert not results.explain()["index"]["enabled"]

    def test_factorless_query_falls_back(self):
        spanner = Spanner.regex(".*y{a+|b+}.*", ALPHA)
        indexed = Q(spanner).split_by("sentences").indexed()
        plain = Q(spanner).split_by("sentences")
        assert indexed.over(CORPUS_TEXTS).materialize() \
            == plain.over(CORPUS_TEXTS).materialize()
        report = indexed.over(CORPUS_TEXTS).explain()
        assert not report["index"]["enabled"]
        assert "no effective factors" in report["index"]["reason"]


# ----------------------------------------------------------------------
# The IndexFilter seam
# ----------------------------------------------------------------------


class TestIndexFilter:
    def test_scan_mode_without_index(self):
        factors = factors_of(qz_extractor())
        prefilter = IndexFilter(factors)
        assert prefilter.mode == "scan"
        assert prefilter.admits("ab qz cd")
        assert not prefilter.admits("ab cd ef")

    def test_indexed_mode_rejects_by_mask(self):
        index = CorpusIndex()
        index.add_text("ab qz cd")
        index.add_text("ab cd ef")
        prefilter = IndexFilter(factors_of(qz_extractor()), index)
        assert prefilter.mode == "indexed"
        assert prefilter.admits("ab qz cd")
        assert not prefilter.admits("ab cd ef")
        # Unindexed texts fall back to the scan path.
        assert prefilter.admits("qz gh")
        assert not prefilter.admits("gh gh")

    def test_describe_reports_factors(self):
        prefilter = IndexFilter(factors_of(qz_extractor()))
        described = prefilter.describe()
        assert described["mode"] == "scan"
        assert "qz" in described["required"]

    def test_mask_refreshes_after_incremental_index_growth(self):
        # The advertised incremental build must not leave a filter
        # pruning against a stale candidate snapshot.
        index = CorpusIndex()
        index.add_text("ab cd ef")
        prefilter = IndexFilter(factors_of(qz_extractor()), index)
        assert not prefilter.admits("ab cd ef")
        index.add_document(["qz ab", "gh gh"])
        assert prefilter.admits("qz ab")
        assert not prefilter.admits("gh gh")

    def test_repeated_instances_memoize_decisions(self):
        prefilter = IndexFilter(factors_of(qz_extractor()))
        assert prefilter.admits("ab qz cd")
        assert prefilter._decisions == {"ab qz cd": True}
        assert prefilter.admits("ab qz cd")  # served from the memo

    def test_engine_stays_sound_when_attached_index_grows(self):
        program = Program(qz_extractor(), name="qz")
        engine = ExtractionEngine(sentence_registry())
        baseline = ExtractionEngine(sentence_registry())
        first = Corpus.from_texts(["ab cd ef. gh gh."])
        engine.attach_index(engine.build_index(first, program))
        engine.run(first, program)
        second = Corpus.from_texts(["qz ab. cd cd."], prefix="more")
        # Incremental growth after the engine already cached a filter:
        # index the new document's chunks exactly as splitting will.
        engine.index.add_document(
            FastSeparatorSplitter(".").chunks("qz ab. cd cd.")
        )
        result = engine.run(second, program)
        assert result.by_document == baseline.run(second, program) \
            .by_document


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestIndexCli:
    def test_index_subcommand_builds_and_saves(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "corpus.idx")
        code = main([
            "index", "--alphabet", "abcdefgh qz.",
            "--splitter", "sentences",
            "--text", "ab qz cd. ef gh.", "--text", "ab ab. qz qz.",
            "--output", path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct_texts" in out
        assert f"saved index to {path}" in out
        assert len(CorpusIndex.load(path)) == 4

    def test_index_subcommand_suggests_splitter(self, capsys):
        from repro.__main__ import main

        code = main([
            "index", "--alphabet", "ab .", "--splitter", "sentence",
            "--text", "ab.",
        ])
        assert code == 2
        assert "did you mean 'sentences'" in capsys.readouterr().err

    def test_engine_subcommand_with_index(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "corpus.idx")
        assert main([
            "index", "--alphabet", "abcdefgh qz.",
            "--splitter", "sentences",
            "--text", "ab qz cd. ef gh.",
            "--output", path,
        ]) == 0
        capsys.readouterr()
        code = main([
            "engine", "--pattern", QZ_PATTERN,
            "--alphabet", "abcdefgh qz.",
            "--splitters", "sentences",
            "--text", "ab qz cd. ef gh.",
            "--text", "ab ab cd.",
            "--index", path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "index prefilter" in out
        assert "chunks_pruned: 1" in out

    def test_engine_subcommand_missing_index_file(self, capsys):
        from repro.__main__ import main

        code = main([
            "engine", "--pattern", QZ_PATTERN,
            "--alphabet", "abcdefgh qz.",
            "--splitters", "sentences",
            "--text", "ab qz.",
            "--index", "/nonexistent/corpus.idx",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
