"""Brute-force reference semantics for the test-suite.

Two independent ground truths:

* :func:`ref_eval` -- a *compositional* evaluator for regex formulas,
  implemented directly from the inductive definition of their
  ref-word languages, with no automata involved.  Cross-checking it
  against ``VSetAutomaton.evaluate`` validates the whole compilation
  and evaluation pipeline.
* :func:`documents_upto` plus the semantic deciders below -- exhaustive
  checks of split-correctness/splittability statements on all
  documents up to a bounded length.  A decision procedure that agrees
  with the bounded check on many instances and alphabets is unlikely
  to be wrong in a way the instances exercise.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexNode,
    Star,
    Union_,
)
from repro.core.spans import Span, SpanTuple
from repro.spanners.regex_formulas import Capture, svars
from repro.spanners.vset_automaton import VSetAutomaton


def documents_upto(alphabet: Iterable[str], max_length: int) -> Iterator[str]:
    """All documents over ``alphabet`` of length at most ``max_length``."""
    letters = sorted(set(alphabet))
    for length in range(max_length + 1):
        for combo in iproduct(letters, repeat=length):
            yield "".join(combo)


# ----------------------------------------------------------------------
# Compositional regex-formula evaluation
# ----------------------------------------------------------------------

def _match_sets(
    node: RegexNode, document: str, alphabet: FrozenSet[str]
) -> Dict:
    """``result[(i, j)]`` = set of frozen var->span dicts for matches of
    ``node`` against ``document[i:j]`` (0-based slice indices)."""
    n = len(document)
    out: Dict = {}

    def spans_pairs():
        for i in range(n + 1):
            for j in range(i, n + 1):
                yield i, j

    if isinstance(node, Empty):
        return {}
    if isinstance(node, Epsilon):
        return {(i, i): {frozenset()} for i in range(n + 1)}
    if isinstance(node, Literal):
        return {
            (i, i + 1): {frozenset()}
            for i in range(n)
            if document[i] == node.symbol
        }
    if isinstance(node, AnySymbol):
        return {(i, i + 1): {frozenset()} for i in range(n)}
    if isinstance(node, Capture):
        inner = _match_sets(node.inner, document, alphabet)
        for (i, j), assignments in inner.items():
            bucket = out.setdefault((i, j), set())
            for assignment in assignments:
                keys = {k for k, _ in assignment}
                if node.variable in keys:
                    continue  # invalid: variable opened twice
                bucket.add(
                    assignment | {(node.variable, Span(i + 1, j + 1))}
                )
        return out
    if isinstance(node, Union_):
        left = _match_sets(node.left, document, alphabet)
        right = _match_sets(node.right, document, alphabet)
        for source in (left, right):
            for key, assignments in source.items():
                out.setdefault(key, set()).update(assignments)
        return out
    if isinstance(node, Concat):
        left = _match_sets(node.left, document, alphabet)
        right = _match_sets(node.right, document, alphabet)
        for (i, k), left_assignments in left.items():
            for (k2, j), right_assignments in right.items():
                if k != k2:
                    continue
                bucket = out.setdefault((i, j), set())
                for la in left_assignments:
                    left_vars = {v for v, _ in la}
                    for ra in right_assignments:
                        if left_vars & {v for v, _ in ra}:
                            continue  # invalid: duplicated variable
                        bucket.add(la | ra)
        return out
    if isinstance(node, Star):
        if svars(node.inner):
            raise NotImplementedError(
                "reference evaluator only supports variable-free star "
                "bodies (others are non-functional)"
            )
        inner = _match_sets(node.inner, document, alphabet)
        # Reachability: can document[i:j] be tiled by inner matches?
        reach = {i: {i} for i in range(n + 1)}
        for i in range(n + 1):
            frontier = [i]
            while frontier:
                k = frontier.pop()
                for (a, b) in inner:
                    if a == k and b not in reach[i]:
                        reach[i].add(b)
                        frontier.append(b)
        for i in range(n + 1):
            for j in reach[i]:
                out.setdefault((i, j), set()).add(frozenset())
        return out
    raise TypeError(f"unknown node {node!r}")


def ref_eval(node: RegexNode, document: str,
             alphabet: Optional[Iterable[str]] = None) -> Set[SpanTuple]:
    """``[[alpha]](d)`` straight from the compositional definition.

    Only *whole-document* matches count (``clr(r) = d``); partial
    assignments (branches missing a variable) are filtered out, which
    matches the ref-word validity requirement.
    """
    alphabet = frozenset(alphabet or set(document))
    variables = svars(node)
    matches = _match_sets(node, document, alphabet)
    results: Set[SpanTuple] = set()
    for assignment in matches.get((0, len(document)), ()):
        keys = {v for v, _ in assignment}
        if keys == set(variables):
            results.add(SpanTuple(dict(assignment)))
    return results


# ----------------------------------------------------------------------
# Bounded-domain semantic deciders
# ----------------------------------------------------------------------

def semantically_split_correct(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    max_length: int,
) -> bool:
    """``P = P_S o S`` checked on all documents up to ``max_length``."""
    from repro.core.composition import compose_semantics

    alphabet = spanner.doc_alphabet | splitter.doc_alphabet
    for document in documents_upto(alphabet, max_length):
        direct = spanner.evaluate(document)
        composed = compose_semantics(split_spanner.evaluate, splitter,
                                     document)
        if direct != composed:
            return False
    return True


def semantically_covered(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    max_length: int,
) -> bool:
    """The cover condition checked on all bounded documents."""
    from repro.core.composition import splits_of

    alphabet = spanner.doc_alphabet | splitter.doc_alphabet
    for document in documents_upto(alphabet, max_length):
        tuples = spanner.evaluate(document)
        if not tuples:
            continue
        spans = splits_of(splitter, document)
        for t in tuples:
            if not any(t.covered_by(s) for s in spans):
                return False
    return True


def semantically_disjoint(
    splitter: VSetAutomaton, max_length: int
) -> bool:
    """Splitter disjointness checked on all bounded documents."""
    from repro.core.composition import splits_of

    for document in documents_upto(splitter.doc_alphabet, max_length):
        spans = sorted(splits_of(splitter, document),
                       key=lambda s: (s.begin, s.end))
        for i, first in enumerate(spans):
            for second in spans[i + 1 :]:
                if first.overlaps(second):
                    return False
    return True
