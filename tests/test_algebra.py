"""Tests for the regular spanner algebra (Appendix A)."""

import pytest
from hypothesis import given

from repro.automata.regex import regex_to_nfa
from repro.core.spans import Span, SpanTuple
from repro.spanners.algebra import (
    concat_language_left,
    concat_language_right,
    difference,
    embed_in_context,
    intersect,
    natural_join,
    open_close_wrap,
    project,
    restrict_to_language,
    union,
)
from repro.spanners.containment import spanner_equivalent
from repro.spanners.regex_formulas import compile_regex_formula
from tests.conftest import formula_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


def brute_union(p1, p2, doc):
    return p1.evaluate(doc) | p2.evaluate(doc)


def brute_join(p1, p2, doc):
    out = set()
    for t1 in p1.evaluate(doc):
        for t2 in p2.evaluate(doc):
            if t1.agrees_with(t2):
                out.add(t1.join(t2))
    return out


class TestUnion:
    def test_union_semantics(self):
        p1 = compile_regex_formula("x{a}b", AB)
        p2 = compile_regex_formula("(a)x{b}", AB)
        u = union(p1, p2)
        for document in documents_upto(AB, 3):
            assert u.evaluate(document) == brute_union(p1, p2, document)

    def test_union_compatibility_required(self):
        p1 = compile_regex_formula("x{a}", AB)
        p2 = compile_regex_formula("y{a}", AB)
        with pytest.raises(ValueError):
            union(p1, p2)


class TestProjection:
    def test_projection_semantics(self):
        p = compile_regex_formula(".*x{a}y{b}.*", AB)
        projected = project(p, {"x"})
        assert projected.variables == {"x"}
        for document in documents_upto(AB, 3):
            expected = {
                SpanTuple({"x": t["x"]}) for t in p.evaluate(document)
            }
            assert projected.evaluate(document) == expected

    def test_projection_of_invalid_runs(self):
        # Runs invalid for dropped variables must stay excluded.
        p = compile_regex_formula("x{a}(y{b})?", AB,
                                  require_functional=False)
        projected = project(p, {"x"})
        assert projected.evaluate("a") == set()  # y never assigned
        assert projected.evaluate("ab") == {SpanTuple({"x": Span(1, 2)})}

    def test_projection_to_boolean(self):
        p = compile_regex_formula("x{a+}", AB)
        boolean = project(p, set())
        assert boolean.evaluate("aa") == {SpanTuple({})}
        assert boolean.evaluate("b") == set()


class TestJoin:
    def test_example_join(self):
        p1 = compile_regex_formula(".*x{a}y{b}.*", AB)
        p2 = compile_regex_formula(".*y{b}z{a}.*", AB)
        joined = natural_join(p1, p2)
        assert joined.variables == {"x", "y", "z"}
        for document in documents_upto(AB, 4):
            assert joined.evaluate(document) == brute_join(p1, p2, document)

    def test_join_disjoint_variables_is_cross_product(self):
        p1 = compile_regex_formula("x{a}.*", AB)
        p2 = compile_regex_formula(".*y{b}", AB)
        joined = natural_join(p1, p2)
        for document in documents_upto(AB, 3):
            assert joined.evaluate(document) == brute_join(p1, p2, document)

    def test_join_same_variables_is_intersection(self):
        p1 = compile_regex_formula(".*x{a.}.*", AB)
        p2 = compile_regex_formula(".*x{.b}.*", AB)
        both = intersect(p1, p2)
        for document in documents_upto(AB, 4):
            expected = p1.evaluate(document) & p2.evaluate(document)
            assert both.evaluate(document) == expected

    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_join_matches_brute_force(self, n1, n2):
        p1 = compile_regex_formula(n1, AB, require_functional=False)
        p2 = compile_regex_formula(n2, AB, require_functional=False)
        joined = natural_join(p1, p2)
        for document in documents_upto(AB, 3):
            assert joined.evaluate(document) == brute_join(p1, p2, document)


class TestDifference:
    def test_difference_semantics(self):
        big = compile_regex_formula(".*x{a|b}.*", AB)
        small = compile_regex_formula(".*x{a}.*", AB)
        diff = difference(big, small)
        only_b = compile_regex_formula(".*x{b}.*", AB)
        assert spanner_equivalent(diff, only_b)

    def test_difference_to_empty(self):
        p = compile_regex_formula(".*x{a}.*", AB)
        diff = difference(p, p)
        for document in documents_upto(AB, 3):
            assert diff.evaluate(document) == set()


class TestConcatenation:
    def test_lemma_a3(self):
        p = compile_regex_formula("x{a}", AB)
        lang = regex_to_nfa("b*", AB)
        left = concat_language_left(lang, p)
        assert left.evaluate("bba") == {SpanTuple({"x": Span(3, 4)})}
        right = concat_language_right(p, lang)
        assert right.evaluate("abb") == {SpanTuple({"x": Span(1, 2)})}

    def test_embed_in_context(self):
        p = compile_regex_formula("y{a}", AB)
        embedded = embed_in_context(p, "x")
        result = embedded.evaluate("bab")
        assert result == {
            SpanTuple({"x": Span(2, 3), "y": Span(2, 3)})
        }

    def test_open_close_wrap(self):
        p = compile_regex_formula("y{a}b", AB)
        wrapped = open_close_wrap(p, "x")
        assert wrapped.evaluate("ab") == {
            SpanTuple({"x": Span(1, 3), "y": Span(1, 2)})
        }
        with pytest.raises(ValueError):
            open_close_wrap(p, "y")


class TestRestriction:
    def test_restrict_to_language(self):
        p = compile_regex_formula(".*x{a}.*", AB)
        even = regex_to_nfa("((a|b)(a|b))*", AB)
        restricted = restrict_to_language(p, even)
        assert restricted.evaluate("ab") == p.evaluate("ab")
        assert restricted.evaluate("aba") == set()
        assert p.evaluate("aba") != set()
