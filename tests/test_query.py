"""Tests for the fluent query API (repro.query).

Covers the operator-overload algebra against the free functions of
:mod:`repro.spanners.algebra` (Hypothesis property tests), the lazy
:class:`ResultSet` streaming semantics against materialized engine
results, the shared splitter registry, the typed exception hierarchy,
and the curated top-level namespace.
"""

import pytest
from hypothesis import assume, given

import repro
from repro import (
    CertificationError,
    NotFunctionalError,
    Q,
    Query,
    ReproError,
    Spanner,
    Splitter,
    UnknownSplitterError,
)
from repro.core.api import self_splittable, split_correct
from repro.engine import Corpus, ExtractionEngine
from repro.runtime.executor import evaluate_whole
from repro.spanners import algebra
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import (
    build_named,
    known_splitter_names,
    registry,
    token_splitter,
)
from tests.conftest import documents_st, formula_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")
TXT = frozenset("ab .")
PATTERN = ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}"

CORPUS = [
    "aa ab ba aa.",
    "aa ab ba aa.",      # duplicate: exercises the chunk cache
    "b a ab.",
    "aaa b.",
    "",
]


def _spanner_pair(node1, node2):
    p1 = compile_regex_formula(node1, AB)
    p2 = compile_regex_formula(node2, AB)
    assume(p1.variables == p2.variables)
    return p1, p2


# ----------------------------------------------------------------------
# Operator-overload algebra == free functions
# ----------------------------------------------------------------------


class TestOperatorAlgebra:
    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_or_equals_union(self, node1, node2):
        p1, p2 = _spanner_pair(node1, node2)
        fluent = Spanner(p1) | Spanner(p2)
        free = algebra.union(p1, p2)
        for document in documents_upto(AB, 3):
            assert fluent.evaluate(document) == free.evaluate(document)
            assert fluent.evaluate(document) == (
                p1.evaluate(document) | p2.evaluate(document)
            )

    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_sub_equals_difference(self, node1, node2):
        p1, p2 = _spanner_pair(node1, node2)
        fluent = Spanner(p1) - Spanner(p2)
        free = algebra.difference(p1, p2)
        for document in documents_upto(AB, 3):
            assert fluent.evaluate(document) == free.evaluate(document)
            assert fluent.evaluate(document) == (
                p1.evaluate(document) - p2.evaluate(document)
            )

    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_and_equals_intersect(self, node1, node2):
        p1, p2 = _spanner_pair(node1, node2)
        fluent = Spanner(p1) & Spanner(p2)
        free = algebra.intersect(p1, p2)
        for document in documents_upto(AB, 3):
            assert fluent.evaluate(document) == free.evaluate(document)
            assert fluent.evaluate(document) == (
                p1.evaluate(document) & p2.evaluate(document)
            )

    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_join_equals_natural_join(self, node1, node2):
        p1 = compile_regex_formula(node1, AB)
        p2 = compile_regex_formula(node2, AB)
        fluent = Spanner(p1).join(Spanner(p2))
        free = algebra.natural_join(p1, p2)
        for document in documents_upto(AB, 3):
            assert fluent.evaluate(document) == free.evaluate(document)

    @given(formula_nodes_st(max_depth=2))
    def test_project_equals_projection(self, node):
        p = compile_regex_formula(node, AB)
        assume(p.variables)
        keep = sorted(p.variables)[:1]
        fluent = Spanner(p).project(*keep)
        free = algebra.project(p, frozenset(keep))
        assert fluent.variables == frozenset(keep)
        for document in documents_upto(AB, 3):
            assert fluent.evaluate(document) == free.evaluate(document)

    def test_operators_coerce_raw_automata(self):
        a = Spanner.regex(".*x{a}.*", AB)
        b = compile_regex_formula(".*x{b}.*", AB)
        assert (a | b).evaluate("ab") == \
            algebra.union(a.vsa(), b).evaluate("ab")

    def test_operators_reject_foreign_operands(self):
        a = Spanner.regex(".*x{a}.*", AB)
        with pytest.raises(TypeError):
            a | 42
        # The named methods raise the typed error instead.
        for method in (a.union, a.intersect, a.difference, a.join):
            with pytest.raises(ReproError):
                method("nonsense")

    def test_derived_spanners_certify(self):
        a = Spanner.regex(".*x{a}.*", AB)
        b = Spanner.regex(".*x{b}.*", AB)
        union = a | b
        assert union.vsa().is_functional()


# ----------------------------------------------------------------------
# Spanner / Splitter wrappers
# ----------------------------------------------------------------------


class TestSpannerWrapper:
    def test_regex_constructor_names_and_evaluates(self):
        spanner = Spanner.regex(".*x{a}.*", AB)
        assert spanner.name == ".*x{a}.*"
        assert spanner.variables == {"x"}
        assert {t["x"].begin for t in spanner.evaluate("aba")} == {1, 3}

    def test_from_vsa(self):
        automaton = compile_regex_formula(".*x{a}.*", AB)
        spanner = Spanner.from_vsa(automaton, name="letters")
        assert spanner.specification is automaton
        assert spanner.name == "letters"
        with pytest.raises(ReproError):
            Spanner.from_vsa("not an automaton")

    def test_not_functional_regex_raises_typed_error(self):
        with pytest.raises(NotFunctionalError):
            Spanner.regex("(x{a})*", AB)
        # The typed error still honours legacy except-clauses.
        with pytest.raises(ValueError):
            Spanner.regex("(x{a})*", AB)

    def test_immutable(self):
        spanner = Spanner.regex(".*x{a}.*", AB)
        with pytest.raises(AttributeError):
            spanner.name = "other"

    def test_wrapper_accepted_by_core_api(self):
        spanner = Spanner.regex(PATTERN, TXT)
        tokens = Splitter.named("tokens", TXT)
        raw = self_splittable(spanner.vsa(), tokens.automaton)
        assert self_splittable(spanner, tokens) == raw
        assert split_correct(spanner, spanner, tokens) == raw

    def test_core_api_rejects_unwrappable(self):
        tokens = token_splitter(TXT)
        with pytest.raises(CertificationError):
            self_splittable("not a spanner", tokens)


class TestSplitterWrapper:
    def test_named_uses_registry(self):
        tokens = Splitter.named("tokens", TXT)
        assert tokens.name == "tokens"
        assert tokens.is_disjoint()
        assert tokens.chunks("aa b.") == ["aa", "b."]

    def test_named_parametric(self):
        assert Splitter.named("ngram2", TXT).automaton.variables == {"x"}
        assert Splitter.named("window3", AB).chunks("ababa") == \
            ["aba", "ba"]

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownSplitterError) as excinfo:
            Splitter.named("bogus", AB)
        assert "bogus" in str(excinfo.value)
        for name in ("tokens", "ngram<N>"):
            assert name in str(excinfo.value)

    def test_rejects_non_unary_automata(self):
        binary = compile_regex_formula("x{a}y{b}", AB)
        with pytest.raises(ReproError):
            Splitter.from_vsa(binary)


# ----------------------------------------------------------------------
# The shared registry (CLI == fluent API)
# ----------------------------------------------------------------------


class TestRegistry:
    def test_registry_names_resolve(self):
        # An alphabet containing every builder's required separators.
        alphabet = frozenset("ab .\n#")
        for name in registry():
            automaton = build_named(name, alphabet)
            assert automaton.arity == 1

    def test_parametric_names(self):
        assert build_named("ngram3", TXT).variables == {"x"}
        assert build_named("window8", AB).variables == {"x"}
        # Parameterless forms fall back to the documented defaults.
        assert build_named("ngram", TXT).variables == {"x"}

    def test_known_names_cover_registry_and_families(self):
        known = known_splitter_names()
        assert set(registry()) <= set(known)
        assert "ngram<N>" in known and "window<N>" in known

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(UnknownSplitterError):
            build_named("ngramx", AB)
        with pytest.raises(UnknownSplitterError):
            build_named("sentence", TXT)   # singular: not a name

    def test_cli_unknown_splitter_is_typed_error(self, capsys):
        from repro.__main__ import main

        code = main([
            "analyze", "--pattern", ".*x{a}.*", "--alphabet", "ab",
            "--splitters", "bogus",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown splitter 'bogus'" in err
        assert "tokens" in err

    def test_cli_rejects_zero_batch_size(self, capsys):
        # --batch-size 0 must reach the scheduler's validation, not be
        # silently swallowed by a truthiness check.
        from repro.__main__ import main

        code = main([
            "engine", "--pattern", ".*x{a}.*", "--alphabet", "ab ",
            "--splitters", "tokens", "--text", "a b", "--batch-size", "0",
        ])
        assert code == 2
        assert "batch_size" in capsys.readouterr().err

    def test_analyse_honours_fast_method(self):
        # Under 'fast' the PSPACE procedures never run: nondeterministic
        # candidates report not-self-splittable and undetermined
        # splittability, matching the plan the same planner emits.
        reports = Q(Spanner.regex(PATTERN, TXT)).split_by("tokens") \
            .method("fast").analyse()
        assert reports[0].self_splittable is False
        assert reports[0].splittable is None

    def test_cli_parse_error_exits_2(self, capsys):
        # Regex parse errors are plain ValueErrors from below the
        # fluent surface; the CLI must still report them cleanly.
        from repro.__main__ import main

        code = main([
            "analyze", "--pattern", "(((", "--alphabet", "ab",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Query builder
# ----------------------------------------------------------------------


class TestQueryBuilder:
    def test_chaining_is_immutable(self):
        base = Q(Spanner.regex(PATTERN, TXT))
        derived = base.split_by("tokens").workers(2).batch_size(4)
        assert base.splitters == ()
        assert derived.splitters[0].name == "tokens"
        assert isinstance(derived, Query)
        with pytest.raises(AttributeError):
            derived._method = "fast"

    def test_method_validation(self):
        base = Q(Spanner.regex(PATTERN, TXT))
        with pytest.raises(CertificationError):
            base.method("quantum")

    def test_split_by_accepts_wrappers_and_names(self):
        tokens = Splitter.named("tokens", TXT)
        query = Q(Spanner.regex(PATTERN, TXT)).split_by(tokens, "whole")
        assert [s.name for s in query.splitters] == ["tokens", "whole"]
        with pytest.raises(ReproError):
            query.split_by(42)

    def test_on_single_document_matches_evaluate_whole(self):
        spanner = Spanner.regex(PATTERN, TXT)
        query = Q(spanner).split_by("tokens")
        document = "aa ab ba aa."
        assert query.on(document) == evaluate_whole(spanner.vsa(), document)

    def test_using_shares_an_engine(self):
        alphabet = TXT
        engine = ExtractionEngine(
            [Splitter.named("tokens", alphabet).registered(priority=1)]
        )
        query = Q(Spanner.regex(PATTERN, alphabet)).using(engine)
        assert query.engine() is engine
        results = query.over(CORPUS)
        assert results.materialize()
        assert engine.stats().certifications == 1

    def test_reconfiguring_a_pinned_query_raises(self):
        engine = ExtractionEngine(
            [Splitter.named("tokens", TXT).registered(priority=1)]
        )
        pinned = Q(Spanner.regex(PATTERN, TXT)).using(engine)
        for reconfigure in (lambda: pinned.split_by("whole"),
                            lambda: pinned.method("auto"),
                            lambda: pinned.workers(2),
                            lambda: pinned.batch_size(4)):
            with pytest.raises(ReproError):
                reconfigure()


# ----------------------------------------------------------------------
# ResultSet: lazy streaming == materialized engine results
# ----------------------------------------------------------------------


class TestResultSet:
    def _query(self, **overrides):
        query = Q(Spanner.regex(PATTERN, TXT)).split_by("tokens")
        if "batch_size" in overrides:
            query = query.batch_size(overrides["batch_size"])
        return query

    def test_stream_equals_engine_result(self):
        query = self._query()
        streamed = dict(query.over(CORPUS).stream())
        engine = ExtractionEngine(
            [Splitter.named("tokens", TXT).registered(priority=1)]
        )
        materialized = engine.run(Corpus.from_texts(CORPUS),
                                  query.program())
        assert streamed == dict(materialized.by_document)

    def test_stream_equals_whole_document_evaluation(self):
        spanner = Spanner.regex(PATTERN, TXT)
        results = Q(spanner).split_by("tokens").over(CORPUS)
        for doc_id, tuples in results.stream():
            document = CORPUS[int(doc_id.split("-")[1])]
            assert tuples == evaluate_whole(spanner.vsa(), document)

    def test_stream_is_lazy_per_batch(self):
        query = self._query(batch_size=1)
        results = query.over(CORPUS)
        engine = query.engine()
        assert engine.stats().documents == 0       # nothing ran yet
        stream = results.stream()
        doc_id, _tuples = next(stream)
        assert doc_id == "doc-0000"
        assert engine.stats().documents == 1       # only the first batch
        next(stream)
        assert engine.stats().documents == 2
        results.materialize()
        assert engine.stats().documents == len(CORPUS)

    def test_exactly_one_certification(self):
        query = self._query(batch_size=2)
        results = query.over(CORPUS)
        results.materialize()
        stats = query.engine().stats()
        assert stats.certifications == 1
        # Re-running the same query replays the certificate.
        again = query.over(CORPUS)
        again.materialize()
        assert query.engine().stats().certifications == 1
        assert again.stats().certifications == 0

    def test_stream_replays_without_rerunning(self):
        query = self._query(batch_size=2)
        results = query.over(CORPUS)
        first = dict(results.stream())
        documents_after_first = query.engine().stats().documents
        second = dict(results.stream())
        assert first == second
        assert query.engine().stats().documents == documents_after_first

    def test_interleaved_streams_share_one_pass(self):
        query = self._query(batch_size=1)
        results = query.over(CORPUS)
        one, two = results.stream(), results.stream()
        assert next(one) == next(two)
        assert next(two) == next(one)
        assert query.engine().stats().documents == 2

    def test_getitem_streams_no_further_than_needed(self):
        query = self._query(batch_size=1)
        results = query.over(CORPUS)
        assert results["doc-0001"]
        assert query.engine().stats().documents == 2
        with pytest.raises(KeyError):
            results["doc-9999"]

    def test_materializers(self):
        results = self._query().over(["aa b a"])
        dicts = results.to_dicts()
        assert all(row["doc"] == "doc-0000" for row in dicts)
        assert {row["y"]["text"] for row in dicts} == {"aa", "a"}
        assert sorted(results.texts()) == ["a", "aa"]
        assert results.texts("y") == results.texts()
        assert results.total_tuples() == 2

    def test_explain_before_stream_keeps_artifact_accounting(self):
        # explain() resolves the runner through the engine, so calling
        # it before streaming must not hide the lowering from
        # EngineStats.artifacts_compiled.
        explain_first = self._query()
        results = explain_first.over(CORPUS)
        results.explain()
        results.materialize()
        stream_first = self._query()
        stream_first.over(CORPUS).materialize()
        assert (explain_first.engine().stats().artifacts_compiled
                == stream_first.engine().stats().artifacts_compiled)

    def test_to_dicts_orders_spans_numerically(self):
        # A single-digit and a double-digit offset: positional order
        # (3 before 12), not lexicographic ("12" before "3").
        results = self._query().over(["b aa b b b aaa"])
        rows = results.to_dicts()
        begins = [row["y"]["begin"] for row in rows]
        assert begins == sorted(begins)
        assert min(begins) < 10 <= max(begins)

    def test_explain_reports_certificate_and_artifact(self):
        results = self._query().over(CORPUS)
        explain = results.explain()
        assert explain["mode"] == "split"
        assert explain["splitter"] == "tokens"
        assert explain["self_splittable"] is True
        assert explain["theorem"] == "Theorem 5.16"
        assert "PSPACE" in explain["procedure"]
        assert explain["compiled_artifact"]
        assert explain["certifications"] == 1
        assert explain["documents"] == len(CORPUS)

    def test_empty_corpus(self):
        results = self._query().over([])
        assert dict(results.stream()) == {}
        assert results.to_dicts() == []


# ----------------------------------------------------------------------
# Engine integration points
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_program_from_query(self):
        from repro.engine.engine import Program

        spanner = Spanner.regex(PATTERN, TXT)
        program = Program.from_query(spanner)
        assert program.executable is spanner.executable
        assert program.specification is spanner.specification
        assert program.name == PATTERN
        assert Program.from_query(program) is program
        raw = spanner.vsa()
        assert Program.from_query(raw).specification is raw

    def test_run_iter_matches_run(self):
        engine = ExtractionEngine(
            [Splitter.named("tokens", TXT).registered(priority=1)],
            batch_size=2,
        )
        spanner = compile_regex_formula(PATTERN, TXT)
        lazy = dict(engine.run_iter(Corpus.from_texts(CORPUS), spanner))
        fresh = ExtractionEngine(
            [Splitter.named("tokens", TXT).registered(priority=1)],
            batch_size=2,
        )
        eager = fresh.run(Corpus.from_texts(CORPUS), spanner)
        assert lazy == dict(eager.by_document)

    def test_planner_method_fast_skips_out_of_fragment(self):
        # The registry token splitter is nondeterministic, so it is
        # outside the Theorem 5.17 fragment: 'fast' skips it (and the
        # PSPACE splittability scan) instead of raising, falling back
        # to whole-document evaluation.
        query = Q(Spanner.regex(PATTERN, TXT)).split_by("tokens") \
            .method("fast")
        explain = query.explain()
        assert explain["mode"] == "whole"
        assert query.on("aa ab.") == evaluate_whole(
            compile_regex_formula(PATTERN, TXT), "aa ab."
        )

    def test_planner_method_auto_certifies_dfvsa_fast(self):
        from repro.spanners.determinism import determinize

        spanner = determinize(compile_regex_formula(PATTERN, TXT))
        tokens = determinize(token_splitter(TXT))
        query = Q(Spanner.from_vsa(spanner)) \
            .split_by(Splitter.from_vsa(tokens, name="tokens")) \
            .method("auto")
        explain = query.explain()
        assert explain["mode"] == "split"
        assert explain["theorem"] == "Theorem 5.17"
        assert "PTIME" in explain["procedure"]


# ----------------------------------------------------------------------
# Top-level namespace
# ----------------------------------------------------------------------


class TestNamespace:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_front_door_names_exported(self):
        for name in ("Q", "Query", "Spanner", "Splitter", "ResultSet",
                     "ReproError", "NotFunctionalError",
                     "CertificationError", "UnknownSplitterError",
                     "ExtractionEngine", "Corpus", "Program"):
            assert name in repro.__all__

    def test_exception_hierarchy(self):
        assert issubclass(NotFunctionalError, ReproError)
        assert issubclass(NotFunctionalError, ValueError)
        assert issubclass(CertificationError, ReproError)
        assert issubclass(CertificationError, ValueError)
        assert issubclass(UnknownSplitterError, ReproError)
        assert issubclass(UnknownSplitterError, KeyError)

    @given(documents_st(alphabet="ab .", max_length=8))
    def test_quickstart_chain_matches_whole_document(self, document):
        spanner = Spanner.regex(PATTERN, TXT)
        fluent = Q(spanner).split_by("tokens").on(document)
        assert fluent == evaluate_whole(spanner.vsa(), document)
