"""Tests for the splitter library and the disjointness decision."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.composition import splits_of
from repro.core.spans import Span
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters import (
    char_ngram_splitter,
    consecutive_sentence_pairs,
    fixed_window_splitter,
    is_disjoint,
    overlap_witness_exists,
    paragraph_splitter,
    record_splitter,
    sentence_splitter,
    separator_splitter,
    token_ngram_splitter,
    token_splitter,
    whole_document_splitter,
)
from tests.conftest import splitter_nodes_st
from tests.reference import semantically_disjoint

AB = frozenset("ab")
TXT = frozenset("ab .")
FULL = frozenset("ab .\n#")


class TestBuilders:
    def test_whole_document(self):
        whole = whole_document_splitter(AB)
        assert splits_of(whole, "ab") == {Span(1, 3)}
        assert splits_of(whole, "") == {Span(1, 1)}

    def test_tokens(self):
        tokens = token_splitter(TXT)
        assert splits_of(tokens, "ab a.") == {Span(1, 3), Span(4, 6)}
        assert splits_of(tokens, "  ") == set()
        assert splits_of(tokens, "a") == {Span(1, 2)}

    def test_token_multi_separator(self):
        tokens = token_splitter(FULL)
        assert splits_of(tokens, "a\nb a") == {
            Span(1, 2), Span(3, 4), Span(5, 6)
        }

    def test_sentences(self):
        sentences = sentence_splitter(TXT)
        assert splits_of(sentences, "ab a. ba.") == {Span(1, 6), Span(7, 10)}
        # Incomplete trailing sentence is not selected.
        assert splits_of(sentences, "ab a. ba") == {Span(1, 6)}
        # Leading spaces are skipped.
        assert splits_of(sentences, "  a.") == {Span(3, 5)}

    def test_paragraphs_and_records(self):
        paragraphs = paragraph_splitter(FULL)
        assert splits_of(paragraphs, "ab\nba") == {Span(1, 3), Span(4, 6)}
        records = record_splitter(FULL, "#")
        assert splits_of(records, "ab#ba") == {Span(1, 3), Span(4, 6)}

    def test_char_ngrams(self):
        two = char_ngram_splitter(AB, 2)
        assert splits_of(two, "aba") == {Span(1, 3), Span(2, 4)}
        assert splits_of(two, "a") == set()
        with_short = char_ngram_splitter(AB, 2, include_short_documents=True)
        assert splits_of(with_short, "a") == {Span(1, 2)}
        assert splits_of(with_short, "") == {Span(1, 1)}

    def test_token_ngrams(self):
        two = token_ngram_splitter(TXT, 2)
        assert splits_of(two, "ab a. b") == {Span(1, 6), Span(4, 8)}
        # Multiple separating spaces are included in the window.
        assert splits_of(two, "a  b") == {Span(1, 5)}

    def test_fixed_windows(self):
        windows = fixed_window_splitter(AB, 2)
        assert splits_of(windows, "aabab") == {
            Span(1, 3), Span(3, 5), Span(5, 6)
        }
        assert splits_of(windows, "") == set()
        assert splits_of(windows, "ab") == {Span(1, 3)}

    def test_sentence_pairs(self):
        pairs = consecutive_sentence_pairs(TXT)
        assert splits_of(pairs, "a. b. ab.") == {Span(1, 6), Span(4, 10)}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            char_ngram_splitter(AB, 0)
        with pytest.raises(ValueError):
            fixed_window_splitter(AB, 0)
        with pytest.raises(ValueError):
            separator_splitter(AB, "#")
        with pytest.raises(ValueError):
            sentence_splitter(AB)


class TestDisjointness:
    @pytest.mark.parametrize(
        "splitter,expected",
        [
            (whole_document_splitter(AB), True),
            (token_splitter(TXT), True),
            (sentence_splitter(TXT), True),
            (fixed_window_splitter(AB, 3), True),
            (char_ngram_splitter(AB, 1), True),
            (char_ngram_splitter(AB, 2), False),
            (token_ngram_splitter(TXT, 2), False),
            (consecutive_sentence_pairs(TXT), False),
        ],
    )
    def test_catalogue(self, splitter, expected):
        assert is_disjoint(splitter) == expected

    def test_example_5_8_splitter_not_disjoint(self):
        s = compile_regex_formula("x{ab}b|(a)x{bb}", AB)
        assert not is_disjoint(s)

    def test_adjacent_empty_spans_are_disjoint(self):
        s = compile_regex_formula("x{a}|(a)x{~}", AB)
        assert is_disjoint(s)

    def test_empty_span_inside_nonempty_overlaps(self):
        s = compile_regex_formula("x{~}(a)|x{a}", AB)
        assert not is_disjoint(s)
        assert overlap_witness_exists(s)

    def test_identical_spans_do_not_witness(self):
        # Two runs selecting the same span are one output.
        s = compile_regex_formula("x{a|a}", AB)
        assert is_disjoint(s)

    @given(splitter_nodes_st())
    def test_matches_bounded_semantics(self, node):
        splitter = compile_regex_formula(node, AB, require_functional=False)
        if splitter.variables != {"x"}:
            return
        decided = is_disjoint(splitter)
        bounded = semantically_disjoint(splitter, 4)
        if decided:
            assert bounded
        # decided == False with bounded == True can happen when the
        # shortest overlap witness is longer than the bound.
