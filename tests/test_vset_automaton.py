"""Tests for VSet-automata: semantics, functionality, canonical form."""

import pytest
from hypothesis import given

from repro.automata.nfa import EPSILON, NFA
from repro.core.spans import Span, SpanTuple
from repro.spanners.refwords import Close, Open, gamma
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import (
    VSetAutomaton,
    from_extended_nfa,
)
from tests.conftest import formula_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


def hand_built_vsa():
    """x{a*} built by hand: q0 -x|-> q1 (loop a) -(-|x)-> q2."""
    alphabet = AB | gamma(["x"])
    transitions = [
        (0, Open("x"), 1),
        (1, "a", 1),
        (1, Close("x"), 2),
    ]
    return VSetAutomaton(AB, ["x"], NFA(alphabet, [0, 1, 2], 0, [2],
                                        transitions))


class TestConstruction:
    def test_alphabet_must_include_gamma(self):
        nfa = NFA(AB, [0], 0, [0], [])
        with pytest.raises(ValueError):
            VSetAutomaton(AB, ["x"], nfa)

    def test_from_language_nfa(self):
        from repro.automata.regex import regex_to_nfa

        spanner = VSetAutomaton.from_language_nfa(AB, regex_to_nfa("ab", AB))
        assert spanner.arity == 0
        assert spanner.evaluate("ab") == {SpanTuple({})}

    def test_universal_spanner(self):
        universal = VSetAutomaton.universal_spanner(AB, ["x"])
        result = universal.evaluate("ab")
        # Every span of 'ab': 6 of them.
        assert len(result) == 6


class TestEvaluation:
    def test_hand_built(self):
        spanner = hand_built_vsa()
        assert spanner.evaluate("aa") == {SpanTuple({"x": Span(1, 3)})}
        assert spanner.evaluate("") == {SpanTuple({"x": Span(1, 1)})}
        assert spanner.evaluate("b") == set()

    def test_epsilon_loops_terminate(self):
        alphabet = AB | gamma(["x"])
        transitions = [
            (0, EPSILON, 1), (1, EPSILON, 0),
            (0, Open("x"), 2), (2, Close("x"), 3),
        ]
        spanner = VSetAutomaton(AB, ["x"],
                                NFA(alphabet, [0, 1, 2, 3], 0, [3],
                                    transitions))
        assert spanner.evaluate("") == {SpanTuple({"x": Span(1, 1)})}

    def test_suffix_collapse_correctness(self):
        # After all variables close, long suffixes are table lookups;
        # semantics must be unchanged.
        spanner = compile_regex_formula("x{a}(a|b)*", AB)
        assert spanner.evaluate("abbbb") == {SpanTuple({"x": Span(1, 2)})}
        assert spanner.evaluate("babb") == set()


class TestFunctionality:
    def test_functional_detection(self):
        assert hand_built_vsa().is_functional()
        bad = compile_regex_formula("(x{a})*", AB, require_functional=False)
        assert not bad.is_functional()

    def test_to_functional_preserves_semantics(self):
        bad = compile_regex_formula("(x{a})*|x{b}", AB,
                                    require_functional=False)
        fixed = bad.to_functional()
        assert fixed.is_functional()
        for document in documents_upto(AB, 3):
            assert fixed.evaluate(document) == bad.evaluate(document)

    def test_valid_ref_nfa_filters(self):
        bad = compile_regex_formula("(x{a})*", AB, require_functional=False)
        valid = bad.valid_ref_nfa()
        # One iteration is the only valid ref-word.
        assert valid.accepts((Open("x"), "a", Close("x")))
        assert not valid.accepts(())
        assert not valid.accepts(
            (Open("x"), "a", Close("x"), Open("x"), "a", Close("x"))
        )


class TestMatchLanguage:
    def test_match_language(self):
        spanner = compile_regex_formula(".*x{aa}.*", AB)
        language = spanner.match_language()
        assert language.accepts("baab")
        assert not language.accepts("ab")

    def test_match_language_respects_validity(self):
        bad = compile_regex_formula("(x{a})*", AB, require_functional=False)
        language = bad.match_language()
        assert language.accepts("a")
        assert not language.accepts("")
        assert not language.accepts("aa")


class TestExtendedForm:
    def test_roundtrip_preserves_semantics(self):
        spanner = compile_regex_formula(".*x{a|ab}y{b*}.*", AB)
        rebuilt = from_extended_nfa(spanner.extended_nfa(), AB,
                                    spanner.variables)
        for document in documents_upto(AB, 4):
            assert rebuilt.evaluate(document) == spanner.evaluate(document)

    @given(formula_nodes_st())
    def test_roundtrip_random_formulas(self, node):
        spanner = compile_regex_formula(node, AB, require_functional=False)
        rebuilt = from_extended_nfa(spanner.extended_nfa(), AB,
                                    spanner.variables)
        for document in documents_upto(AB, 3):
            assert rebuilt.evaluate(document) == spanner.evaluate(document)

    def test_rebuilt_is_functional(self):
        bad = compile_regex_formula("(x{a})*", AB, require_functional=False)
        rebuilt = from_extended_nfa(bad.extended_nfa(), AB, bad.variables)
        assert rebuilt.is_functional()


class TestRenaming:
    def test_rename(self):
        spanner = compile_regex_formula("x{a}", AB)
        renamed = spanner.rename_variables({"x": "z"})
        assert renamed.variables == {"z"}
        assert renamed.evaluate("a") == {SpanTuple({"z": Span(1, 2)})}

    def test_rename_must_be_injective(self):
        spanner = compile_regex_formula("x{a}y{b}", AB)
        with pytest.raises(ValueError):
            spanner.rename_variables({"x": "y"})
