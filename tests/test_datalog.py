"""Tests for the non-recursive spanner-Datalog layer."""

import pytest

from repro.core.spans import Span, SpanTuple
from repro.spanners.datalog import Atom, DatalogError, DatalogProgram, atom
from repro.spanners.regex_formulas import compile_regex_formula
from tests.reference import documents_upto

AB = frozenset("ab")
TXT = frozenset("ab ")


def simple_program():
    program = DatalogProgram(AB)
    program.base("a_spans", ["s"], compile_regex_formula(".*s{a+}.*", AB))
    program.base("b_follow", ["s", "t"],
                 compile_regex_formula(".*s{a+}t{b}.*", AB))
    return program


class TestDeclaration:
    def test_schema_must_match(self):
        program = DatalogProgram(AB)
        with pytest.raises(DatalogError):
            program.base("p", ["x"],
                         compile_regex_formula(".*y{a}.*", AB))

    def test_duplicate_predicate_rejected(self):
        program = simple_program()
        with pytest.raises(DatalogError):
            program.base("a_spans", ["s"],
                         compile_regex_formula(".*s{a}.*", AB))

    def test_head_vars_must_be_bound(self):
        program = simple_program()
        with pytest.raises(DatalogError):
            program.rule("out", ["z"], [atom("a_spans", ["s"])])

    def test_unsafe_negation_rejected(self):
        program = simple_program()
        with pytest.raises(DatalogError):
            program.rule("out", ["s"],
                         [atom("a_spans", ["s"]),
                          atom("b_follow", ["s", "t"], negated=True)])
        # Safe version is accepted.
        program.rule("out", ["s"],
                     [atom("a_spans", ["s"]), atom("a_spans", ["s"])])

    def test_recursion_detected(self):
        program = simple_program()
        program.rule("p", ["s"], [atom("q", ["s"])])
        program.rule("q", ["s"], [atom("p", ["s"])])
        with pytest.raises(DatalogError):
            program.compile("p")


class TestEvaluation:
    def test_base_passthrough(self):
        program = simple_program()
        assert program.evaluate("a_spans", "ab") == {
            SpanTuple({"s": Span(1, 2)})
        }

    def test_join_rule(self):
        # out(s) :- a_spans(s), b_follow(s, t): a-runs followed by 'b'.
        program = simple_program()
        program.rule("out", ["s"],
                     [atom("a_spans", ["s"]), atom("b_follow", ["s", "t"])])
        compiled = program.compile("out")
        direct = compile_regex_formula(".*s{a+}(b).*", AB)
        for document in documents_upto(AB, 4):
            assert compiled.evaluate(document) == direct.evaluate(document)

    def test_union_of_rules(self):
        program = DatalogProgram(AB)
        program.base("first", ["v"], compile_regex_formula("v{a}.*", AB))
        program.base("last", ["v"], compile_regex_formula(".*v{b}", AB))
        program.rule("edge", ["v"], [atom("first", ["v"])])
        program.rule("edge", ["v"], [atom("last", ["v"])])
        compiled = program.compile("edge")
        for document in documents_upto(AB, 3):
            expected = (program.evaluate("first", document)
                        | program.evaluate("last", document))
            assert compiled.evaluate(document) == expected

    def test_rule_variable_renaming(self):
        # The rule uses different variable names than the base schema.
        program = simple_program()
        program.rule("renamed", ["left", "right"],
                     [atom("b_follow", ["left", "right"])])
        result = program.evaluate("renamed", "ab")
        assert result == {
            SpanTuple({"left": Span(1, 2), "right": Span(2, 3)})
        }

    def test_negation(self):
        # a-runs that are NOT followed by a 'b'.
        program = simple_program()
        program.base("before_b", ["s"],
                     compile_regex_formula(".*s{a+}(b).*", AB))
        program.rule("bare", ["s"],
                     [atom("a_spans", ["s"]),
                      atom("before_b", ["s"], negated=True)])
        compiled = program.compile("bare")
        for document in documents_upto(AB, 4):
            expected = (program.evaluate("a_spans", document)
                        - program.evaluate("before_b", document))
            assert compiled.evaluate(document) == expected

    def test_repeated_variable_equality(self):
        # p(x) :- b_follow(x, x): requires s == t, impossible here
        # since s covers a+ and t covers b.
        program = simple_program()
        program.rule("diag", ["x"], [atom("b_follow", ["x", "x"])])
        compiled = program.compile("diag")
        for document in documents_upto(AB, 3):
            assert compiled.evaluate(document) == set()

    def test_repeated_variable_with_overlap(self):
        program = DatalogProgram(AB)
        program.base("pair", ["u", "v"],
                     compile_regex_formula(".*u{a}.*|.*u{v{a}}.*", AB,
                                           require_functional=False))
        # With the nested branch u == v is possible.
        program.rule("same", ["u"], [atom("pair", ["u", "u"])])
        compiled = program.compile("same")
        assert compiled.evaluate("a") == {SpanTuple({"u": Span(1, 2)})}

    def test_multi_level_program(self):
        # IDB predicates feeding IDB predicates.
        program = simple_program()
        program.rule("level1", ["s"], [atom("a_spans", ["s"])])
        program.rule("level2", ["s"],
                     [atom("level1", ["s"]), atom("b_follow", ["s", "t"])])
        compiled = program.compile("level2")
        direct = compile_regex_formula(".*s{a+}(b).*", AB)
        for document in documents_upto(AB, 4):
            assert compiled.evaluate(document) == direct.evaluate(document)

    def test_program_output_is_splittable_like_any_spanner(self):
        # Datalog output is a VSA, so the framework procedures apply.
        program = DatalogProgram(TXT)
        program.base("runs", ["y"], compile_regex_formula(
            ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", TXT
        ))
        program.rule("out", ["y"], [atom("runs", ["y"])])
        compiled = program.compile("out")
        from repro.core.self_splittability import is_self_splittable
        from repro.splitters.builders import token_splitter

        assert is_self_splittable(compiled, token_splitter(TXT))
