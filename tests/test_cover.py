"""Tests for the cover condition (Definition 5.2, Lemmas 5.3-5.6)."""

import pytest
from hypothesis import given

from repro.automata.dfa import random_dfa
from repro.core.cover import (
    cover_condition,
    cover_condition_disjoint,
    cover_condition_general,
)
from repro.reductions import (
    split_correctness_instance,
    union_universality_instance,
)
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter
from repro.splitters.disjointness import is_disjoint
from tests.conftest import formula_nodes_st, splitter_nodes_st
from tests.reference import semantically_covered

AB = frozenset("ab")


class TestGeneralCover:
    def test_covered(self):
        p = compile_regex_formula(".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}",
                                  frozenset("ab "))
        tokens = token_splitter(frozenset("ab "))
        assert cover_condition_general(p, tokens)

    def test_not_covered(self):
        # P extracts across a token boundary.
        alphabet = frozenset("ab ")
        p = compile_regex_formula(".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}",
                                  alphabet)
        tokens = token_splitter(alphabet)
        assert not cover_condition_general(p, tokens)

    def test_boolean_cover_requires_split(self):
        p = compile_regex_formula("(a|b)*", AB)
        s_all = compile_regex_formula("x{(a|b)*}", AB)
        s_some = compile_regex_formula("x{a*}", AB)
        assert cover_condition_general(p, s_all)
        assert not cover_condition_general(p, s_some)

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_matches_bounded_semantics(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"}:
            return
        decided = cover_condition_general(p, splitter)
        bounded = semantically_covered(p, splitter, 3)
        if not decided:
            # A finite counterexample exists but may be longer than the
            # bound; only the positive direction is fully checkable.
            return
        assert bounded


class TestDisjointCover:
    def test_agrees_with_general_positive(self):
        alphabet = frozenset("ab ")
        p = determinize(compile_regex_formula(
            ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet))
        tokens = determinize(token_splitter(alphabet))
        assert is_disjoint(tokens)
        assert cover_condition_disjoint(p, tokens)
        assert cover_condition_general(p, tokens)

    def test_agrees_with_general_negative(self):
        alphabet = frozenset("ab ")
        p = determinize(compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", alphabet))
        tokens = determinize(token_splitter(alphabet))
        assert not cover_condition_disjoint(p, tokens)
        assert not cover_condition_general(p, tokens)

    def test_zero_ary_falls_back(self):
        p = determinize(compile_regex_formula("(a|b)*", AB))
        s = determinize(compile_regex_formula("x{(a|b)*}", AB))
        assert cover_condition_disjoint(p, s)

    def test_empty_span_boundary_corner(self):
        # Adjacent splits both cover an all-empty tuple: the UFA proof
        # breaks (ambiguity) but the fallback keeps the answer right.
        s = determinize(compile_regex_formula("x{a}|(a)x{~}", AB))
        assert is_disjoint(s)
        p = determinize(compile_regex_formula("(a)y{~}", AB))
        assert cover_condition_disjoint(p, s)
        assert cover_condition_general(p, s)

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_disjoint_method_agrees_with_general(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"}:
            return
        if not is_disjoint(splitter):
            return
        p_det = determinize(p)
        s_det = determinize(splitter)
        assert cover_condition_disjoint(p_det, s_det) == \
            cover_condition_general(p, splitter)


class TestAutoDispatch:
    def test_cover_condition_dispatch(self):
        alphabet = frozenset("ab ")
        p = compile_regex_formula(".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}",
                                  alphabet)
        tokens = token_splitter(alphabet)
        assert cover_condition(p, tokens) == cover_condition_general(p, tokens)


class TestLemma54Family:
    @pytest.mark.parametrize("seed", range(4))
    def test_reduction_matches_union_universality(self, seed):
        sigma = ["b", "c"]
        dfas = [random_dfa(sigma, 2, seed * 11 + k) for k in range(2)]
        truth = union_universality_instance(dfas, sigma)
        p, _p_s, s = split_correctness_instance(dfas, sigma)
        assert cover_condition_general(p, s) == truth
