"""Tests for the composition ``P o S`` (Section 3, Lemmas C.1/C.2)."""

import pytest
from hypothesis import given

from repro.core.composition import (
    compose,
    compose_semantics,
    splits_of,
    splitter_variable,
)
from repro.core.spans import Span, SpanTuple
from repro.spanners.regex_formulas import compile_regex_formula
from tests.conftest import formula_nodes_st, splitter_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


class TestSplitterBasics:
    def test_splitter_variable(self):
        splitter = compile_regex_formula("x{a*}", AB)
        assert splitter_variable(splitter) == "x"

    def test_non_unary_rejected(self):
        binary = compile_regex_formula("x{a}y{b}", AB)
        with pytest.raises(ValueError):
            splitter_variable(binary)
        boolean = compile_regex_formula("ab", AB)
        with pytest.raises(ValueError):
            splitter_variable(boolean)

    def test_splits_of(self):
        splitter = compile_regex_formula(".*x{.}.*", AB)
        assert splits_of(splitter, "ab") == {Span(1, 2), Span(2, 3)}


class TestComposeSemantics:
    def test_ngram_email_phone_shape(self):
        # Miniature of the Section 3 example: P finds an 'a' and a 'b'
        # within distance 1; composing with the 2-gram splitter.
        p = compile_regex_formula(".*e{a}p{b}.*|e{a}p{b}.*|.*e{a}p{b}|e{a}p{b}", AB)
        two_gram = compile_regex_formula(".*x{..}.*|x{..}", AB)
        direct = p.evaluate("abab")
        via_split = compose_semantics(p.evaluate, two_gram, "abab")
        assert direct == via_split  # adjacent pairs fit in a 2-gram

    def test_shift_arithmetic(self):
        p = compile_regex_formula("y{b}", AB)
        splitter = compile_regex_formula("(a)x{b}(a)", AB)
        result = compose_semantics(p.evaluate, splitter, "aba")
        assert result == {SpanTuple({"y": Span(2, 3)})}


class TestComposeAutomaton:
    def test_matches_semantics_simple(self):
        p = compile_regex_formula(".*y{a}.*", AB)
        splitter = compile_regex_formula(".*x{.}.*", AB)
        composed = compose(p, splitter)
        for document in documents_upto(AB, 4):
            assert composed.evaluate(document) == compose_semantics(
                p.evaluate, splitter, document
            )

    def test_boolean_spanner_composition(self):
        p = compile_regex_formula("a*", AB)
        splitter = compile_regex_formula("x{a*}b.*|x{a*}", AB)
        composed = compose(p, splitter)
        for document in documents_upto(AB, 4):
            assert composed.evaluate(document) == compose_semantics(
                p.evaluate, splitter, document
            )

    def test_variable_clash_is_resolved(self):
        # The splitter reuses P's variable name; compose renames it.
        p = compile_regex_formula(".*x{a}.*", AB)
        splitter = compile_regex_formula(".*x{.}.*", AB)
        composed = compose(p, splitter)
        assert composed.variables == {"x"}
        for document in documents_upto(AB, 3):
            assert composed.evaluate(document) == compose_semantics(
                p.evaluate, splitter, document
            )

    def test_nonfunctional_splitter_is_validity_filtered(self):
        splitter = compile_regex_formula("(x{a})*", AB,
                                         require_functional=False)
        p = compile_regex_formula("y{a}", AB)
        composed = compose(p, splitter)
        for document in documents_upto(AB, 3):
            assert composed.evaluate(document) == compose_semantics(
                p.evaluate, splitter, document
            )

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_lemma_c2_matches_semantics(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"}:
            return
        composed = compose(p, splitter)
        for document in documents_upto(AB, 3):
            assert composed.evaluate(document) == compose_semantics(
                p.evaluate, splitter, document
            ), (p_node.to_string(), s_node.to_string(), document)
