"""Tests for splitter reasoning (Section 6)."""

import pytest

from repro.automata.regex import regex_to_nfa
from repro.core.composition import compose_semantics, splits_of
from repro.core.reasoning import (
    compose_splitters,
    self_split_transfers,
    splitters_commute,
    subsumes,
)
from repro.core.self_splittability import is_self_splittable
from repro.core.spans import Span
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import (
    separator_splitter,
    token_splitter,
    whole_document_splitter,
)

PQ = frozenset("pq")
PG = frozenset("pq#\n")


class TestComposeSplitters:
    def test_lemma_6_1(self):
        # Sentences of paragraphs = tokens of '#'-records here.
        records = separator_splitter(PG, "#")
        tokens = separator_splitter(PG, {"\n", "#"})
        composed = compose_splitters(tokens, records)
        doc = "pp\nq#qq\np"
        expected = compose_semantics(tokens.evaluate, records, doc)
        assert composed.evaluate(doc) == expected

    def test_composed_splits(self):
        records = separator_splitter(PG, "#")
        lines = separator_splitter(PG, {"\n", "#"})
        composed = compose_splitters(lines, records)
        assert splits_of(composed, "pp\nq#q") == {
            Span(1, 3), Span(4, 5), Span(6, 7)
        }


class TestCommutativity:
    def test_pdf_pages_paragraphs(self):
        # The paper's PDF example: pages then paragraphs equals
        # paragraphs then pages.
        pages = separator_splitter(PG, "#")
        paragraphs = separator_splitter(PG, "\n")
        assert splitters_commute(pages, paragraphs)

    def test_theorem_6_2_reduction_shape(self):
        # S1 = #x{Sigma0*} + x{#E}, S2 = x{#Sigma0*} + #x{E}: commute
        # iff E is universal.
        universal = "(\\#)x{(p|q)*}|x{\\#((p|q)*)}"
        u2 = "x{\\#(p|q)*}|(\\#)x{(p|q)*}"
        s1 = compile_regex_formula(universal, frozenset("pq#"))
        s2 = compile_regex_formula(u2, frozenset("pq#"))
        assert splitters_commute(s1, s2)
        partial1 = compile_regex_formula("(\\#)x{(p|q)*}|x{\\#(p*)}",
                                         frozenset("pq#"))
        partial2 = compile_regex_formula("x{\\#(p|q)*}|(\\#)x{p*}",
                                         frozenset("pq#"))
        assert not splitters_commute(partial1, partial2)

    def test_commute_with_context(self):
        # The Theorem 6.2 splitters with E = p* do not commute in
        # general, but they do on '#'-free documents where both output
        # nothing.
        alphabet = frozenset("pq#")
        s1 = compile_regex_formula("(\\#)x{(p|q)*}|x{\\#(p*)}", alphabet)
        s2 = compile_regex_formula("x{\\#(p|q)*}|(\\#)x{p*}", alphabet)
        assert not splitters_commute(s1, s2)
        context = regex_to_nfa("(p|q)*", alphabet)
        assert splitters_commute(s1, s2, context)


class TestSubsumption:
    def test_theorem_6_3_examples(self):
        whole = whole_document_splitter(PQ)
        everything = compile_regex_formula("x{(p|q)*}", PQ)
        just_p = compile_regex_formula("x{p*}", PQ)
        assert subsumes(whole, everything)
        assert not subsumes(whole, just_p)

    def test_subsumption_with_context(self):
        whole = whole_document_splitter(PQ)
        just_p = compile_regex_formula("x{p*}", PQ)
        context = regex_to_nfa("p*", PQ)
        assert subsumes(whole, just_p, context)

    def test_sentence_in_paragraph(self):
        # Re-splitting record chunks by record boundaries is a no-op.
        records = separator_splitter(PG, "#")
        assert subsumes(records, records)


class TestTransitivity:
    def test_observation_6_4(self):
        # P = PS o S1 and S1 = S1 o S2 do NOT imply P = PS o S2.
        from repro.core.split_correctness import split_correct_general

        sigma = frozenset("ab")
        p = compile_regex_formula(".*y{a}.*", sigma)
        p_s = compile_regex_formula("y{a}", sigma)
        s1 = compile_regex_formula(".*x{.}.*", sigma)
        s2 = compile_regex_formula(".*x{..}.*|x{.}", sigma)
        assert split_correct_general(p, p_s, s1)
        # S1 = S1 o S2: the 1-grams of the 2-windows tile the document.
        from repro.core.reasoning import _align
        from repro.spanners.containment import spanner_equivalent

        composed = compose_splitters(s1, s2)
        left, right = _align(s1, composed)
        assert spanner_equivalent(left, right)
        assert not split_correct_general(p, p_s, s2)

    def test_lemma_6_5_transfer(self):
        alphabet = frozenset("ab \n")
        p = compile_regex_formula(
            ".*( |\n)y{a+}( |\n).*|y{a+}( |\n).*|.*( |\n)y{a+}|y{a+}",
            alphabet,
        )
        tokens = token_splitter(alphabet)
        lines = separator_splitter(alphabet, "\n")
        assert self_split_transfers(p, tokens, lines)
        assert is_self_splittable(p, lines)

    def test_transfer_premise_failure_is_unknown(self):
        alphabet = frozenset("ab \n")
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", alphabet
        )
        tokens = token_splitter(alphabet)
        lines = separator_splitter(alphabet, "\n")
        assert not self_split_transfers(crossing, tokens, lines)
