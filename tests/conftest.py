"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Literal,
    Star,
    Union_,
)
from repro.spanners.regex_formulas import Capture

# Property tests run exhaustive bounded-domain checks inside; keep the
# example counts modest so the suite stays fast.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)
settings.load_profile("repro")

ALPHABET = "ab"


@st.composite
def spans_st(draw, max_position: int = 8):
    from repro.core.spans import Span

    begin = draw(st.integers(min_value=1, max_value=max_position))
    end = draw(st.integers(min_value=begin, max_value=max_position))
    return Span(begin, end)


@st.composite
def documents_st(draw, alphabet: str = ALPHABET, max_length: int = 6):
    return draw(st.text(alphabet=alphabet, max_size=max_length))


def _language_node(draw, depth: int):
    """A variable-free regex AST."""
    if depth <= 0:
        return draw(st.sampled_from(
            [Literal("a"), Literal("b"), AnySymbol(), Epsilon()]
        ))
    kind = draw(st.sampled_from(["atom", "concat", "union", "star"]))
    if kind == "atom":
        return _language_node(draw, 0)
    if kind == "concat":
        return Concat(_language_node(draw, depth - 1),
                      _language_node(draw, depth - 1))
    if kind == "union":
        return Union_(_language_node(draw, depth - 1),
                      _language_node(draw, depth - 1))
    return Star(_language_node(draw, depth - 1))


def _formula_node(draw, depth: int, available):
    """A regex-formula AST that is functional by construction.

    Every branch of a union uses the same variable set; concatenations
    split the available variables; star bodies are variable-free.
    """
    if not available:
        return _language_node(draw, depth)
    if depth <= 0:
        # Must still consume all available variables.
        node = None
        for variable in sorted(available):
            wrapped = Capture(variable, _language_node(draw, 0))
            node = wrapped if node is None else Concat(node, wrapped)
        return node
    kind = draw(st.sampled_from(["capture", "concat", "union", "pad"]))
    if kind == "capture":
        variable = sorted(available)[0]
        rest = available - {variable}
        inner = _formula_node(draw, depth - 1, rest)
        return Capture(variable, inner)
    if kind == "concat":
        left_vars = {
            v for v in available if draw(st.booleans())
        }
        left = _formula_node(draw, depth - 1, frozenset(left_vars))
        right = _formula_node(draw, depth - 1,
                              frozenset(available - left_vars))
        return Concat(left, right)
    if kind == "union":
        return Union_(_formula_node(draw, depth - 1, available),
                      _formula_node(draw, depth - 1, available))
    # pad: language context around the variables.
    return Concat(_language_node(draw, depth - 1),
                  _formula_node(draw, depth - 1, available))


@st.composite
def language_nodes_st(draw, max_depth: int = 3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return _language_node(draw, depth)


@st.composite
def formula_nodes_st(draw, max_depth: int = 3, max_vars: int = 2):
    variables = frozenset(
        ["x", "y"][: draw(st.integers(min_value=0, max_value=max_vars))]
    )
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    return _formula_node(draw, depth, variables)


@st.composite
def splitter_nodes_st(draw, max_depth: int = 2):
    """A unary formula usable as a splitter."""
    return _formula_node(draw, draw(st.integers(1, max_depth)),
                         frozenset(["x"]))


@pytest.fixture
def ab_alphabet():
    return frozenset(ALPHABET)
