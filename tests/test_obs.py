"""Tests for the observability layer (:mod:`repro.obs`): tracer
spans, the metrics registry, exporters, and the end-to-end threading
through planner, engine, scheduler and the fluent query API —
including cross-process collection from pool workers."""

import json
import pickle
import re
import threading

import pytest

from repro import Metrics, Q, Spanner, Tracer
from repro.engine import ExtractionEngine, Program
from repro.engine.stats import EngineStats
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_TRACER,
    kernel_metrics,
    render_span_tree,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
)
from repro.obs.trace import SpanRecord
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter, RegexSpanner
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("ab .")
PATTERN = ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}"


def arun_spanner() -> Spanner:
    return Spanner.regex(PATTERN, ALPHABET)


def token_registry():
    return [
        RegisteredSplitter(
            "tokens", separator_splitter(ALPHABET, " ."),
            priority=1, executor=FastSeparatorSplitter(" ."),
        ),
    ]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_record_parentage(self):
        tracer = Tracer()
        with tracer.span("certify") as outer:
            with tracer.span("compile"):
                pass
            outer.set("cache_hit", False)
        records = {record.name: record for record in tracer.records()}
        assert records["compile"].parent_id == records["certify"].span_id
        assert records["certify"].parent_id is None
        assert records["certify"].attributes["cache_hit"] is False
        assert records["certify"].duration >= records["compile"].duration

    def test_span_inc_accumulates(self):
        tracer = Tracer()
        with tracer.span("evaluate") as span:
            span.inc("chunks")
            span.inc("chunks", 2)
        assert tracer.records()[0].attributes["chunks"] == 3

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("evaluate"):
                raise ValueError("boom")
        record = tracer.records()[0]
        assert record.attributes["error"] == "ValueError"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("certify", program="p") as span:
            span.set("k", 1)
            span.inc("n")
        assert len(tracer) == 0
        assert tracer.adopt([], parent_id=None) == []

    def test_null_tracer_is_shared_and_inert(self):
        handle = NULL_TRACER.span("anything")
        with handle:
            pass
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.span("x") is handle  # one shared object

    def test_thread_local_stacks_keep_parents_straight(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                barrier.wait()
                with tracer.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_name = {record.name: record for record in tracer.records()}
        for i in range(2):
            assert (by_name[f"t{i}.child"].parent_id
                    == by_name[f"t{i}"].span_id)

    def test_adopt_renumbers_and_reparents(self):
        tracer = Tracer()
        with tracer.span("evaluate") as span:
            host_id = span.span_id
        foreign = [
            SpanRecord("evaluate", span_id=1, parent_id=None,
                       start=10.0, duration=0.5, pid=999, tid=1),
            SpanRecord("inner", span_id=2, parent_id=1,
                       start=10.1, duration=0.1, pid=999, tid=1),
        ]
        adopted = tracer.adopt(foreign, parent_id=host_id)
        assert adopted[0].parent_id == host_id
        assert adopted[1].parent_id == adopted[0].span_id
        ids = [record.span_id for record in tracer.records()]
        assert len(ids) == len(set(ids))

    def test_phase_durations_skip_same_name_descendants(self):
        tracer = Tracer()
        with tracer.span("evaluate") as outer:
            outer_id = outer.span_id
        # A worker's own "evaluate" span adopted under the phase span
        # must not double the phase total.
        tracer.adopt(
            [SpanRecord("evaluate", span_id=1, parent_id=None,
                        start=0.0, duration=100.0, pid=999, tid=1)],
            parent_id=outer_id,
        )
        totals = tracer.phase_durations()
        assert totals["evaluate"] < 100.0

    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("split"):
            pass
        shipped = tracer.drain()
        assert [record.name for record in shipped] == ["split"]
        assert len(tracer) == 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        metrics = Metrics()
        metrics.counter("c").inc(2)
        metrics.counter("c").inc()
        metrics.gauge("g").set(7)
        hist = metrics.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        snapshot = metrics.snapshot()
        assert snapshot["c"] == 3
        assert snapshot["g"] == 7
        assert snapshot["h"]["count"] == 3
        assert snapshot["h"]["buckets"]["+Inf"] == 1
        assert hist.mean == pytest.approx((0.05 + 0.5 + 5.0) / 3)
        assert hist.quantile(0.5) == 1.0

    def test_labels_distinguish_instruments(self):
        metrics = Metrics()
        metrics.counter("chunks", pid=1).inc(5)
        metrics.counter("chunks", pid=2).inc(7)
        assert metrics.value("chunks", pid=1) == 5
        assert metrics.value("chunks", pid=2) == 7
        assert metrics.value("chunks") == 0  # unlabeled never touched

    def test_merge_sums_counters_and_buckets_exactly(self):
        a, b = Metrics(), Metrics()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only_b").inc(4)
        a.gauge("g").set(3)
        b.gauge("g").set(9)
        a.histogram("h").observe(0.2)
        b.histogram("h").observe(0.3)
        a.merge(b)
        assert a.value("c") == 3
        assert a.value("only_b") == 4
        assert a.value("g") == 9  # gauges keep the max
        assert a.histogram("h").count == 2
        # Merging is exact: equal to observing everything in one place.
        single = Metrics()
        single.histogram("h").observe(0.2)
        single.histogram("h").observe(0.3)
        assert a.histogram("h").counts == single.histogram("h").counts

    def test_histogram_bound_mismatch_raises(self):
        a, b = Metrics(), Metrics()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_registry_pickles(self):
        metrics = Metrics()
        metrics.counter("c").inc(5)
        metrics.histogram("h").observe(0.01)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.value("c") == 5
        assert clone.histogram("h").count == 1
        clone.counter("c").inc()  # locks were rebuilt
        assert clone.value("c") == 6

    def test_drain_ships_the_delta(self):
        metrics = Metrics()
        metrics.counter("c").inc(3)
        shipped = metrics.drain()
        assert shipped.value("c") == 3
        assert metrics.value("c") == 0
        metrics.counter("c").inc()
        assert metrics.value("c") == 1

    def test_prometheus_exposition_shape(self):
        metrics = Metrics()
        metrics.counter("engine.chunks_total").inc(4)
        metrics.histogram("engine.chunk_eval_seconds",
                          buckets=(0.1, 1.0)).observe(0.05)
        text = to_prometheus(metrics)
        assert "# TYPE engine_chunks_total counter" in text
        assert "engine_chunks_total 4" in text
        assert 'engine_chunk_eval_seconds_bucket{le="0.1"} 1' in text
        assert 'engine_chunk_eval_seconds_bucket{le="+Inf"} 1' in text
        assert "engine_chunk_eval_seconds_count 1" in text


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExporters:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("certify", program="p"):
            with tracer.span("compile"):
                pass
        return tracer

    def test_chrome_trace_exports_and_validates(self, tmp_path):
        tracer = self._traced()
        payload = to_chrome_trace(tracer.records())
        validate_chrome_trace(payload)
        names = {event["name"] for event in payload["traceEvents"]
                 if event["ph"] == "X"}
        assert names == {"certify", "compile"}
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        validate_chrome_trace(json.loads(path.read_text()))

    def test_chrome_trace_validation_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})  # no X events

    def test_span_tree_renders_nesting(self):
        tree = render_span_tree(self._traced().records())
        lines = tree.splitlines()
        assert lines[0].startswith("certify")
        assert lines[1].startswith("  compile")


# ----------------------------------------------------------------------
# EngineStats satellites
# ----------------------------------------------------------------------


class TestEngineStats:
    def test_since_keeps_extra(self):
        before = EngineStats(documents=1, extra={"shard": 0, "n": 2})
        after = EngineStats(documents=3, extra={"shard": 0, "n": 5})
        delta = after.since(before)
        assert delta.documents == 2
        assert delta.extra == {"shard": 0, "n": 3}
        assert "shard" in delta.snapshot()

    def test_merge_sums_colliding_numeric_extras(self):
        a = EngineStats(documents=1, extra={"n": 2, "label": "a"})
        b = EngineStats(documents=2, extra={"n": 5, "label": "b"})
        merged = a.merge(b)
        assert merged.documents == 3
        assert merged.extra["n"] == 7
        assert merged.extra["label"] == "b"

    def test_stats_is_a_view_over_the_registry(self):
        engine = ExtractionEngine(token_registry())
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        engine.run(["aa ab a.", "aa ab a."], Program(spanner))
        stats = engine.stats()
        assert stats.documents == 2
        assert stats.documents == engine.metrics.value("engine.documents")
        assert stats.chunks_evaluated == engine.metrics.value(
            "engine.chunk_cache.misses")
        assert stats.tuples_emitted == engine.metrics.value(
            "engine.tuples_emitted")


# ----------------------------------------------------------------------
# End-to-end threading
# ----------------------------------------------------------------------


class TestTracedEngine:
    def test_untraced_engine_adds_no_spans(self):
        engine = ExtractionEngine(token_registry())
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        engine.run(["aa ab a."], Program(spanner))
        assert engine.tracer is NULL_TRACER
        assert len(engine.tracer) == 0

    def test_traced_run_covers_every_phase(self):
        tracer = Tracer()
        engine = ExtractionEngine(token_registry(), tracer=tracer)
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        engine.run(["aa ab a.", "ab aa b."], Program(spanner))
        names = {record.name for record in tracer.records()}
        assert {"certify", "split", "prefilter", "schedule",
                "evaluate", "merge"} <= names
        phases = tracer.phase_durations()
        assert phases["schedule"] >= phases["evaluate"]

    def test_cross_process_spans_and_metrics(self):
        """workers=2: worker-side spans/metrics ship back and merge."""
        tracer = Tracer()
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        texts = [f"aa ab a{'a' * (i % 5)}." for i in range(12)]
        with ExtractionEngine(token_registry(), workers=2,
                              tracer=tracer) as engine:
            result = engine.run(texts, Program(spanner))
            baseline = ExtractionEngine(token_registry()).run(
                texts, Program(spanner))
            assert result.by_document == baseline.by_document

            records = tracer.records()
            import os
            worker_pids = {record.pid for record in records
                           if record.pid != os.getpid()}
            assert worker_pids, "no spans came back from pool workers"
            by_id = {record.span_id: record for record in records}
            evaluate_ids = {record.span_id for record in records
                            if record.name == "evaluate"
                            and record.pid == os.getpid()}
            worker_roots = [record for record in records
                            if record.pid != os.getpid()
                            and record.parent_id in evaluate_ids]
            assert worker_roots, "worker spans not parented under evaluate"
            assert all(by_id[record.parent_id].name == "evaluate"
                       for record in worker_roots)

            # Worker-side metrics merged into the engine registry.
            snapshot = engine.metrics.snapshot()
            busy = [key for key in snapshot
                    if key.startswith("engine.worker_busy_seconds")]
            assert busy
            latency = engine.metrics.histogram("engine.chunk_eval_seconds")
            assert latency.count == engine.stats().chunks_evaluated
            queue_wait = engine.metrics.histogram(
                "scheduler.queue_wait_seconds")
            assert queue_wait.count == len(worker_roots)

            validate_chrome_trace(tracer.to_chrome_trace())

    def test_kernel_metrics_record_lowering(self):
        before = kernel_metrics().value("kernel.lowerings")
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        from repro.runtime.fast import CompiledSpanner

        CompiledSpanner(spanner).evaluate("aa ab a.")
        assert kernel_metrics().value("kernel.lowerings") > before
        assert kernel_metrics().value("kernel.states_lowered") > 0


class TestTracedQuery:
    def test_traced_query_end_to_end(self):
        corpus = {"d1": "aa ab a.", "d2": "ab ab aa.", "d3": "aa ab a."}
        query = (Q(arun_spanner()).split_by("tokens").workers(2)
                 .traced())
        results = query.over(corpus)
        try:
            materialized = results.materialize()
            assert len(materialized) == 3
            explain = results.explain()
            assert explain["trace"]["enabled"] is True
            phases = explain["trace"]["phases"]
            assert {"certify", "evaluate"} <= set(phases)
            assert all(duration >= 0 for duration in phases.values())
            assert results.trace.enabled
            tree = results.trace.render_tree()
            assert "certify" in tree and "evaluate" in tree
        finally:
            query.engine().close()

    def test_untraced_query_reports_disabled_trace(self):
        results = (Q(arun_spanner()).split_by("tokens")
                   .over({"d": "aa ab a."}))
        explain = results.explain()
        assert explain["trace"] == {"enabled": False}

    def test_traced_accepts_a_shared_tracer_and_rejects_junk(self):
        from repro.errors import ReproError

        shared = Tracer()
        query = Q(arun_spanner()).split_by("tokens").traced(shared)
        query.over({"d": "aa ab a."}).materialize()
        assert len(shared) > 0
        with pytest.raises(ReproError):
            Q(arun_spanner()).traced("yes")

    def test_fast_executable_with_traced_workers(self):
        """The RegexSpanner production path traces across the pool too."""
        specification = compile_regex_formula(PATTERN, ALPHABET)
        fast = RegexSpanner(r"(?:^|[ .])(?P<y>a+)(?=[ .]|$)",
                            specification=specification)
        query = (Q(Spanner(fast)).split_by("tokens").workers(2)
                 .traced())
        results = query.over([f"aa ab a{'a' * i}." for i in range(8)])
        try:
            assert results.total_tuples() > 0
            assert len(results.trace) > 0
        finally:
            query.engine().close()


class TestDisabledOverhead:
    def test_disabled_tracer_span_is_allocation_free(self):
        tracer = Tracer(enabled=False)
        spans = {tracer.span("evaluate") for _ in range(100)}
        assert len(spans) == 1  # always the shared NULL_SPAN

    def test_disabled_path_overhead_is_negligible(self):
        """A run with the default (disabled) tracer stays within noise
        of the pre-observability hot path: the no-op span handle is
        the only added work per batch."""
        import time as _time

        spanner = compile_regex_formula(PATTERN, ALPHABET)
        texts = [f"aa ab a{'a' * (i % 7)}." for i in range(30)]

        def run_once() -> float:
            engine = ExtractionEngine(token_registry())
            start = _time.perf_counter()
            engine.run(texts, Program(spanner))
            return _time.perf_counter() - start

        # Not a benchmark — just a sanity bound loose enough to never
        # flake: the untraced run must not be dramatically slower than
        # a second identical untraced run (no hidden tracing state
        # accumulates between engines).
        first = min(run_once() for _ in range(2))
        second = min(run_once() for _ in range(2))
        assert second < first * 3 + 0.05


class TestChunkLatencyCoverage:
    """``engine.chunk_eval_seconds`` must be populated in every
    tracer/workers combination — the untraced multiprocess path used to
    skip it entirely (chunks ran in workers, nothing observed)."""

    @pytest.mark.parametrize(
        "workers,traced",
        [(0, False), (0, True), (2, False), (2, True)],
        ids=["inproc", "inproc-traced", "pool", "pool-traced"],
    )
    def test_chunk_eval_histogram_populated(self, workers, traced):
        spanner = compile_regex_formula(PATTERN, ALPHABET)
        texts = [f"aa ab a{'a' * (i % 5)}." for i in range(12)]
        engine = ExtractionEngine(
            token_registry(), workers=workers, batch_size=4,
            tracer=Tracer() if traced else None,
        )
        try:
            result = engine.run(texts, Program(spanner))
            baseline = ExtractionEngine(token_registry()).run(
                texts, Program(spanner))
            assert result.by_document == baseline.by_document
            latency = engine.metrics.histogram(
                "engine.chunk_eval_seconds")
            evaluated = engine.stats().chunks_evaluated
            assert evaluated > 0
            assert latency.count == evaluated
            assert latency.sum >= 0.0
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Histogram quantile edges  (satellite: p99 must stay finite)
# ----------------------------------------------------------------------


class TestHistogramQuantileEdges:
    def _histogram(self, metrics=None):
        metrics = metrics or Metrics()
        return metrics.histogram("h", buckets=(0.1, 1.0))

    def test_empty_histogram_is_zero_everywhere(self):
        histogram = self._histogram()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        histogram = self._histogram()
        histogram.observe(50.0)          # beyond every bound
        for q in (0.0, 0.5, 0.99, 1.0):
            value = histogram.quantile(q)
            assert value == 1.0          # finite: the last bound
            assert value != float("inf")

    def test_q0_returns_first_occupied_bucket(self):
        histogram = self._histogram()
        histogram.observe(0.5)           # lands in the 1.0 bucket
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 1.0

    def test_below_first_bound_reports_first_bound(self):
        histogram = self._histogram()
        histogram.observe(0.01)
        assert histogram.quantile(0.0) == 0.1
        assert histogram.quantile(1.0) == 0.1

    def test_mixed_population_percentiles(self):
        histogram = self._histogram()
        for _ in range(99):
            histogram.observe(0.05)      # 0.1 bucket
        histogram.observe(10.0)          # overflow
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 0.1
        assert histogram.quantile(1.0) == 1.0  # clamped, not inf

    def test_out_of_range_q_rejected(self):
        histogram = self._histogram()
        histogram.observe(0.05)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)


# ----------------------------------------------------------------------
# Prometheus text-format conformance  (satellite)
# ----------------------------------------------------------------------

_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$")


class TestPrometheusConformance:
    """Pin ``to_prometheus`` to the text exposition format: legal
    names, ``# TYPE`` before samples, cumulative monotone buckets,
    ``+Inf`` == ``_count``, and escaped label values."""

    def _registry(self):
        metrics = Metrics()
        metrics.counter("engine.chunks_total",
                        tenant="acme").inc(4)
        metrics.gauge("queue.depth").set(2)
        histogram = metrics.histogram("engine.chunk_eval_seconds",
                                      buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return metrics

    def test_every_line_parses(self):
        text = to_prometheus(self._registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, kind = rest.split(" ")
                assert _PROM_NAME.match(name)
                assert kind in ("counter", "gauge", "histogram")
            else:
                match = _PROM_SAMPLE.match(line)
                assert match, f"unparseable sample line: {line!r}"
                float(match.group("value"))  # numeric

    def test_type_header_precedes_all_samples_of_a_family(self):
        text = to_prometheus(self._registry())
        seen_types = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                seen_types.add(line.split(" ")[2])
            else:
                name = _PROM_SAMPLE.match(line).group("name")
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert base in seen_types or name in seen_types

    def test_histogram_buckets_cumulative_and_complete(self):
        text = to_prometheus(self._registry())
        buckets = []
        count = None
        for line in text.splitlines():
            match = _PROM_SAMPLE.match(line) if not line.startswith("#") \
                else None
            if not match:
                continue
            if match.group("name") == "engine_chunk_eval_seconds_bucket":
                buckets.append(line)
            if match.group("name") == "engine_chunk_eval_seconds_count":
                count = float(match.group("value"))
        values = [float(_PROM_SAMPLE.match(b).group("value"))
                  for b in buckets]
        assert values == sorted(values)          # cumulative monotone
        assert 'le="+Inf"' in buckets[-1]
        assert values[-1] == count == 3
        sum_line = next(line for line in text.splitlines()
                        if line.startswith("engine_chunk_eval_seconds_sum"))
        assert float(sum_line.split(" ")[1]) == pytest.approx(5.55)

    def test_label_values_escaped(self):
        metrics = Metrics()
        metrics.counter("c", who='we"ird\\x\ny').inc()
        text = to_prometheus(metrics)
        assert r'who="we\"ird\\x\ny"' in text
        # Round-trip: unescaping restores the original value.
        raw = re.search(r'who="((?:[^"\\]|\\.)*)"', text).group(1)
        unescaped = (raw.replace(r"\n", "\n").replace(r"\"", '"')
                     .replace(r"\\", "\\"))
        assert unescaped == 'we"ird\\x\ny'

    def test_dotted_names_sanitized(self):
        metrics = Metrics()
        metrics.counter("service.queries").inc()
        text = to_prometheus(metrics)
        assert "service_queries 1" in text
        assert "service.queries" not in text
