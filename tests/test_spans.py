"""Unit and property tests for spans and span tuples (Section 2)."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.spans import (
    EMPTY_TUPLE,
    Span,
    SpanTuple,
    all_spans,
    whole_span,
)
from tests.conftest import spans_st


class TestSpan:
    def test_figure_1_shift(self):
        # Figure 1 of the paper: [2,6> >> [7,13> = [8,12>.
        assert Span(2, 6) >> Span(7, 13) == Span(8, 12)

    def test_invalid_spans_rejected(self):
        with pytest.raises(ValueError):
            Span(0, 1)
        with pytest.raises(ValueError):
            Span(3, 2)

    def test_empty_span_allowed(self):
        assert Span(4, 4).length == 0

    def test_extract(self):
        assert Span(2, 4).extract("abcde") == "bc"
        assert Span(1, 6).extract("abcde") == "abcde"
        assert Span(3, 3).extract("abcde") == ""

    def test_extract_out_of_range(self):
        with pytest.raises(ValueError):
            Span(2, 8).extract("abc")

    def test_overlap_paper_definition(self):
        assert Span(1, 3).overlaps(Span(2, 4))
        assert Span(2, 4).overlaps(Span(1, 3))
        assert not Span(1, 3).overlaps(Span(3, 5))
        # Empty span inside a non-empty one overlaps it.
        assert Span(1, 3).overlaps(Span(2, 2))
        # Equal empty spans do not overlap.
        assert not Span(2, 2).overlaps(Span(2, 2))
        # Adjacent spans are disjoint.
        assert Span(1, 2).disjoint(Span(2, 3))

    def test_contains(self):
        assert Span(1, 5).contains(Span(2, 3))
        assert Span(1, 5).contains(Span(1, 5))
        assert Span(1, 5).contains(Span(3, 3))
        assert not Span(2, 4).contains(Span(1, 3))

    def test_unshift_requires_containment(self):
        with pytest.raises(ValueError):
            Span(1, 3).unshift(Span(2, 5))

    @given(spans_st(), spans_st())
    def test_shift_unshift_roundtrip(self, inner, context):
        shifted = inner.shift(context)
        # Shifting never shrinks below the context start.
        assert shifted.begin >= context.begin
        if context.contains(shifted):
            assert shifted.unshift(context) == inner

    @given(spans_st(), spans_st(), spans_st())
    def test_shift_associative(self, s1, s2, s3):
        # The associativity used in the proof of Lemma 6.5.
        assert (s1 >> s2) >> s3 == s1 >> (s2 >> s3)

    @given(spans_st(), spans_st())
    def test_overlap_symmetric(self, s1, s2):
        assert s1.overlaps(s2) == s2.overlaps(s1)

    def test_all_spans_count(self):
        # |Spans(d)| = (n+1)(n+2)/2.
        assert len(list(all_spans("abc"))) == 10
        assert len(list(all_spans(""))) == 1

    def test_whole_span(self):
        assert whole_span("abc") == Span(1, 4)
        assert whole_span("") == Span(1, 1)


class TestSpanTuple:
    def test_mapping_interface(self):
        t = SpanTuple({"x": Span(1, 2), "y": Span(2, 4)})
        assert t["x"] == Span(1, 2)
        assert set(t) == {"x", "y"}
        assert len(t) == 2

    def test_equality_and_hash(self):
        t1 = SpanTuple({"x": Span(1, 2)})
        t2 = SpanTuple({"x": Span(1, 2)})
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert len({t1, t2}) == 1

    def test_shift_componentwise(self):
        t = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        shifted = t >> Span(5, 9)
        assert shifted["x"] == Span(5, 6)
        assert shifted["y"] == Span(6, 7)

    def test_enclosing_span(self):
        t = SpanTuple({"x": Span(2, 4), "y": Span(3, 7)})
        assert t.enclosing_span() == Span(2, 7)

    def test_empty_tuple_has_no_enclosure(self):
        with pytest.raises(ValueError):
            EMPTY_TUPLE.enclosing_span()

    def test_covered_by(self):
        t = SpanTuple({"x": Span(2, 4), "y": Span(3, 7)})
        assert t.covered_by(Span(1, 7))
        assert t.covered_by(Span(2, 7))
        assert not t.covered_by(Span(3, 7))
        # The 0-ary tuple is covered by anything (Definition 5.2).
        assert EMPTY_TUPLE.covered_by(Span(5, 5))

    def test_join_agreement(self):
        t1 = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        t2 = SpanTuple({"y": Span(2, 3), "z": Span(3, 4)})
        joined = t1.join(t2)
        assert set(joined) == {"x", "y", "z"}
        t3 = SpanTuple({"y": Span(1, 3)})
        assert not t1.agrees_with(t3)
        with pytest.raises(ValueError):
            t1.join(t3)

    @given(spans_st(), spans_st())
    def test_tuple_shift_matches_span_shift(self, inner, context):
        t = SpanTuple({"x": inner})
        assert (t >> context)["x"] == inner >> context
