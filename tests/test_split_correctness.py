"""Tests for split-correctness (Theorems 5.1 and 5.7)."""

import pytest
from hypothesis import given

from repro.automata.dfa import random_dfa
from repro.core.split_correctness import (
    split_correct_dfvsa,
    split_correct_general,
    split_correct_witness,
)
from repro.reductions import (
    split_correctness_instance,
    union_universality_instance,
)
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import (
    record_splitter,
    sentence_splitter,
    token_splitter,
)
from repro.splitters.disjointness import is_disjoint
from tests.conftest import formula_nodes_st, splitter_nodes_st
from tests.reference import semantically_split_correct

AB = frozenset("ab")
TXT = frozenset("ab ")


def token_bounded_extractor(alphabet=TXT):
    """Extracts maximal a-runs delimited by space or document edge."""
    return compile_regex_formula(
        ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet
    )


class TestPaperExamples:
    def test_example_5_8(self):
        p = compile_regex_formula("(a)y{b}b", AB)
        s = compile_regex_formula("x{ab}b|(a)x{bb}", AB)
        ps1 = compile_regex_formula("(a)y{b}", AB)
        ps2 = compile_regex_formula("y{b}b", AB)
        assert split_correct_general(p, ps1, s)
        assert split_correct_general(p, ps2, s)

    def test_http_request_line(self):
        # Section 3.1: P finds the line after a blank separator; P_S
        # finds the first line of each record.
        alphabet = frozenset("Gl#")
        p = compile_regex_formula("(.*\\#)?y{G}(l*)((\\#).*)?", alphabet)
        p_s = compile_regex_formula("y{G}l*", alphabet)
        records = record_splitter(alphabet, "#")
        assert split_correct_general(p, p_s, records)

    def test_self_case_via_general(self):
        p = token_bounded_extractor()
        tokens = token_splitter(TXT)
        assert split_correct_general(p, p, tokens)

    def test_wrong_split_spanner(self):
        p = token_bounded_extractor()
        wrong = compile_regex_formula(".*y{a+}.*", TXT)
        tokens = token_splitter(TXT)
        # `wrong` also matches a-runs adjacent to 'b's inside a token.
        assert not split_correct_general(p, wrong, tokens)

    def test_witness_production(self):
        p = token_bounded_extractor()
        wrong = compile_regex_formula(".*y{a+}.*", TXT)
        tokens = token_splitter(TXT)
        witness = split_correct_witness(p, wrong, tokens)
        assert witness is not None
        document, t = witness
        doc = "".join(document)
        from repro.core.composition import compose_semantics

        direct = p.evaluate(doc)
        composed = compose_semantics(wrong.evaluate, tokens, doc)
        assert (t in direct) != (t in composed)

    def test_variable_mismatch_rejected(self):
        p = compile_regex_formula("y{a}", AB)
        ps = compile_regex_formula("z{a}", AB)
        s = compile_regex_formula("x{(a|b)*}", AB)
        with pytest.raises(ValueError):
            split_correct_general(p, ps, s)


class TestTheorem51Family:
    @pytest.mark.parametrize("seed", range(6))
    def test_reduction_correct(self, seed):
        sigma = ["b", "c"]
        dfas = [random_dfa(sigma, 2, seed * 13 + k) for k in range(2)]
        truth = union_universality_instance(dfas, sigma)
        p, p_s, s = split_correctness_instance(dfas, sigma)
        assert split_correct_general(p, p_s, s) == truth

    def test_universal_instance(self):
        from repro.automata.regex import regex_to_nfa

        cover1 = regex_to_nfa("b*", frozenset("bc")).to_dfa()
        cover2 = regex_to_nfa("(b|c)*c(b|c)*", frozenset("bc")).to_dfa()
        p, p_s, s = split_correctness_instance([cover1, cover2], ["b", "c"])
        assert split_correct_general(p, p_s, s)


class TestTractableFragment:
    def test_theorem_5_7_positive(self):
        p = determinize(token_bounded_extractor())
        tokens = determinize(token_splitter(TXT))
        assert split_correct_dfvsa(p, p, tokens)
        assert split_correct_general(p, p, tokens)

    def test_theorem_5_7_negative(self):
        crossing = determinize(compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", TXT))
        tokens = determinize(token_splitter(TXT))
        assert not split_correct_dfvsa(crossing, crossing, tokens)
        assert not split_correct_general(crossing, crossing, tokens)

    def test_different_split_spanner(self):
        alphabet = frozenset("Gl#")
        p = determinize(compile_regex_formula(
            "(.*\\#)?y{G}(l*)((\\#).*)?", alphabet))
        p_s = determinize(compile_regex_formula("y{G}l*", alphabet))
        records = determinize(record_splitter(alphabet, "#"))
        assert split_correct_dfvsa(p, p_s, records)

    def test_precondition_check(self):
        p = token_bounded_extractor()
        tokens = determinize(token_splitter(TXT))
        with pytest.raises(ValueError):
            split_correct_dfvsa(p, p, tokens)

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_fast_agrees_with_general(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"} or p.variables == {"x"}:
            return
        if not is_disjoint(splitter):
            return
        p_det = determinize(p)
        s_det = determinize(splitter)
        fast = split_correct_dfvsa(p_det, p_det, s_det)
        slow = split_correct_general(p, p, splitter)
        assert fast == slow, (p_node.to_string(), s_node.to_string())

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_general_matches_bounded_semantics(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"}:
            return
        decided = split_correct_general(p, p, splitter)
        if decided:
            assert semantically_split_correct(p, p, splitter, 3)
        else:
            witness = split_correct_witness(p, p, splitter)
            assert witness is not None
