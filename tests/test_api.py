"""Tests for the auto-dispatching API and the CLI analyzer."""

import subprocess
import sys

import pytest

from repro.core.api import self_splittable, split_correct, splittable
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import char_ngram_splitter, token_splitter

TXT = frozenset("ab ")


def extractor():
    return compile_regex_formula(
        ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", TXT
    )


class TestDispatch:
    def test_auto_on_nondeterministic_uses_general(self):
        assert self_splittable(extractor(), token_splitter(TXT))

    def test_auto_on_dfvsa_uses_fast(self):
        p = determinize(extractor())
        tokens = determinize(token_splitter(TXT))
        assert self_splittable(p, tokens)
        assert self_splittable(p, tokens, method="fast")

    def test_fast_rejects_bad_preconditions(self):
        with pytest.raises(ValueError):
            self_splittable(extractor(), token_splitter(TXT), method="fast")

    def test_method_validation(self):
        with pytest.raises(ValueError):
            self_splittable(extractor(), token_splitter(TXT),
                            method="quantum")

    def test_methods_agree(self):
        p = determinize(extractor())
        tokens = determinize(token_splitter(TXT))
        assert self_splittable(p, tokens, method="fast") == \
            self_splittable(p, tokens, method="general")

    def test_split_correct_dispatch(self):
        p = extractor()
        tokens = token_splitter(TXT)
        assert split_correct(p, p, tokens)


class TestSplittableTriState:
    def test_disjoint_decided(self):
        assert splittable(extractor(), token_splitter(TXT)) is True
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", TXT
        )
        assert splittable(crossing, token_splitter(TXT)) is False

    def test_non_disjoint_self_split_is_true(self):
        ab = frozenset("ab")
        p = compile_regex_formula(".*y{a}.*", ab)
        two_grams = char_ngram_splitter(ab, 2,
                                        include_short_documents=True)
        assert splittable(p, two_grams) is True

    def test_non_disjoint_unknown(self):
        ab = frozenset("ab")
        p = compile_regex_formula("y{a}(a|b)(a|b).*", ab)
        two_grams = char_ngram_splitter(ab, 2)
        assert splittable(p, two_grams) is None


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_analyze(self):
        result = self._run(
            "analyze",
            "--pattern", ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}",
            "--alphabet", "ab .",
            "--splitters", "tokens,whole",
        )
        assert result.returncode == 0, result.stderr
        assert "plan: split by 'tokens'" in result.stdout

    def test_analyze_bad_pattern(self):
        result = self._run(
            "analyze", "--pattern", "(x{a})*", "--alphabet", "ab",
        )
        assert result.returncode == 2
        assert "error" in result.stderr
