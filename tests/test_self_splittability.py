"""Tests for self-splittability (Section 5.3, Theorems 5.16/5.17)."""

import pytest
from hypothesis import given

from repro.core.self_splittability import (
    is_self_splittable,
    is_self_splittable_dfvsa,
    self_splittability_witness,
)
from repro.reductions import self_splittability_instance
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import (
    char_ngram_splitter,
    sentence_splitter,
    token_splitter,
)

AB = frozenset("ab")
TXT = frozenset("ab .")


class TestExamples:
    def test_example_5_13(self):
        alphabet = frozenset("abc")
        p = compile_regex_formula("(ab)y{b}|(c)y{b}b", alphabet)
        s = compile_regex_formula("x{.*}|.*x{bb}.*", alphabet)
        assert is_self_splittable(p, s)

    def test_ngram_window_size_threshold(self):
        # Miniature of Section 3.1's email/phone example: P wants an
        # 'a' and a 'b' with at most one symbol in between; it is
        # self-splittable by N-grams (with the short-document window
        # convention) for N >= 3 but not for N = 2.
        p = compile_regex_formula(
            ".*e{a}(.?)p{b}.*|e{a}(.?)p{b}.*|.*e{a}(.?)p{b}|e{a}(.?)p{b}",
            AB,
        )
        three_gram = char_ngram_splitter(AB, 3, include_short_documents=True)
        two_gram = char_ngram_splitter(AB, 2, include_short_documents=True)
        assert is_self_splittable(p, three_gram)
        assert not is_self_splittable(p, two_gram)

    def test_person_name_extractor_vs_splitters(self):
        # An extractor bounded by ' '/'.'/edges.  Space-separated
        # tokens preserve every boundary, so it self-splits by tokens;
        # sentences do not exist in period-free documents, so the cover
        # condition fails for the sentence splitter.
        p = compile_regex_formula(
            ".*(\\.| )y{aa}(\\.| ).*|y{aa}(\\.| ).*|.*(\\.| )y{aa}|y{aa}",
            TXT,
        )
        tokens = token_splitter(TXT, separators={" "})
        assert is_self_splittable(p, tokens)
        sentences = sentence_splitter(TXT)
        assert not is_self_splittable(p, sentences)

    def test_whole_document_always_self_splits(self):
        from repro.splitters.builders import whole_document_splitter

        p = compile_regex_formula(".*y{ab}.*", AB)
        whole = whole_document_splitter(AB)
        assert is_self_splittable(p, whole)

    def test_witness(self):
        alphabet = frozenset("ab ")
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", alphabet
        )
        tokens = token_splitter(alphabet)
        witness = self_splittability_witness(crossing, tokens)
        assert witness is not None
        document, t = witness
        assert t in crossing.evaluate("".join(document))


class TestTractable:
    def test_theorem_5_17(self):
        alphabet = frozenset("ab ")
        p = determinize(compile_regex_formula(
            ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet))
        tokens = determinize(token_splitter(alphabet))
        assert is_self_splittable_dfvsa(p, tokens)
        assert is_self_splittable(p, tokens)


class TestTheorem516Family:
    """Corrected reduction (see EXPERIMENTS.md, F-3): the criterion for
    the construction is *equivalence* of r1 and r2; containment is
    reduced to equivalence via union."""

    @pytest.mark.parametrize(
        "r1,r2,expected",
        [
            ("(b|c)*", "(b|c)*", True),
            ("b*", "b*", True),
            ("b*", "(b|c)*", False),       # strict containment: not enough
            ("(b|c)*", "b*", False),
            ("b*|(b|c)*", "(b|c)*", True),   # encodes b* <= (b|c)*
            ("(b|c)*|b*", "b*", False),      # encodes (b|c)* <= b*: no
        ],
    )
    def test_reduction(self, r1, r2, expected):
        p, s = self_splittability_instance(r1, r2, "bc")
        assert is_self_splittable(p, s) == expected

    def test_paper_counterexample_documented(self):
        # The concrete failure of the paper's claimed criterion: with
        # r1 = b* strictly contained in r2 = (b|c)*, the witness 'ac'
        # separates P from P o S.
        p, s = self_splittability_instance("b*", "(b|c)*", "bc")
        witness = self_splittability_witness(p, s)
        assert witness is not None
