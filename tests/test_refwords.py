"""Tests for ref-words: validity, clr, tuple extraction (Section 4)."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.spans import Span, SpanTuple
from repro.spanners.refwords import (
    Close,
    Open,
    VarOp,
    block_decomposition,
    canonical_refword,
    clr,
    clr_string,
    gamma,
    is_valid,
    tuple_of,
)
from tests.conftest import documents_st, spans_st


class TestVarOps:
    def test_repr(self):
        assert repr(Open("x")) == "x|-"
        assert repr(Close("x")) == "-|x"

    def test_total_order_open_before_close(self):
        # The fixed order requires v|- < -|v for every variable.
        assert Open("x") < Close("x")
        assert Open("y") < Close("y")

    def test_order_is_total(self):
        ops = [Open("x"), Close("x"), Open("y"), Close("y")]
        ordered = sorted(ops)
        for first, second in zip(ordered, ordered[1:]):
            assert first < second

    def test_gamma(self):
        assert gamma(["x"]) == {Open("x"), Close("x")}
        assert len(gamma(["x", "y"])) == 4


class TestClr:
    def test_clr_erases_operations(self):
        word = ("a", Open("x"), "b", Close("x"), "c")
        assert clr(word) == ("a", "b", "c")
        assert clr_string(word) == "abc"

    def test_clr_of_pure_document(self):
        assert clr(tuple("abc")) == ("a", "b", "c")


class TestValidity:
    def test_valid_refword(self):
        word = (Open("x"), "a", Close("x"))
        assert is_valid(word, {"x"})

    def test_missing_close_invalid(self):
        assert not is_valid((Open("x"), "a"), {"x"})

    def test_close_before_open_invalid(self):
        assert not is_valid((Close("x"), "a", Open("x")), {"x"})

    def test_double_open_invalid(self):
        word = (Open("x"), Open("x"), Close("x"), Close("x"))
        assert not is_valid(word, {"x"})

    def test_unknown_variable_invalid(self):
        assert not is_valid((Open("y"), Close("y")), {"x"})

    def test_missing_variable_invalid(self):
        assert not is_valid(("a",), {"x"})

    def test_empty_span_at_same_position_valid(self):
        assert is_valid((Open("x"), Close("x"), "a"), {"x"})


class TestTupleExtraction:
    def test_paper_factorization(self):
        # r = a x|- b -|x  encodes x -> [2, 3>.
        word = ("a", Open("x"), "b", Close("x"))
        assert tuple_of(word, {"x"}) == SpanTuple({"x": Span(2, 3)})

    def test_empty_span(self):
        word = ("a", Open("x"), Close("x"), "b")
        assert tuple_of(word, {"x"}) == SpanTuple({"x": Span(2, 2)})

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            tuple_of((Open("x"), "a"), {"x"})

    def test_two_variables(self):
        word = (Open("x"), "a", Open("y"), Close("x"), "b", Close("y"))
        t = tuple_of(word, {"x", "y"})
        assert t["x"] == Span(1, 2)
        assert t["y"] == Span(2, 3)

    @given(documents_st(max_length=5), spans_st(max_position=5),
           spans_st(max_position=5))
    def test_canonical_roundtrip(self, document, s1, s2):
        # canonical_refword then tuple_of is the identity on tuples.
        n = len(document)
        if s1.end > n + 1 or s2.end > n + 1:
            return
        t = SpanTuple({"x": s1, "y": s2})
        word = canonical_refword(document, t)
        assert clr_string(word) == document
        assert is_valid(word, {"x", "y"})
        assert tuple_of(word, {"x", "y"}) == t

    @given(documents_st(max_length=5), spans_st(max_position=5))
    def test_canonical_is_ordered(self, document, span):
        if span.end > len(document) + 1:
            return
        word = canonical_refword(document, SpanTuple({"x": span, "y": span}))
        previous = None
        for symbol in word:
            if isinstance(symbol, VarOp):
                if previous is not None:
                    assert previous < symbol
                previous = symbol
            else:
                previous = None


class TestBlockDecomposition:
    def test_blocks(self):
        word = (Open("x"), "a", Close("x"), Open("y"), Close("y"), "b")
        blocks, letters = block_decomposition(word)
        assert letters == ("a", "b")
        assert blocks == (
            frozenset({Open("x")}),
            frozenset({Close("x"), Open("y"), Close("y")}),
            frozenset(),
        )

    def test_same_tuple_same_blocks(self):
        # Reordered adjacent operations produce identical blocks.
        w1 = (Open("x"), Open("y"), "a", Close("y"), Close("x"))
        w2 = (Open("y"), Open("x"), "a", Close("x"), Close("y"))
        assert block_decomposition(w1) == block_decomposition(w2)
