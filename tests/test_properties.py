"""Cross-cutting algebraic properties of the framework.

These are invariants that no single theorem states but that the
machinery must satisfy; hypothesis drives the instance generation and
exhaustive bounded-document evaluation provides ground truth.
"""

from hypothesis import given

from repro.core.composition import compose, compose_semantics
from repro.core.reasoning import compose_splitters
from repro.spanners.algebra import natural_join, project, union
from repro.spanners.containment import spanner_equivalent
from repro.spanners.determinism import determinize, is_deterministic
from repro.spanners.regex_formulas import compile_regex_formula
from tests.conftest import formula_nodes_st, splitter_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


def _compile(node):
    return compile_regex_formula(node, AB, require_functional=False)


def _splitter(node):
    spanner = _compile(node)
    return spanner if spanner.variables == {"x"} else None


@given(formula_nodes_st(max_depth=2), splitter_nodes_st(),
       splitter_nodes_st())
def test_composition_is_associative(p_node, s1_node, s2_node):
    """``(P o S1) o S2 == P o (S1 o S2)`` — chunk nesting composes."""
    p = _compile(p_node)
    s1, s2 = _splitter(s1_node), _splitter(s2_node)
    if s1 is None or s2 is None or "x" in p.variables:
        return
    left = compose(compose(p, s1), s2)
    right = compose(p, compose_splitters(s1, s2))
    for document in documents_upto(AB, 3):
        assert left.evaluate(document) == right.evaluate(document), (
            p_node.to_string(), s1_node.to_string(), s2_node.to_string(),
            document,
        )


@given(formula_nodes_st(max_depth=2))
def test_determinize_is_idempotent_up_to_equivalence(node):
    spanner = _compile(node)
    once = determinize(spanner)
    twice = determinize(once)
    assert is_deterministic(once)
    assert is_deterministic(twice)
    assert spanner_equivalent(once, twice)


@given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
def test_union_is_commutative(n1, n2):
    from repro.spanners.regex_formulas import svars

    if svars(n1) != svars(n2):
        return
    p1, p2 = _compile(n1), _compile(n2)
    assert spanner_equivalent(union(p1, p2), union(p2, p1))


@given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
def test_join_is_commutative(n1, n2):
    p1, p2 = _compile(n1), _compile(n2)
    left = natural_join(p1, p2)
    right = natural_join(p2, p1)
    for document in documents_upto(AB, 3):
        assert left.evaluate(document) == right.evaluate(document)


@given(formula_nodes_st(max_depth=2))
def test_projection_composes(node):
    spanner = _compile(node)
    variables = sorted(spanner.variables, key=str)
    if len(variables) < 2:
        return
    keep_one = {variables[0]}
    via_two_steps = project(project(spanner, set(variables[:2])), keep_one)
    direct = project(spanner, keep_one)
    for document in documents_upto(AB, 3):
        assert via_two_steps.evaluate(document) == direct.evaluate(document)


@given(formula_nodes_st(max_depth=2), splitter_nodes_st())
def test_composition_construction_equals_definition(p_node, s_node):
    """Lemma C.2's automaton equals the Definition 3 semantics — the
    foundational equality every procedure relies on."""
    p = _compile(p_node)
    splitter = _splitter(s_node)
    if splitter is None or "x" in p.variables:
        return
    automaton = compose(p, splitter)
    for document in documents_upto(AB, 3):
        assert automaton.evaluate(document) == compose_semantics(
            p.evaluate, splitter, document
        )


@given(splitter_nodes_st())
def test_whole_document_composition_is_identity_on_splitters(s_node):
    """``S o whole == S``: splitting the single whole-document chunk
    re-derives the splitter itself."""
    from repro.splitters.builders import whole_document_splitter

    splitter = _splitter(s_node)
    if splitter is None:
        return
    whole = whole_document_splitter(AB, variable="w")
    composed = compose_splitters(splitter, whole)
    for document in documents_upto(AB, 3):
        assert composed.evaluate(document) == splitter.evaluate(document)


@given(formula_nodes_st(max_depth=2))
def test_evaluation_agrees_with_extended_roundtrip_and_determinized(node):
    """Three pipelines, one semantics: direct evaluation, the canonical
    extended form, and the determinized automaton."""
    from repro.spanners.vset_automaton import from_extended_nfa

    spanner = _compile(node)
    rebuilt = from_extended_nfa(spanner.extended_nfa(), AB,
                                spanner.variables)
    det = determinize(spanner)
    for document in documents_upto(AB, 3):
        reference = spanner.evaluate(document)
        assert rebuilt.evaluate(document) == reference
        assert det.evaluate(document) == reference
