"""End-to-end validation of the hardness-reduction families.

Each reduction maps a source instance with *known* answer (decided
directly on the source problem) to a framework instance; the framework
procedure must return the same answer.
"""

import pytest

from repro.automata.dfa import random_dfa
from repro.automata.regex import regex_to_nfa
from repro.core.cover import cover_condition_general
from repro.core.self_splittability import is_self_splittable
from repro.core.split_correctness import split_correct_general
from repro.core.splittability import is_splittable
from repro.reductions import (
    self_splittability_instance,
    split_correctness_instance,
    splittability_instance,
    union_universality_instance,
    weak_determinism_containment_instance,
)
from repro.spanners.containment import spanner_contains
from repro.spanners.determinism import is_weakly_deterministic

SIGMA = ["b", "c"]


def dfa_family(seed, count=2, states=3):
    return [random_dfa(SIGMA, states, seed * 31 + k) for k in range(count)]


class TestTheorem42:
    @pytest.mark.parametrize("seed", range(8))
    def test_reduction(self, seed):
        dfas = dfa_family(seed)
        truth = union_universality_instance(dfas, SIGMA)
        a, a_prime = weak_determinism_containment_instance(dfas, SIGMA)
        assert spanner_contains(a, a_prime) == truth

    def test_left_automaton_is_weakly_deterministic(self):
        a, _ = weak_determinism_containment_instance(dfa_family(1), SIGMA)
        assert is_weakly_deterministic(a)

    def test_three_dfas(self):
        dfas = dfa_family(5, count=3, states=2)
        truth = union_universality_instance(dfas, SIGMA)
        a, a_prime = weak_determinism_containment_instance(dfas, SIGMA)
        assert spanner_contains(a, a_prime) == truth


class TestTheorem51:
    @pytest.mark.parametrize("seed", range(8))
    def test_reduction(self, seed):
        dfas = dfa_family(seed)
        truth = union_universality_instance(dfas, SIGMA)
        p, p_s, s = split_correctness_instance(dfas, SIGMA)
        assert split_correct_general(p, p_s, s) == truth

    def test_cover_variant_lemma_5_4(self):
        for seed in range(4):
            dfas = dfa_family(seed + 100)
            truth = union_universality_instance(dfas, SIGMA)
            p, _p_s, s = split_correctness_instance(dfas, SIGMA)
            assert cover_condition_general(p, s) == truth

    def test_universal_cover_pair(self):
        covers = [
            regex_to_nfa("b*", frozenset(SIGMA)).to_dfa(),
            regex_to_nfa("(b|c)*c(b|c)*", frozenset(SIGMA)).to_dfa(),
        ]
        p, p_s, s = split_correctness_instance(covers, SIGMA)
        assert split_correct_general(p, p_s, s)

    def test_pad_symbol_clash_rejected(self):
        with pytest.raises(ValueError):
            split_correctness_instance(dfa_family(0), ["a", "b"])


class TestTheorem515:
    @pytest.mark.parametrize(
        "r1,r2",
        [
            ("b*", "(b|c)*"),
            ("(b|c)*", "b*"),
            ("bc|cb", "b(b|c)|c(b|c)"),
            ("(bb)*", "b*"),
        ],
    )
    def test_reduction(self, r1, r2):
        from repro.automata.containment import nfa_contains

        truth = nfa_contains(
            regex_to_nfa(r1, frozenset(SIGMA)),
            regex_to_nfa(r2, frozenset(SIGMA)),
        )
        p, s = splittability_instance(r1, r2, SIGMA)
        assert is_splittable(p, s) == truth


class TestTheorem516Corrected:
    @pytest.mark.parametrize(
        "r1,r2",
        [
            ("b*", "b*"),
            ("b*", "(b|c)*"),
            ("(b|c)*", "b*"),
            ("bc", "bc|cb"),
            ("bc|cb", "bc|cb"),
        ],
    )
    def test_equivalence_criterion(self, r1, r2):
        from repro.automata.containment import nfa_equivalent

        truth = nfa_equivalent(
            regex_to_nfa(r1, frozenset(SIGMA)),
            regex_to_nfa(r2, frozenset(SIGMA)),
        )
        p, s = self_splittability_instance(r1, r2, SIGMA)
        assert is_self_splittable(p, s) == truth
