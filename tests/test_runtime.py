"""Tests for the execution runtime: executor, fast paths, incremental
evaluation, and the planner."""

import random

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.composition import splits_of
from repro.core.spans import Span, SpanTuple
from repro.runtime import (
    FastFixedWindowSplitter,
    FastSentenceSplitter,
    FastSeparatorSplitter,
    FastTokenNgramSplitter,
    IncrementalExtractor,
    Plan,
    Planner,
    RegexSpanner,
    RegisteredSplitter,
    evaluate_whole,
    map_corpus,
    map_corpus_sequential,
    split_by,
    split_by_parallel,
)
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import (
    fixed_window_splitter,
    sentence_splitter,
    token_ngram_splitter,
    token_splitter,
)

TXT = frozenset("ab .")


def a_run_extractor():
    return compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}", TXT
    )


class TestExecutor:
    def test_split_by_matches_whole_when_split_correct(self):
        spanner = a_run_extractor()
        tokens = token_splitter(TXT)
        doc = "aa ab a aaa."
        assert split_by(spanner, tokens, doc) == evaluate_whole(spanner, doc)

    def test_parallel_matches_sequential(self):
        spanner = a_run_extractor()
        fast_tokens = FastSeparatorSplitter(" .")
        doc = "aa ab a aaa. a"
        sequential = split_by(spanner, fast_tokens, doc)
        parallel = split_by_parallel(spanner, fast_tokens, doc, workers=3)
        assert sequential == parallel

    def test_map_corpus(self):
        spanner = a_run_extractor()
        docs = ["aa ab", "b aaa", "", "a"]
        fast_tokens = FastSeparatorSplitter(" .")
        seq_whole = map_corpus_sequential(spanner, docs)
        seq_split = map_corpus_sequential(spanner, docs, fast_tokens)
        par_split = map_corpus(spanner, docs, workers=2,
                               splitter=fast_tokens)
        assert seq_whole == seq_split == par_split

    def test_empty_corpus(self):
        spanner = a_run_extractor()
        assert map_corpus(spanner, [], workers=2) == []


class TestFastSplitters:
    CASES = [
        (FastSeparatorSplitter(" "), lambda al: token_splitter(al, {" "})),
        (FastSentenceSplitter(), sentence_splitter),
        (FastTokenNgramSplitter(2), lambda al: token_ngram_splitter(al, 2)),
        (FastFixedWindowSplitter(3), lambda al: fixed_window_splitter(al, 3)),
    ]

    @pytest.mark.parametrize("fast,builder", CASES)
    def test_agrees_with_specification(self, fast, builder):
        rng = random.Random(42)
        automaton = builder(TXT)
        for _ in range(60):
            doc = "".join(rng.choice("ab. ") for _ in
                          range(rng.randrange(0, 14)))
            assert set(fast.splits(doc)) == splits_of(automaton, doc), doc

    @pytest.mark.parametrize("fast,builder", CASES)
    def test_automaton_method(self, fast, builder):
        spec = fast.automaton(TXT)
        for doc in ["", "a", "ab a.", "a  b ."]:
            assert set(fast.splits(doc)) == splits_of(spec, doc)

    def test_chunks(self):
        fast = FastSeparatorSplitter(" ")
        assert fast.chunks("aa b") == ["aa", "b"]


class TestRegexSpanner:
    def test_matches_vsa_on_samples(self):
        vsa = a_run_extractor()
        fast = RegexSpanner(r"(?:^|[ .])(?P<y>a+)(?=[ .]|$)",
                            specification=vsa)
        rng = random.Random(7)
        for _ in range(60):
            doc = "".join(rng.choice("ab. ") for _ in
                          range(rng.randrange(0, 14)))
            assert fast.evaluate(doc) == vsa.evaluate(doc), doc

    def test_requires_named_groups(self):
        with pytest.raises(ValueError):
            RegexSpanner(r"a+")


class TestIncremental:
    def test_edit_reuses_unchanged_chunks(self):
        spanner = a_run_extractor()
        extractor = IncrementalExtractor(spanner, FastSentenceSplitter())
        original = "aa ab. ba aa. a b."
        assert extractor.evaluate(original) == spanner.evaluate(original)
        edited = "aa ab. ba ba. a b."
        assert extractor.evaluate(edited) == spanner.evaluate(edited)
        stats = extractor.stats()
        assert stats["reused"] == 2   # two untouched sentences
        assert stats["evaluated"] == 4  # 3 originals + 1 edited

    def test_cache_limit(self):
        spanner = a_run_extractor()
        extractor = IncrementalExtractor(
            spanner, FastSeparatorSplitter(" ."), cache_limit=2
        )
        extractor.evaluate("aa ab ba")
        assert extractor.stats()["cached_chunks"] <= 2

    def test_verification_rejects_unsound_pairs(self):
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", TXT
        )
        with pytest.raises(ValueError):
            IncrementalExtractor(crossing, token_splitter(TXT), verify=True)

    def test_verification_accepts_sound_pairs(self):
        spanner = a_run_extractor()
        extractor = IncrementalExtractor(spanner, token_splitter(TXT),
                                         verify=True)
        doc = "aa ab"
        assert extractor.evaluate(doc) == spanner.evaluate(doc)


class TestPlanner:
    def _planner(self):
        return Planner([
            RegisteredSplitter("tokens", token_splitter(TXT), priority=3,
                               executor=FastSeparatorSplitter(" \n")),
            RegisteredSplitter("sentences", sentence_splitter(TXT),
                               priority=2, executor=FastSentenceSplitter()),
        ])

    def test_plan_prefers_finest_self_splittable(self):
        planner = self._planner()
        plan = planner.plan(a_run_extractor())
        assert plan.mode == "split"
        assert plan.splitter.name == "tokens"
        assert plan.self_splittable

    def test_plan_falls_back_to_whole(self):
        planner = self._planner()
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", TXT
        )
        plan = planner.plan(crossing)
        assert plan.mode == "whole"

    def test_plan_execution(self):
        planner = self._planner()
        spanner = a_run_extractor()
        plan = planner.plan(spanner)
        doc = "aa ab a."
        assert plan.execute(spanner, doc) == spanner.evaluate(doc)

    def test_analyse_reports(self):
        planner = self._planner()
        reports = planner.analyse(a_run_extractor())
        by_name = {r.name: r for r in reports}
        assert by_name["tokens"].self_splittable
        assert by_name["tokens"].disjoint
        assert by_name["tokens"].overlap_witness is None
        assert not by_name["sentences"].self_splittable

    def test_analyse_reports_overlap_witness(self):
        from repro.splitters.builders import token_ngram_splitter

        planner = Planner([
            RegisteredSplitter("2grams", token_ngram_splitter(TXT, 2)),
        ])
        report = planner.analyse(a_run_extractor())[0]
        assert not report.disjoint
        assert report.splittable is None
        assert report.overlap_witness is not None

    def test_debugging_scenario(self):
        # The paper's HTTP debugging story: a program crossing record
        # boundaries is reported as not splittable by records.
        alphabet = frozenset("Gl#")
        from repro.splitters.builders import record_splitter

        planner = Planner([
            RegisteredSplitter("records", record_splitter(alphabet, "#"),
                               priority=1),
        ])
        crossing = compile_regex_formula(".*y{l\\#G}.*", alphabet)
        reports = planner.analyse(crossing)
        assert not reports[0].self_splittable
        assert reports[0].splittable is False
