"""Tests for spanner containment and equivalence (Theorem 4.1)."""

from hypothesis import given
import pytest

from repro.spanners.containment import (
    containment_witness,
    equivalence_witness,
    spanner_contains,
    spanner_equivalent,
)
from repro.spanners.regex_formulas import compile_regex_formula, svars
from tests.conftest import formula_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")


def brute_contains(p1, p2, max_length=3):
    for document in documents_upto(AB, max_length):
        if not p1.evaluate(document) <= p2.evaluate(document):
            return False
    return True


class TestContainment:
    def test_basic(self):
        small = compile_regex_formula(".*x{a}.*", AB)
        large = compile_regex_formula(".*x{a|b}.*", AB)
        assert spanner_contains(small, large)
        assert not spanner_contains(large, small)

    def test_operation_reordering_is_transparent(self):
        # Same function, different op orders in the ref-words.
        p1 = compile_regex_formula("x{~}y{~}ab", AB)
        p2 = compile_regex_formula("y{~}x{~}ab", AB)
        assert spanner_equivalent(p1, p2)

    def test_variable_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spanner_contains(
                compile_regex_formula("x{a}", AB),
                compile_regex_formula("y{a}", AB),
            )

    def test_witness_decoding(self):
        small = compile_regex_formula(".*x{a}.*", AB)
        large = compile_regex_formula(".*x{a|b}.*", AB)
        witness = containment_witness(large, small)
        assert witness is not None
        document, span_tuple = witness
        doc = "".join(document)
        assert span_tuple in large.evaluate(doc)
        assert span_tuple not in small.evaluate(doc)

    def test_equivalence_witness_none_when_equal(self):
        p = compile_regex_formula(".*x{ab}.*", AB)
        assert equivalence_witness(p, p) is None

    def test_nonfunctional_operands(self):
        # Containment uses validity filtering, so non-functional
        # automata are handled per their spanner semantics.
        bad = compile_regex_formula("(x{a})*", AB, require_functional=False)
        good = compile_regex_formula("x{a}", AB)
        assert spanner_equivalent(bad, good)

    @given(formula_nodes_st(max_depth=2), formula_nodes_st(max_depth=2))
    def test_matches_brute_force(self, n1, n2):
        if svars(n1) != svars(n2):
            return
        p1 = compile_regex_formula(n1, AB, require_functional=False)
        p2 = compile_regex_formula(n2, AB, require_functional=False)
        decided = spanner_contains(p1, p2)
        if decided:
            assert brute_contains(p1, p2)
        else:
            witness = containment_witness(p1, p2)
            assert witness is not None
            document, t = witness
            doc = "".join(document)
            assert t in p1.evaluate(doc) and t not in p2.evaluate(doc)
