"""Tests for the resident serving layer (:mod:`repro.serve`) and the
deadline/admission semantics it builds on."""

import asyncio
import json
import multiprocessing.pool
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import Corpus, Deadline, ExtractionEngine, Program, \
    as_deadline
from repro.engine.deadline import NEVER
from repro.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.query import Q, Spanner
from repro.runtime import FastSeparatorSplitter, RegisteredSplitter
from repro.serve import ExtractionService, ServiceHTTPServer
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter

TXT = frozenset("ab .")
PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
           "|.*(\\.| )y{a+}|y{a+}")

DOCS = ["aa ab a.", "ab ab aa.", "aa ab a.", "b aa b"]


def a_run_extractor():
    return compile_regex_formula(PATTERN, TXT)


def registry():
    return [
        RegisteredSplitter("tokens", token_splitter(TXT), priority=1,
                           executor=FastSeparatorSplitter(" ")),
    ]


class SlowSpanner:
    """An executable whose per-chunk evaluation takes ``delay`` seconds
    — what makes wall-clock deadlines fire *mid-run* reliably."""

    def __init__(self, specification, delay=0.02):
        self.specification = specification
        self.delay = delay

    def evaluate(self, text):
        time.sleep(self.delay)
        return set(self.specification.evaluate(text))


class CountingDeadline(Deadline):
    """Expires after a fixed number of cooperative checks — the
    timing-independent way to stop an engine run at an exact batch
    boundary."""

    def __init__(self, allowed_checks):
        super().__init__()
        self.checks = 0
        self.allowed = allowed_checks

    def check(self):
        self.checks += 1
        if self.checks > self.allowed:
            raise DeadlineExceededError(elapsed=self.elapsed(),
                                        budget=0.0)


def make_service(workers=0, max_queue=8, default_deadline=None,
                 batch_size=2, program=None):
    engine = ExtractionEngine(registry(), workers=workers,
                              batch_size=batch_size)
    if program is None:
        program = Program(a_run_extractor(), name="a-runs")
    return ExtractionService(engine, program=program,
                             max_queue=max_queue,
                             default_deadline=default_deadline)


def reference_results(docs=DOCS):
    engine = ExtractionEngine(registry())
    return engine.run(Corpus.from_texts(list(docs)),
                      Program(a_run_extractor(), name="ref")) \
        .by_document


# ----------------------------------------------------------------------
# Deadline objects
# ----------------------------------------------------------------------


class TestDeadline:
    def test_after_none_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline is NEVER
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check()  # no-op

    def test_expired_budget_raises_with_context(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check()
        assert info.value.budget == 0.0
        assert info.value.elapsed >= 0.0

    def test_remaining_counts_down(self):
        deadline = Deadline.after(60.0)
        assert 0 < deadline.remaining() <= 60.0
        assert not deadline.expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_as_deadline_coercions(self):
        assert as_deadline(None) is NEVER
        deadline = Deadline.after(5.0)
        assert as_deadline(deadline) is deadline
        assert isinstance(as_deadline(0.5), Deadline)
        with pytest.raises(TypeError):
            as_deadline("soon")


# ----------------------------------------------------------------------
# Engine-level deadline semantics
# ----------------------------------------------------------------------


class TestEngineDeadlines:
    def test_run_without_deadline_unchanged(self):
        engine = ExtractionEngine(registry())
        result = engine.run(DOCS, Program(a_run_extractor()))
        assert result.by_document == reference_results()

    def test_deadline_fires_mid_run_engine_stays_usable(self):
        """The acceptance scenario: a mid-run expiry raises the typed
        error, and the very next query on the same engine succeeds
        with full, correct results."""
        engine = ExtractionEngine(registry(), batch_size=1)
        program = Program(a_run_extractor(), name="a-runs")
        corpus = Corpus.from_texts([f"a{'b' * i} aa" for i in range(12)])
        with pytest.raises(DeadlineExceededError):
            for _ in engine.run_iter(corpus, program,
                                     deadline=CountingDeadline(5)):
                pass
        # Partial work is cached, nothing is poisoned: a fresh full
        # run completes and agrees with an independent engine.
        complete = engine.run(corpus, program)
        fresh = ExtractionEngine(registry()).run(
            corpus, Program(a_run_extractor(), name="ref"))
        assert complete.by_document == fresh.by_document

    def test_deadline_preserves_partial_chunk_cache(self):
        engine = ExtractionEngine(registry(), batch_size=1)
        program = Program(a_run_extractor(), name="a-runs")
        corpus = Corpus.from_texts([f"a{'b' * i} aa" for i in range(10)])
        deadline = CountingDeadline(8)
        with pytest.raises(DeadlineExceededError):
            for _ in engine.run_iter(corpus, program, deadline=deadline):
                pass
        # Every check before the cut-off was a completed batch
        # boundary; the chunks those batches evaluated stay cached.
        assert deadline.checks == 9
        assert len(engine.chunk_cache) > 0

    def test_wall_clock_deadline_fires(self):
        engine = ExtractionEngine(registry(), batch_size=1)
        specification = a_run_extractor()
        slow = Program(SlowSpanner(specification, delay=0.02),
                       specification, name="slow")
        corpus = Corpus.from_texts([f"a{'b' * i} aa" for i in range(12)])
        with pytest.raises(DeadlineExceededError) as info:
            engine.run(corpus, slow, deadline=0.05)
        assert info.value.budget == pytest.approx(0.05)
        assert info.value.elapsed >= 0.05

    def test_pool_survives_deadline_and_runner_swap(self, monkeypatch):
        """Deadline abandonment plus a runner swap must not terminate
        the pool: the swap drains gracefully (in-flight batches
        finish), ``terminate()`` fires only on hard shutdown, and both
        programs keep producing correct results afterward."""
        terminations = []
        original_terminate = multiprocessing.pool.Pool.terminate
        monkeypatch.setattr(
            multiprocessing.pool.Pool, "terminate",
            lambda pool: (terminations.append(1),
                          original_terminate(pool))[1])

        engine = ExtractionEngine(registry(), workers=2, batch_size=2)
        try:
            spec_a = a_run_extractor()
            slow_a = Program(SlowSpanner(spec_a, delay=0.03),
                             spec_a, name="slow-a")
            spec_b = compile_regex_formula(".*( )y{b+}( ).*|y{b+}( ).*"
                                           "|.*( )y{b+}|y{b+}", TXT)
            program_b = Program(spec_b, name="b-runs")
            corpus = Corpus.from_texts(
                [f"a{'b' * (i % 5)} aa bb" for i in range(16)])
            # >=0.1s of slow chunk work against a 0.05s budget: the
            # deadline is guaranteed to fire while pool batches are in
            # flight, abandoning the imap iterator.
            with pytest.raises(DeadlineExceededError):
                engine.run(corpus, slow_a, deadline=0.05)
            # Swap runners mid-life: the abandoned A batches drain
            # gracefully, then B runs on a fresh pool.
            result_b = engine.run(corpus, program_b)
            reference_b = ExtractionEngine(registry()).run(
                corpus, Program(spec_b, name="ref-b"))
            assert result_b.by_document == reference_b.by_document
            # And back to A, completing the interrupted workload.
            result_a = engine.run(corpus, slow_a)
            reference_a = ExtractionEngine(registry()).run(
                corpus, Program(spec_a, name="ref-a"))
            assert result_a.by_document == reference_a.by_document
            assert not terminations, \
                "runner swaps must drain, not terminate"
        finally:
            engine.close()
        assert terminations, "close() is the hard-shutdown path"

    def test_shm_segment_released_after_deadline_and_close(self):
        from repro.automata import shm

        baseline = set(shm.leaked_segments())
        engine = ExtractionEngine(registry(), workers=2, batch_size=2)
        try:
            specification = a_run_extractor()
            slow = Program(SlowSpanner(specification, delay=0.03),
                           specification, name="slow")
            corpus = Corpus.from_texts([f"a{'b' * i} aa"
                                        for i in range(8)])
            with pytest.raises(DeadlineExceededError):
                engine.run(corpus, slow, deadline=0.05)
            # Same runner object: the pool (and any shm segment) is
            # reused, and the rerun completes correctly.
            result = engine.run(corpus, slow)
            reference = ExtractionEngine(registry()).run(
                corpus, Program(specification, name="ref"))
            assert result.by_document == reference.by_document
        finally:
            engine.close()
        assert set(shm.leaked_segments()) <= baseline


# ----------------------------------------------------------------------
# Service semantics
# ----------------------------------------------------------------------


class TestExtractionService:
    def test_extract_matches_engine(self):
        service = make_service()
        with service:
            result = service.extract(DOCS)
        assert result.by_document == reference_results()
        assert result.total_tuples == sum(
            len(t) for t in reference_results().values())

    def test_deadline_miss_counted_and_engine_reusable(self):
        specification = a_run_extractor()
        slow = Program(SlowSpanner(specification, delay=0.02),
                       specification, name="slow")
        service = make_service(batch_size=1, program=slow)
        corpus = [f"a{'b' * i} aa" for i in range(12)]
        with service:
            with pytest.raises(DeadlineExceededError):
                service.extract(corpus, deadline=0.05, tenant="acme")
            # The shared engine is not poisoned: the same service
            # answers the next query, and the miss is accounted.
            result = service.extract(
                DOCS, tenant="acme",
                program=Program(a_run_extractor(), name="a-runs"))
            stats = service.tenant_stats("acme")
        assert result.by_document == reference_results()
        assert stats["deadline_misses"] == 1
        assert stats["queries"] == 2
        assert stats["latency_p95"] > 0

    def test_admission_rejects_when_queue_full(self):
        specification = a_run_extractor()
        slow = Program(SlowSpanner(specification, delay=0.05),
                       specification, name="slow")
        service = make_service(max_queue=1, batch_size=1, program=slow)
        # Ten distinct single-chunk documents: ~0.5s of dispatcher
        # work, plenty of time to observe a full queue.
        blocker_corpus = [f"a{'b' * i}" for i in range(10)]
        with service:
            blocker = service.submit(blocker_corpus, tenant="acme")
            admitted = []
            with pytest.raises(ServiceOverloadedError) as info:
                for _ in range(50):
                    admitted.append(service.submit(["ab"],
                                                   tenant="acme"))
            assert info.value.capacity == 1
            blocker.result(timeout=30)
            for future in admitted:
                future.result(timeout=30)
            stats = service.tenant_stats("acme")
        assert stats["rejections"] >= 1

    def test_concurrent_queries_share_one_certification(self):
        service = make_service(max_queue=32)
        program = Program(a_run_extractor(), name="shared")
        barrier = threading.Barrier(8)
        futures = []
        lock = threading.Lock()

        def submit():
            barrier.wait()
            future = service.submit(DOCS, program)
            with lock:
                futures.append(future)

        with service:
            threads = [threading.Thread(target=submit)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=30) for future in futures]
            plan_cache = service._engine.plan_cache
            assert len(results) == 8
            for result in results:
                assert result.by_document == reference_results()
            assert plan_cache.misses == 1
            assert plan_cache.hits == 7

    def test_concurrent_identical_corpora_cache_accounting(self):
        """Serial dispatch keeps ``hit_rate``/``record_batch_hit``
        accounting exactly what a sequential client would see: the
        first query pays every unique chunk, later ones are all hits."""
        service = make_service(max_queue=32)
        docs = ["aa ab a.", "aa ab a.", "ab b aa"]
        with service:
            futures = [service.submit(docs) for _ in range(4)]
            for future in futures:
                future.result(timeout=30)
            cache = service._engine.chunk_cache
            unique = len({chunk for doc in docs
                          for chunk in doc.split(" ")})
            instances = sum(len(doc.split(" ")) for doc in docs) * 4
            assert cache.misses == unique
            assert cache.hits == instances - unique
            assert cache.hit_rate == pytest.approx(
                (instances - unique) / instances)

    def test_submit_after_close_raises(self):
        service = make_service()
        with service:
            service.extract(DOCS)
        with pytest.raises(ServiceClosedError):
            service.submit(DOCS)

    def test_async_front_end(self):
        service = make_service()

        async def main():
            return await asyncio.gather(
                service.extract_async(DOCS, tenant="a"),
                service.extract_async(DOCS, tenant="b"),
            )

        with service:
            first, second = asyncio.run(main())
        assert first.by_document == reference_results()
        assert second.by_document == reference_results()
        assert first.queue_seconds >= 0.0
        assert first.run_seconds >= 0.0

    def test_prometheus_exposition_labels_tenants(self):
        service = make_service()
        with service:
            service.extract(DOCS, tenant="acme")
            service.extract(DOCS, tenant="zeta")
            text = service.to_prometheus()
        assert 'tenant="acme"' in text
        assert 'tenant="zeta"' in text
        assert "service_queries" in text
        assert "service_queue_wait_seconds" in text

    def test_query_serve_entry(self):
        spanner = Spanner.regex(PATTERN, TXT, name="a-runs")
        service = Q(spanner).split_by("tokens").serve(max_queue=3)
        assert isinstance(service, ExtractionService)
        assert service.max_queue == 3
        with service:
            result = service.extract(DOCS)
        assert result.by_document == reference_results()


# ----------------------------------------------------------------------
# The HTTP endpoint
# ----------------------------------------------------------------------


@pytest.fixture
def http_service():
    service = make_service(max_queue=16).start()
    server = ServiceHTTPServer(service)
    bound = {}
    ready = threading.Event()

    def run():
        async def main():
            bound["loop"] = asyncio.get_running_loop()
            bound["addr"] = await server.start(port=0)
            ready.set()
            await server.serve_forever()
        try:
            asyncio.run(main())
        except asyncio.CancelledError:
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    host, port = bound["addr"]
    yield f"http://{host}:{port}", service
    # Closing the server cancels serve_forever(), unwinding the loop.
    asyncio.run_coroutine_threadsafe(server.stop(), bound["loop"])
    thread.join(timeout=10)
    service.close()


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response)


class TestHTTPEndpoint:
    def test_extract_round_trip(self, http_service):
        base, _service = http_service
        status, payload = _post(base + "/extract",
                                {"texts": list(DOCS), "tenant": "t1"})
        assert status == 200
        reference = reference_results()
        assert payload["tuples"] == sum(
            len(t) for t in reference.values())
        assert set(payload["documents"]) == set(reference)
        # Span tuples survive the JSON round trip positionally.
        for doc_id, tuples in reference.items():
            expected = sorted(
                sorted((str(v), [s.begin, s.end])
                       for v, s in tup.items())
                for tup in tuples
            )
            got = sorted(
                sorted((var, bounds) for var, bounds in row.items())
                for row in payload["documents"][doc_id]
            )
            assert got == expected

    def test_deadline_maps_to_504(self, http_service):
        base, _service = http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base + "/extract",
                  {"texts": ["aa ab"], "deadline_ms": 0})
        assert info.value.code == 504
        assert json.load(info.value)["error"] == "deadline_exceeded"

    def test_bad_request_maps_to_400(self, http_service):
        base, _service = http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base + "/extract", {"tenant": "t1"})
        assert info.value.code == 400

    def test_fixed_program_rejects_adhoc_patterns(self, http_service):
        base, _service = http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base + "/extract",
                  {"texts": ["aa"], "pattern": "y{a+}"})
        assert info.value.code == 400

    def test_metrics_and_health(self, http_service):
        base, _service = http_service
        _post(base + "/extract", {"texts": ["aa ab"], "tenant": "m1"})
        with urllib.request.urlopen(base + "/metrics",
                                    timeout=30) as response:
            text = response.read().decode("utf-8")
        assert 'tenant="m1"' in text
        with urllib.request.urlopen(base + "/healthz",
                                    timeout=30) as response:
            assert json.load(response)["status"] == "ok"

    def test_concurrent_http_queries(self, http_service):
        base, service = http_service
        outcomes = []
        lock = threading.Lock()

        def call(deadline_ms=None):
            payload = {"texts": list(DOCS), "tenant": "swarm"}
            if deadline_ms is not None:
                payload["deadline_ms"] = deadline_ms
            try:
                status = _post(base + "/extract", payload)[0]
            except urllib.error.HTTPError as error:
                status = error.code
            with lock:
                outcomes.append(status)

        threads = [threading.Thread(target=call) for _ in range(6)]
        threads.append(threading.Thread(target=call, args=(0,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(200) == 6
        assert outcomes.count(504) == 1
        stats = service.tenant_stats("swarm")
        assert stats["queries"] == 7
        assert stats["deadline_misses"] == 1
