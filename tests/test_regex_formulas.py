"""Tests for regex formulas: parsing, compilation, evaluation.

The central property test cross-checks the compiled VSet-automaton
against the independent compositional reference evaluator
(:func:`tests.reference.ref_eval`) on exhaustive small documents.
"""

import pytest
from hypothesis import given

from repro.core.spans import Span, SpanTuple
from repro.spanners.regex_formulas import (
    Capture,
    compile_regex_formula,
    formula_size,
    parse_regex_formula,
    svars,
)
from repro.automata.regex import RegexParseError
from tests.conftest import formula_nodes_st
from tests.reference import documents_upto, ref_eval

AB = frozenset("ab")


class TestParser:
    def test_capture_basic(self):
        node = parse_regex_formula("x{a}b")
        assert svars(node) == {"x"}

    def test_nested_captures(self):
        node = parse_regex_formula("x{y{a}b}")
        assert svars(node) == {"x", "y"}

    def test_identifier_is_maximal(self):
        # 'ax{b}' is a capture named 'ax' (documented rule).
        node = parse_regex_formula("ax{b}")
        assert svars(node) == {"ax"}
        # Escaping or grouping yields the literal-then-capture reading.
        node = parse_regex_formula("(a)x{b}")
        assert svars(node) == {"x"}

    def test_literal_letter_not_capture(self):
        node = parse_regex_formula("ab")
        assert svars(node) == frozenset()

    def test_unterminated_capture(self):
        with pytest.raises(RegexParseError):
            parse_regex_formula("x{a")

    def test_formula_size(self):
        assert formula_size(parse_regex_formula("x{a}b")) >= 3


class TestCompilation:
    def test_whole_match_semantics(self):
        spanner = compile_regex_formula("x{a*}", AB)
        assert spanner.evaluate("aa") == {SpanTuple({"x": Span(1, 3)})}
        assert spanner.evaluate("ab") == set()

    def test_context_matches(self):
        spanner = compile_regex_formula(".*x{a}.*", AB)
        assert spanner.evaluate("aba") == {
            SpanTuple({"x": Span(1, 2)}),
            SpanTuple({"x": Span(3, 4)}),
        }

    def test_empty_captures(self):
        spanner = compile_regex_formula("x{~}a", AB)
        assert spanner.evaluate("a") == {SpanTuple({"x": Span(1, 1)})}

    def test_boolean_spanner(self):
        spanner = compile_regex_formula("a*b", AB)
        assert spanner.evaluate("ab") == {SpanTuple({})}
        assert spanner.evaluate("ba") == set()

    def test_nonfunctional_rejected(self):
        with pytest.raises(ValueError):
            compile_regex_formula("(x{a})*", AB)
        with pytest.raises(ValueError):
            compile_regex_formula("x{a}|b", AB)  # x missing in a branch

    def test_nonfunctional_semantics_if_allowed(self):
        # Only valid ref-words produce tuples (footnote 5's example).
        spanner = compile_regex_formula("(x{a})*", AB,
                                        require_functional=False)
        assert not spanner.is_functional()
        assert spanner.evaluate("a") == {SpanTuple({"x": Span(1, 2)})}
        assert spanner.evaluate("") == set()
        assert spanner.evaluate("aa") == set()

    def test_literal_outside_alphabet(self):
        with pytest.raises(ValueError):
            compile_regex_formula("x{c}", AB)

    @given(formula_nodes_st())
    def test_matches_reference_evaluator(self, node):
        spanner = compile_regex_formula(node, AB, require_functional=False)
        for document in documents_upto(AB, 3):
            assert spanner.evaluate(document) == ref_eval(node, document, AB), (
                node.to_string(), document
            )


class TestEvaluationEdgeCases:
    def test_empty_document(self):
        spanner = compile_regex_formula("x{~}", AB)
        assert spanner.evaluate("") == {SpanTuple({"x": Span(1, 1)})}

    def test_two_variables_nested_vs_sequential(self):
        nested = compile_regex_formula("x{y{a}}", AB)
        assert nested.evaluate("a") == {
            SpanTuple({"x": Span(1, 2), "y": Span(1, 2)})
        }
        sequential = compile_regex_formula("x{a}y{b}", AB)
        assert sequential.evaluate("ab") == {
            SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        }

    def test_alternation_same_variable(self):
        spanner = compile_regex_formula("x{a}b|(a)x{b}", AB)
        assert spanner.evaluate("ab") == {
            SpanTuple({"x": Span(1, 2)}),
            SpanTuple({"x": Span(2, 3)}),
        }

    def test_rejects_bad_document_symbol(self):
        spanner = compile_regex_formula("x{a}", AB)
        with pytest.raises(ValueError):
            spanner.evaluate("c")
