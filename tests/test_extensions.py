"""Tests for Section 7: black boxes, regular filters, annotated splitters."""

import re

import pytest

from repro.automata.regex import regex_to_nfa
from repro.core.annotated import (
    AnnotatedSplitter,
    annotated_split_correct,
    annotated_split_correct_highlander,
    annotated_splittable,
    canonical_key_mapping,
    compose_annotated,
)
from repro.core.black_box import (
    BlackBoxSpanner,
    SpannerSignature,
    SpannerSymbol,
    SplitConstraint,
    black_box_split_correct,
    evaluate_join,
    evaluate_join_split,
    join_relations,
)
from repro.core.cover import cover_condition_general
from repro.core.filters import (
    FilteredSplitter,
    filtered_splitter_for,
    minimal_filter_language,
    self_splittable_with_filter,
    split_correct_with_filter,
    splittable_with_filter,
)
from repro.core.self_splittability import is_self_splittable
from repro.core.spans import Span, SpanTuple
from repro.spanners.algebra import natural_join
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter, whole_document_splitter

AB = frozenset("ab")
TXT = frozenset("ab .")


class TestJoinRelations:
    def test_join_agreeing(self):
        r1 = {SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})}
        r2 = {SpanTuple({"y": Span(2, 3), "z": Span(3, 4)})}
        joined = join_relations([r1, r2])
        assert joined == {SpanTuple({"x": Span(1, 2), "y": Span(2, 3),
                                     "z": Span(3, 4)})}

    def test_join_empty_input(self):
        assert join_relations([]) == {SpanTuple({})}

    def test_join_disagreeing(self):
        r1 = {SpanTuple({"x": Span(1, 2)})}
        r2 = {SpanTuple({"x": Span(2, 3)})}
        assert join_relations([r1, r2]) == set()


class TestBlackBoxes:
    def _setup(self):
        alphabet = frozenset("ab .")
        alpha = compile_regex_formula(
            ".*( )x{a+}( ).*|x{a+}( ).*|.*( )x{a+}|x{a+}", alphabet
        )

        def even_a_tokens(doc):
            return [
                {"x": Span(m.start() + 1, m.end() + 1)}
                for m in re.finditer(r"(?<![^ ])a+(?![^ ])", doc)
                if (m.end() - m.start()) % 2 == 0
            ]

        box = BlackBoxSpanner("even", ["x"], even_a_tokens)
        signature = SpannerSignature(
            (SpannerSymbol("even", frozenset(["x"])),)
        )
        tokens = token_splitter(alphabet)
        constraints = [SplitConstraint(signature.symbols[0], tokens)]
        return alpha, box, signature, tokens, constraints

    def test_theorem_7_4_positive(self):
        alpha, _box, signature, tokens, constraints = self._setup()
        assert black_box_split_correct(
            alpha, signature, constraints, tokens
        ) is True

    def test_split_execution_matches_direct(self):
        alpha, box, _sig, tokens, _cons = self._setup()
        doc = "aa b aaa aaaa. aa aa"
        direct = evaluate_join(alpha, [box], doc)
        split = evaluate_join_split(alpha, [box], tokens, doc)
        assert direct == split
        assert SpanTuple({"x": Span(1, 3)}) in direct

    def test_non_disjoint_gives_unknown(self):
        from repro.splitters.builders import token_ngram_splitter

        alpha, _box, signature, tokens, constraints = self._setup()
        two_grams = token_ngram_splitter(frozenset("ab ."), 2)
        assert black_box_split_correct(
            alpha, signature, constraints, two_grams
        ) is None

    def test_unconstrained_symbol_gives_unknown(self):
        alpha, _box, signature, tokens, _cons = self._setup()
        assert black_box_split_correct(alpha, signature, [], tokens) is None

    def test_disconnected_signature_gives_unknown(self):
        alpha, _box, _sig, tokens, _cons = self._setup()
        detached = SpannerSignature(
            (SpannerSymbol("other", frozenset(["z"])),)
        )
        constraints = [SplitConstraint(detached.symbols[0], tokens)]
        assert black_box_split_correct(
            alpha, detached, constraints, tokens
        ) is None

    def test_lemma_7_3(self):
        # Self-splittable conjuncts whose join is not splittable.
        p1 = compile_regex_formula(".*x1{a}x2{b}.*", AB)
        p2 = compile_regex_formula(".*x2{b}x3{a}.*", AB)
        s = compile_regex_formula(".*x{(a.)|(.a)}.*", AB)
        assert is_self_splittable(p1, s)
        assert is_self_splittable(p2, s)
        joined = natural_join(p1, p2)
        assert not cover_condition_general(joined, s)

    def test_black_box_output_validation(self):
        box = BlackBoxSpanner("bad", ["x"],
                              lambda doc: [{"y": Span(1, 1)}])
        with pytest.raises(ValueError):
            box.evaluate("a")


class TestFilters:
    def test_minimal_filter_language(self):
        p = compile_regex_formula("(h)y{a}.*", frozenset("hab"))
        language = minimal_filter_language(p)
        assert language.accepts("ha")
        assert language.accepts("hab")
        assert not language.accepts("ab")
        assert not language.accepts("h")

    def test_filtered_splitter_semantics(self):
        splitter = whole_document_splitter(AB)
        only_a = regex_to_nfa("a*", AB)
        filtered = FilteredSplitter(splitter, only_a)
        assert filtered.splits("aa") == {Span(1, 3)}
        assert filtered.splits("ab") == set()

    def test_as_splitter_equivalent(self):
        splitter = whole_document_splitter(AB)
        only_a = regex_to_nfa("a*", AB)
        filtered = FilteredSplitter(splitter, only_a)
        plain = filtered.as_splitter()
        for doc in ["", "a", "aa", "ab", "ba"]:
            from repro.core.composition import splits_of

            assert splits_of(plain, doc) == filtered.splits(doc)

    def test_theorem_7_6(self):
        # P requires a header symbol; unfiltered self-splittability by
        # the whole-document splitter holds trivially, so exercise a
        # case where the filter matters: P is empty off L_P and the
        # splitter only behaves on L_P.
        alphabet = frozenset("hab")
        p = compile_regex_formula("(h)y{a}(a|b)*", alphabet)
        splitter = compile_regex_formula("(h)x{a(a|b)*}", alphabet)
        # S o P disagrees off L_P?  Everything here is within L_P, so:
        assert split_correct_with_filter(
            p, compile_regex_formula("y{a}(a|b)*", alphabet), splitter
        )

    def test_sentence_filter_enables_splitting(self):
        # A format-checking extractor (matches only on well-formed,
        # period-terminated documents) is not self-splittable by plain
        # sentences — the splitter still fires on ill-formed documents
        # whose sentence chunks look well-formed — but it is with the
        # minimal filter L_P (Theorem 7.6).
        from repro.spanners.algebra import restrict_to_language
        from repro.splitters.builders import sentence_splitter

        p = compile_regex_formula(
            ".*(\\.| )y{aa}(\\.| ).*|y{aa}(\\.| ).*|.*(\\.| )y{aa}|y{aa}",
            TXT,
        )
        well_formed = regex_to_nfa("(a|b| )*\\.", TXT)
        checked = restrict_to_language(p, well_formed)
        sentences = sentence_splitter(TXT)
        assert not is_self_splittable(checked, sentences)
        assert self_splittable_with_filter(checked, sentences)

    def test_theorem_7_7(self):
        alphabet = frozenset("hab")
        p = compile_regex_formula("(h)y{a}(a|b)*", alphabet)
        splitter = compile_regex_formula("(h)x{a(a|b)*}", alphabet)
        assert splittable_with_filter(p, splitter)


class TestAnnotatedSplitters:
    def _setup(self):
        alphabet = frozenset("gp#ab")
        get_records = compile_regex_formula(
            "(.*\\#)?x{g(g|p|a|b)*}((\\#).*)?", alphabet
        )
        post_records = compile_regex_formula(
            "(.*\\#)?x{p(g|p|a|b)*}((\\#).*)?", alphabet
        )
        annotated = AnnotatedSplitter(
            {"GET": get_records, "POST": post_records}
        )
        spanner = compile_regex_formula(
            "((.*\\#)?(g)(g|p|a|b)*y{a}(g|p|a|b)*((\\#).*)?)"
            "|((.*\\#)?(p)(g|p|a|b)*y{b}(g|p|a|b)*((\\#).*)?)",
            alphabet,
        )
        mapping = {
            "GET": compile_regex_formula("(g)(g|p|a|b)*y{a}(g|p|a|b)*",
                                         alphabet),
            "POST": compile_regex_formula("(p)(g|p|a|b)*y{b}(g|p|a|b)*",
                                          alphabet),
        }
        return alphabet, annotated, spanner, mapping

    def test_evaluate_keys(self):
        _alphabet, annotated, _spanner, _mapping = self._setup()
        result = annotated.evaluate("gab#pab")
        assert ("GET", Span(1, 4)) in result
        assert ("POST", Span(5, 8)) in result
        assert len(result) == 2

    def test_highlander(self):
        _alphabet, annotated, _spanner, _mapping = self._setup()
        assert annotated.is_highlander()

    def test_not_highlander_when_keys_overlap(self):
        splitter = whole_document_splitter(AB)
        doubled = AnnotatedSplitter({"k1": splitter, "k2": splitter})
        assert not doubled.is_highlander()

    def test_theorem_e3(self):
        _alphabet, annotated, spanner, mapping = self._setup()
        assert annotated_split_correct(spanner, mapping, annotated)
        swapped = {"GET": mapping["POST"], "POST": mapping["GET"]}
        assert not annotated_split_correct(spanner, swapped, annotated)

    def test_theorem_e4_highlander_fast_path(self):
        _alphabet, annotated, spanner, mapping = self._setup()
        det_annotated = AnnotatedSplitter(
            {key: determinize(s) for key, s in annotated.keyed.items()}
        )
        det_spanner = determinize(spanner)
        det_mapping = {key: determinize(s) for key, s in mapping.items()}
        assert annotated_split_correct_highlander(
            det_spanner, det_mapping, det_annotated
        )
        swapped = {"GET": det_mapping["POST"], "POST": det_mapping["GET"]}
        assert not annotated_split_correct_highlander(
            det_spanner, swapped, det_annotated
        )

    def test_theorem_e7_canonical_mapping(self):
        _alphabet, annotated, spanner, _mapping = self._setup()
        assert annotated_splittable(spanner, annotated)
        mapping = canonical_key_mapping(spanner, annotated)
        assert annotated_split_correct(spanner, mapping, annotated)

    def test_compose_annotated_semantics(self):
        _alphabet, annotated, spanner, mapping = self._setup()
        composed = compose_annotated(mapping, annotated)
        doc = "gaab#pbb"
        expected = set()
        for key, span in annotated.evaluate(doc):
            chunk = span.extract(doc)
            for t in mapping[key].evaluate(chunk):
                expected.add(t.shift(span))
        assert composed.evaluate(doc) == expected

    def test_from_annotation(self):
        splitter = compile_regex_formula("x{a*}|x{b(a|b)*}", AB)
        annotation = {
            final: ("A" if "a" in str(final) or True else "B")
            for final in splitter.nfa.finals
        }
        annotated = AnnotatedSplitter.from_annotation(splitter, annotation)
        assert set(annotated.keys()) == set(annotation.values())

    def test_missing_mapping_key_rejected(self):
        _alphabet, annotated, _spanner, mapping = self._setup()
        with pytest.raises(ValueError):
            compose_annotated({"GET": mapping["GET"]}, annotated)
