"""Tests for the corpus extraction engine (:mod:`repro.engine`) and
the executor's parallel primitives it builds on."""

import pytest

from repro.core.spans import Span
from repro.engine import (
    ChunkCache,
    Corpus,
    Document,
    ExtractionEngine,
    PlanCache,
    Program,
    Scheduler,
    fingerprint,
    registry_fingerprint,
    shard_of,
)
from repro.runtime import (
    FastSentenceSplitter,
    FastSeparatorSplitter,
    Planner,
    RegisteredSplitter,
    evaluate_texts_parallel,
    evaluate_whole,
    split_by,
    split_by_parallel,
)
from repro.runtime.fast import RegexSpanner
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import sentence_splitter, token_splitter

TXT = frozenset("ab .")


def a_run_extractor():
    return compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}", TXT
    )


def registry():
    return [
        RegisteredSplitter("tokens", token_splitter(TXT), priority=3,
                           executor=FastSeparatorSplitter(" ")),
        RegisteredSplitter("sentences", sentence_splitter(TXT),
                           priority=2, executor=FastSentenceSplitter()),
    ]


#: A corpus with heavy chunk repetition across documents.
DOCS = [
    "aa ab a aaa.",
    "aa ab a aaa.",
    "b aa b.",
    "aa ab a aaa.",
    "b aa b. aa ab",
    "",
]


# ----------------------------------------------------------------------
# Executor parallel path
# ----------------------------------------------------------------------


class TestEvaluateTextsParallel:
    def test_matches_sequential_order_preserved(self):
        spanner = a_run_extractor()
        texts = ["aa", "ab", "", "aaa", "aa"]
        sequential = [set(spanner.evaluate(t)) for t in texts]
        parallel = evaluate_texts_parallel(spanner, texts, workers=3)
        assert parallel == sequential

    def test_workers_one_runs_in_process(self):
        spanner = a_run_extractor()
        assert evaluate_texts_parallel(spanner, ["aa"], workers=1) == [
            set(spanner.evaluate("aa"))
        ]

    def test_empty_input(self):
        assert evaluate_texts_parallel(a_run_extractor(), [],
                                       workers=2) == []

    def test_split_by_parallel_still_matches_sequential(self):
        spanner = a_run_extractor()
        fast = FastSeparatorSplitter(" .")
        doc = "aa ab a aaa. a"
        assert split_by_parallel(spanner, fast, doc, workers=3) == \
            split_by(spanner, fast, doc)


# ----------------------------------------------------------------------
# Corpus: sharding and batching
# ----------------------------------------------------------------------


class TestCorpus:
    def test_from_texts_ids_and_order(self):
        corpus = Corpus.from_texts(["x.", "y."])
        assert corpus.doc_ids() == ["doc-0000", "doc-0001"]
        assert [d.text for d in corpus] == ["x.", "y."]

    def test_duplicate_ids_rejected(self):
        corpus = Corpus([Document("d", "x")])
        with pytest.raises(ValueError):
            corpus.add(Document("d", "y"))

    def test_sharding_is_deterministic(self):
        ids = [f"doc-{i}" for i in range(50)]
        first = [shard_of(doc_id, 7) for doc_id in ids]
        second = [shard_of(doc_id, 7) for doc_id in ids]
        assert first == second
        # Known anchor: stability across processes/machines (SHA-1).
        assert shard_of("doc-0", 7) == int.from_bytes(
            __import__("hashlib").sha1(b"doc-0").digest()[:8], "big") % 7

    def test_shards_partition_corpus(self):
        corpus = Corpus.from_texts([f"text {i}." for i in range(20)])
        shards = corpus.shards(4)
        assert sum(len(s) for s in shards) == len(corpus)
        collected = sorted(
            doc.doc_id for shard in shards for doc in shard
        )
        assert collected == sorted(corpus.doc_ids())
        for index, shard in enumerate(shards):
            assert shard.doc_ids() == corpus.shard(4, index).doc_ids()

    def test_shard_assignment_independent_of_insertion_order(self):
        docs = [Document(f"d{i}", "x") for i in range(10)]
        forward = Corpus(docs).shards(3)
        backward = Corpus(reversed(docs)).shards(3)
        assert [sorted(s.doc_ids()) for s in forward] == \
            [sorted(s.doc_ids()) for s in backward]

    def test_batches(self):
        corpus = Corpus.from_texts(["a", "b", "c", "d", "e"])
        sizes = [len(batch) for batch in corpus.batches(2)]
        assert sizes == [2, 2, 1]
        with pytest.raises(ValueError):
            list(corpus.batches(0))


# ----------------------------------------------------------------------
# Fingerprints and the plan cache
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_structurally_equal_spanners_fingerprint_alike(self):
        assert fingerprint(a_run_extractor()) == \
            fingerprint(a_run_extractor())

    def test_different_spanners_fingerprint_differently(self):
        other = compile_regex_formula(".*y{b+}.*|y{b+}", TXT)
        assert fingerprint(a_run_extractor()) != fingerprint(other)

    def test_registry_fingerprint_sensitive_to_members(self):
        full = registry()
        assert registry_fingerprint(full) != registry_fingerprint(full[:1])

    def test_structural_fingerprint_ignores_dict_insertion_order(self):
        """The structural fallback canonicalizes containers: two
        executables that differ only in the order their dict/set
        attributes were populated are the same program and must share
        a fingerprint (and hence one certification)."""

        class TableSpanner:
            def __init__(self, rules, symbols):
                self.rules = dict(rules)
                self.symbols = frozenset(symbols)

        forward = TableSpanner([("a", 1), ("b", 2), (".", 3)], "ab .")
        backward = TableSpanner([(".", 3), ("b", 2), ("a", 1)], " .ba")
        assert fingerprint(forward) == fingerprint(backward)

    def test_structural_fingerprint_canonicalizes_nested_containers(self):
        from repro.engine.cache import _canonical_value

        first = {"outer": ({"b": 2, "a": 1}, [frozenset("ba")])}
        second = {"outer": ({"a": 1, "b": 2}, [frozenset("ab")])}
        assert _canonical_value(first) == _canonical_value(second)
        # Order that *means* something (tuples, lists) is preserved.
        assert _canonical_value((1, 2)) != _canonical_value((2, 1))
        assert _canonical_value(["x", "y"]) != _canonical_value(["y", "x"])
        # Sets serialize sorted, not in iteration order.
        assert _canonical_value(frozenset({"b", "a"})) == "set{'a','b'}"

    def test_decision_procedures_run_once_per_program(self):
        cache = PlanCache()
        planner = Planner(registry())
        spanner = a_run_extractor()
        first = cache.get(planner, spanner)
        again = cache.get(planner, a_run_extractor())
        assert again is first
        assert cache.certifications == 1
        assert cache.hits == 1
        assert first.reuses == 1
        assert first.plan.mode == "split"

    def test_distinct_programs_certified_separately(self):
        cache = PlanCache()
        planner = Planner(registry())
        cache.get(planner, a_run_extractor())
        cache.get(planner, compile_regex_formula(".*y{b+}.*|y{b+}", TXT))
        assert cache.certifications == 2


# ----------------------------------------------------------------------
# Chunk cache
# ----------------------------------------------------------------------


class TestChunkCache:
    def test_hit_miss_counting(self):
        cache = ChunkCache()
        assert cache.lookup("fp", "aa") is None
        cache.store("fp", "aa", set())
        assert cache.lookup("fp", "aa") == frozenset()
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_programs_do_not_cross_contaminate(self):
        cache = ChunkCache()
        cache.store("fp1", "aa", set())
        assert cache.lookup("fp2", "aa") is None

    def test_lru_eviction(self):
        cache = ChunkCache(limit=2)
        cache.store("fp", "a", set())
        cache.store("fp", "b", set())
        cache.lookup("fp", "a")          # refresh "a"
        cache.store("fp", "c", set())    # evicts "b"
        assert cache.lookup("fp", "b") is None
        assert cache.lookup("fp", "a") is not None
        assert cache.evictions == 1
        assert len(cache) == 2


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


class TestScheduler:
    def test_merges_shifted_tuples_per_document(self):
        spanner = a_run_extractor()
        cache = ChunkCache()
        scheduler = Scheduler(workers=0)
        doc = "aa ab"
        chunks = [(Span(1, 3), "aa"), (Span(4, 6), "ab")]
        resolved = scheduler.run(spanner, [("d", chunks)], cache, "fp")
        assert resolved["d"] == evaluate_whole(spanner, doc)

    def test_duplicate_chunks_evaluated_once_within_batch(self):
        spanner = a_run_extractor()
        cache = ChunkCache()
        scheduler = Scheduler(workers=0)
        chunks = [(Span(1, 3), "aa"), (Span(4, 6), "aa")]
        scheduler.run(spanner, [("d", chunks)], cache, "fp")
        assert scheduler.last_batch.unique_missing == 1
        assert scheduler.last_batch.chunk_instances == 2
        assert cache.hits == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(workers=-1)
        with pytest.raises(ValueError):
            Scheduler(batch_size=0)


# ----------------------------------------------------------------------
# ExtractionEngine end to end
# ----------------------------------------------------------------------


class TestExtractionEngine:
    def _expected(self, spanner):
        return {
            f"doc-{i:04d}": evaluate_whole(spanner, doc)
            for i, doc in enumerate(DOCS)
        }

    def test_results_match_evaluate_whole_with_dedup(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry(), workers=0, batch_size=2)
        result = engine.run(DOCS, spanner)
        assert result.by_document == self._expected(spanner)
        stats = engine.stats()
        assert stats.certifications == 1
        assert stats.chunk_cache_hits > 0
        assert stats.chunks_evaluated < stats.chunks_total
        assert stats.documents == len(DOCS)
        assert stats.tuples_emitted == result.total_tuples()

    def test_parallel_engine_matches_sequential(self):
        spanner = a_run_extractor()
        sequential = ExtractionEngine(registry(), workers=0)
        parallel = ExtractionEngine(registry(), workers=3, batch_size=4)
        assert parallel.run(DOCS, spanner).by_document == \
            sequential.run(DOCS, spanner).by_document

    def test_second_run_reuses_certificate_and_chunks(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry())
        engine.run(DOCS, spanner)
        evaluated_once = engine.stats().chunks_evaluated
        engine.run(DOCS, spanner)
        stats = engine.stats()
        assert stats.certifications == 1
        assert stats.plan_cache_hits == 1
        # Every chunk of the second run came from the cache.
        assert stats.chunks_evaluated == evaluated_once

    def test_compiled_artifact_produced_once_per_certified_plan(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry())
        engine.run(DOCS, spanner)
        engine.run(DOCS, spanner)
        stats = engine.stats()
        # The kernel lowering happens with certification (or the first
        # runner resolution) and is replayed afterward — one artifact
        # across repeated runs of the same program.
        assert stats.certifications == 1
        assert stats.artifacts_compiled == 1
        # A second engine sharing the plan cache replays the stored
        # certificate without re-lowering the plan's artifact.
        shared = ExtractionEngine(registry(), plan_cache=engine.plan_cache)
        shared.run(DOCS, spanner)
        assert shared.stats().certifications == 0

    def test_whole_document_fallback_still_correct(self):
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", TXT
        )
        engine = ExtractionEngine(registry())
        docs = ["aa a a.", "aa a a.", "b a a"]
        result = engine.run(docs, crossing)
        assert result.plan.mode == "whole"
        for i, doc in enumerate(docs):
            assert result[f"doc-{i:04d}"] == evaluate_whole(crossing, doc)
        # Identical whole documents still deduplicate.
        assert engine.stats().chunk_cache_hits > 0

    def test_sharded_run_matches_plain_run(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry())
        plain = engine.run(DOCS, spanner)
        sharded = ExtractionEngine(registry()).run_sharded(DOCS, spanner, 3)
        assert sharded.by_document == plain.by_document

    def test_fast_executable_with_specification(self):
        spec = a_run_extractor()
        fast = RegexSpanner(r"(?:^|[ .])(?P<y>a+)(?=[ .]|$)",
                            specification=spec)
        engine = ExtractionEngine(registry())
        result = engine.run(DOCS, Program(fast))
        assert result.by_document == self._expected(spec)
        assert result.plan.plan.self_splittable

    def test_program_requires_specification_for_fast_executable(self):
        with pytest.raises(ValueError):
            Program(RegexSpanner(r"(?P<y>a+)"))

    def test_result_stats_are_per_run_deltas(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry())
        first = engine.run(DOCS, spanner)
        second = engine.run(DOCS, spanner)
        assert first.stats.certifications == 1
        assert second.stats.certifications == 0
        assert second.stats.documents == len(DOCS)
        # The second run serves every chunk from the cache.
        assert second.stats.chunks_evaluated == 0
        # Engine-level counters stay cumulative.
        assert engine.stats().documents == 2 * len(DOCS)

    def test_shared_chunk_cache_namespaced_by_certificate(self):
        # Two engines with different registries share one chunk cache;
        # the same text must not be served across certificates, because
        # different certificates can imply different runners.
        spanner = a_run_extractor()
        shared = ChunkCache()
        split_engine = ExtractionEngine(registry(), chunk_cache=shared)
        whole_engine = ExtractionEngine([], chunk_cache=shared)
        split_engine.run(["aa"], spanner)     # caches chunk "aa"
        before = shared.misses
        result = whole_engine.run(["aa"], spanner)
        assert shared.misses == before + 1    # not served cross-certificate
        assert result["doc-0000"] == evaluate_whole(spanner, "aa")

    def test_close_and_context_manager(self):
        spanner = a_run_extractor()
        with ExtractionEngine(registry(), workers=2) as engine:
            engine.run(DOCS, spanner)
            scheduler = engine.scheduler
            assert scheduler._pool is not None
        assert scheduler._pool is None        # closed on exit
        engine.close()                        # idempotent

    def test_engine_result_merge_rejects_overlap(self):
        spanner = a_run_extractor()
        engine = ExtractionEngine(registry())
        result = engine.run(DOCS[:2], spanner)
        with pytest.raises(ValueError):
            result.merge(result)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestEngineCli:
    PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
               "|.*(\\.| )y{a+}|y{a+}")

    def test_engine_subcommand(self, capsys):
        from repro.__main__ import main

        code = main([
            "engine", "--pattern", self.PATTERN, "--alphabet", "ab .",
            "--splitters", "tokens,sentences",
            "--text", "aa ab a aaa.", "--text", "aa ab a aaa.",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: split by 'tokens'" in out
        assert "certifications: 1" in out
        assert "chunk_cache_hits" in out

    def test_engine_subcommand_requires_documents(self, capsys):
        from repro.__main__ import main

        code = main([
            "engine", "--pattern", self.PATTERN, "--alphabet", "ab .",
        ])
        assert code == 2
        assert "no documents" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Chunk-cache LRU order and corpus edge cases
# ----------------------------------------------------------------------


class TestChunkCacheLruOrder:
    def fill(self, cache, *texts):
        for text in texts:
            cache.store("fp", text, set())

    def test_eviction_follows_recency_order_exactly(self):
        cache = ChunkCache(limit=3)
        self.fill(cache, "a", "b", "c")
        # Recency now a < b < c; touch "a" so order becomes b < c < a.
        cache.lookup("fp", "a")
        self.fill(cache, "d")            # evicts "b"
        assert cache.lookup("fp", "b") is None
        self.fill(cache, "e")            # evicts "c"
        assert cache.lookup("fp", "c") is None
        # "a" survived both rounds because it was refreshed.
        assert cache.lookup("fp", "a") is not None
        assert cache.evictions == 2

    def test_restore_of_existing_key_refreshes_recency(self):
        cache = ChunkCache(limit=2)
        self.fill(cache, "a", "b")
        self.fill(cache, "a")            # re-store: refresh, no evict
        assert cache.evictions == 0
        self.fill(cache, "c")            # evicts "b", not "a"
        assert cache.lookup("fp", "b") is None
        assert cache.lookup("fp", "a") is not None

    def test_misses_do_not_disturb_recency(self):
        cache = ChunkCache(limit=2)
        self.fill(cache, "a", "b")
        cache.lookup("fp", "zzz")        # miss: recency unchanged
        self.fill(cache, "c")            # still evicts "a"
        assert cache.lookup("fp", "a") is None
        assert cache.lookup("fp", "b") is not None

    def test_limit_one_keeps_only_most_recent(self):
        cache = ChunkCache(limit=1)
        self.fill(cache, "a", "b", "c")
        assert len(cache) == 1
        assert cache.lookup("fp", "c") is not None
        assert cache.evictions == 2

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            ChunkCache(limit=0)


class TestCorpusEdgeCases:
    def test_empty_document_flows_through_engine(self):
        corpus = Corpus.from_texts(["aa a.", "", "a."])
        engine = ExtractionEngine(registry())
        result = engine.run(corpus, Program(a_run_extractor()))
        assert result["doc-0001"] == set()
        assert len(result) == 3
        # And the empty shard/batch machinery stays consistent.
        assert sum(len(s) for s in corpus.shards(5)) == 3
        assert [len(b) for b in corpus.batches(2)] == [2, 1]

    def test_unicode_ids_and_text_shard_deterministically(self):
        ids = ["café", "naïve-Ω", "日本語", "emoji-🦉"]
        corpus = Corpus.from_mapping(
            {doc_id: "héllo wörld" for doc_id in ids}
        )
        assert len(corpus) == 4
        first = [shard_of(doc_id, 3) for doc_id in ids]
        second = [shard_of(doc_id, 3) for doc_id in ids]
        assert first == second
        shards = corpus.shards(3)
        collected = sorted(d.doc_id for s in shards for d in s)
        assert collected == sorted(ids)
        # Unicode text round-trips untouched.
        assert corpus["café"].text == "héllo wörld"

    def test_duplicate_document_ids_rejected_everywhere(self):
        with pytest.raises(ValueError):
            Corpus([Document("d", "x"), Document("d", "x")])
        corpus = Corpus.from_mapping({"d": "x"})
        with pytest.raises(ValueError):
            corpus.add(Document("d", "y"))

    def test_duplicate_texts_are_distinct_documents_but_shared_chunks(self):
        corpus = Corpus.from_texts(["aa a.", "aa a.", "aa a."])
        assert len(corpus) == 3  # identity by id, not content
        engine = ExtractionEngine(registry())
        result = engine.run(corpus, Program(a_run_extractor()))
        assert result["doc-0000"] == result["doc-0002"]
        stats = engine.stats()
        # Content dedup happens at the chunk cache, not the corpus.
        assert stats.chunk_cache_hits > 0
        assert stats.chunks_evaluated < stats.chunks_total

    def test_shard_index_validation(self):
        corpus = Corpus.from_texts(["a"])
        with pytest.raises(ValueError):
            corpus.shard(3, 3)
        with pytest.raises(ValueError):
            shard_of("x", 0)
