"""Tests for the simulated worker pool (distribution substrate)."""

import pytest

from repro.runtime.simulation import (
    SimulatedPool,
    SpeedupResult,
    measure_task_costs,
    simulate_corpus_speedup,
)
from repro.runtime.fast import FastSeparatorSplitter


class TestSimulatedPool:
    def test_empty(self):
        assert SimulatedPool(workers=5).makespan([]) == 0.0

    def test_single_worker_sums(self):
        pool = SimulatedPool(workers=1, per_task_overhead=0.0)
        assert pool.makespan([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_perfect_balance(self):
        pool = SimulatedPool(workers=2, per_task_overhead=0.0)
        assert pool.makespan([1.0, 1.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_straggler_dominates(self):
        # One huge task at the end: makespan = wait + task.
        pool = SimulatedPool(workers=2, per_task_overhead=0.0)
        assert pool.makespan([1.0, 1.0, 10.0]) == pytest.approx(11.0)

    def test_greedy_assignment_order(self):
        # Tasks are taken in arrival order by the earliest-free worker.
        pool = SimulatedPool(workers=2, per_task_overhead=0.0)
        # worker A: 3; worker B: 1 then 1 then 1 -> makespan 3.
        assert pool.makespan([3.0, 1.0, 1.0, 1.0]) == pytest.approx(3.0)

    def test_overhead_charged_per_task(self):
        pool = SimulatedPool(workers=1, per_task_overhead=0.5)
        assert pool.makespan([1.0, 1.0]) == pytest.approx(3.0)

    def test_more_workers_never_slower(self):
        costs = [0.5, 2.0, 0.1, 0.7, 1.3, 0.2, 0.9]
        small = SimulatedPool(workers=2, per_task_overhead=0.0)
        large = SimulatedPool(workers=5, per_task_overhead=0.0)
        assert large.makespan(costs) <= small.makespan(costs)


class _UnitCostSpanner:
    """Deterministic fake extractor for cost measurement tests."""

    def evaluate(self, document):
        return set()


class TestSpeedupHarness:
    def test_measure_task_costs_shape(self):
        costs = measure_task_costs(_UnitCostSpanner(), ["a", "bb", "ccc"])
        assert len(costs) == 3
        assert all(c >= 0 for c in costs)

    def test_simulate_corpus_speedup(self):
        result = simulate_corpus_speedup(
            _UnitCostSpanner(),
            ["aa bb", "c", "dd ee ff"],
            FastSeparatorSplitter(" "),
            workers=2,
            repeats=1,
        )
        assert isinstance(result, SpeedupResult)
        assert result.baseline_tasks == 3
        assert result.split_tasks == 6
        assert result.speedup > 0

    def test_chunksize_batches(self):
        result = simulate_corpus_speedup(
            _UnitCostSpanner(),
            ["aa bb cc dd"],
            FastSeparatorSplitter(" "),
            workers=2,
            repeats=1,
            chunksize=2,
        )
        # 4 chunks batched in pairs -> the split plan schedules 2 units,
        # but the reported task count stays at chunk granularity.
        assert result.split_tasks == 4
