"""Shared-memory artifact lifecycle tests.

The contract of :mod:`repro.automata.shm` (and its users in
:mod:`repro.engine.scheduler` / :mod:`repro.runtime.executor`):

* publish → attach round-trips artifacts exactly, with the big table
  blobs travelling as out-of-band protocol-5 buffers;
* workers attach by segment name — the runner is pickled exactly once
  (at publish time) no matter how many workers or tasks run;
* segments are unlinked on scheduler/engine close, including after a
  forced ``Pool`` terminate (the simulated worker crash), leaving no
  ``/dev/shm`` entries behind.
"""

from __future__ import annotations

import pytest

from repro.automata import shm
from repro.core.spans import whole_span
from repro.engine import Corpus, ExtractionEngine
from repro.engine.cache import ChunkCache
from repro.engine.scheduler import Scheduler
from repro.runtime.executor import evaluate_texts_parallel
from repro.runtime.fast import CompiledSpanner, FastSeparatorSplitter
from repro.runtime.planner import RegisteredSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import separator_splitter

ALPHABET = "ab ."
PATTERN = ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}"


def arun_spanner():
    return compile_regex_formula(PATTERN, frozenset(ALPHABET))


def token_registry():
    return [
        RegisteredSplitter(
            "tokens", separator_splitter(ALPHABET, " "), priority=3,
            executor=FastSeparatorSplitter(" "),
        )
    ]


def assert_no_leaked_segments():
    __tracebackhide__ = True
    leaked = shm.leaked_segments()
    assert leaked == [], f"leaked /dev/shm segments: {leaked}"


# ----------------------------------------------------------------------
# Publish / attach round-trip
# ----------------------------------------------------------------------


def test_publish_attach_roundtrip():
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        pytest.skip("shared_memory unavailable")
    runner = CompiledSpanner(arun_spanner())
    before = shm.attach_count()
    published = shm.registry().publish(runner)
    try:
        assert published.name in shm.registry().published_names()
        assert published.name in shm.leaked_segments()  # live, not leaked
        clone = shm.attach(published.name)
        assert shm.attach_count() == before + 1
        for text in ["aa ab a.", "", "b", "aaa aa"]:
            assert clone.evaluate(text) == runner.evaluate(text)
    finally:
        shm.registry().unlink(published.name)
    assert_no_leaked_segments()


def test_tables_travel_out_of_band():
    # The byte-table blobs must leave the pickle stream: the segment
    # header records at least one out-of-band buffer, and the buffers
    # carry the full table payload.
    runner = CompiledSpanner(arun_spanner())
    assert runner.kernel_tier == "v2-bytes"
    image = shm._encode(runner)
    magic, payload_length, buffer_count = shm._HEADER.unpack_from(image, 0)
    assert magic == shm._MAGIC
    assert buffer_count >= 1
    offset = shm._HEADER.size
    lengths = []
    for _ in range(buffer_count):
        (length,) = shm._LENGTH.unpack_from(image, offset)
        lengths.append(length)
        offset += shm._LENGTH.size
    assert offset + payload_length + sum(lengths) == len(image)
    clone = shm._decode(memoryview(image))
    assert clone.evaluate("aa ab a.") == runner.evaluate("aa ab a.")


def test_registry_unlink_is_idempotent():
    registry = shm.registry()
    registry.unlink("repro_kernel_never_published")  # unknown: no-op
    published = registry.publish(CompiledSpanner(arun_spanner()))
    registry.unlink(published.name)
    registry.unlink(published.name)  # second unlink: no-op
    published.unlink()  # handle-level unlink after registry unlink: ok
    assert_no_leaked_segments()


# ----------------------------------------------------------------------
# Scheduler attach path: zero per-task artifact pickling
# ----------------------------------------------------------------------


class CountingSpanner(CompiledSpanner):
    """A runner that counts how many times it is pickled."""

    pickles = 0

    def __getstate__(self):
        type(self).pickles += 1
        return self.__dict__

    def __setstate__(self, state):
        self.__dict__.update(state)


def scheduler_documents(texts):
    return [
        (f"doc-{index}", [(whole_span(text), text)])
        for index, text in enumerate(texts)
    ]


def test_workers_attach_without_per_task_pickling():
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        pytest.skip("shared_memory unavailable")
    runner = CountingSpanner(arun_spanner())
    CountingSpanner.pickles = 0
    scheduler = Scheduler(workers=2, use_shm=True)
    try:
        texts = [f"aa ab a{'a' * i}." for i in range(24)]
        resolved = scheduler.run(
            runner, scheduler_documents(texts), ChunkCache(), "t"
        )
        assert scheduler.shm_segment_name() is not None
        # The runner was pickled exactly once — into the shm segment at
        # publish time.  Tasks ship only texts and results.
        assert CountingSpanner.pickles == 1
        # Every sampled worker process attached from shared memory.
        status = scheduler.worker_shm_status()
        assert status and all(count >= 1 for _pid, count in status)
        # Results agree with the in-process evaluation.
        for index, text in enumerate(texts):
            assert resolved[f"doc-{index}"] == runner.evaluate(text)
    finally:
        scheduler.close()
    assert scheduler.shm_segment_name() is None
    assert_no_leaked_segments()


def test_use_shm_false_pins_legacy_pickling():
    runner = CountingSpanner(arun_spanner())
    CountingSpanner.pickles = 0
    scheduler = Scheduler(workers=2, use_shm=False)
    try:
        resolved = scheduler.run(
            runner, scheduler_documents(["aa ab a.", "b aa."]),
            ChunkCache(), "t",
        )
        assert scheduler.shm_segment_name() is None
        # (Under the fork start method initargs are inherited, not
        # pickled, so no pickle-count assertion here — the point is
        # that no segment was published and results are unchanged.)
        assert resolved["doc-0"] == runner.evaluate("aa ab a.")
    finally:
        scheduler.close()
    assert_no_leaked_segments()


# ----------------------------------------------------------------------
# Lifecycle: unlink on close, worker crash, engine close
# ----------------------------------------------------------------------


def test_segments_unlinked_after_forced_pool_terminate():
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        pytest.skip("shared_memory unavailable")
    runner = CompiledSpanner(arun_spanner())
    scheduler = Scheduler(workers=2)
    scheduler.run(
        runner, scheduler_documents(["aa ab a.", "ab aa ba."]),
        ChunkCache(), "t",
    )
    assert scheduler.shm_segment_name() in shm.leaked_segments()
    # Simulate a worker crash: kill the pool out from under the
    # scheduler, then close — the segment must still be unlinked.
    scheduler._pool.terminate()
    scheduler._pool.join()
    scheduler.close()
    assert_no_leaked_segments()


def test_engine_close_unlinks_segments():
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        pytest.skip("shared_memory unavailable")
    engine = ExtractionEngine(token_registry(), workers=2)
    corpus = Corpus.from_mapping(
        {f"doc-{i}": "aa ab ba aa." for i in range(6)}
    )
    with_pool = engine.run(corpus, arun_spanner())
    assert engine.scheduler.shm_segment_name() is not None
    engine.close()
    assert_no_leaked_segments()
    # Parity with the shm-less, in-process engine.
    baseline = ExtractionEngine(token_registry(), workers=0,
                                use_shm=False)
    without_pool = baseline.run(corpus, arun_spanner())
    assert with_pool.by_document == without_pool.by_document


def test_evaluate_texts_parallel_cleans_up():
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        pytest.skip("shared_memory unavailable")
    spanner = arun_spanner()
    texts = ["aa ab a.", "b aa", "aaa aa ab"]
    parallel = evaluate_texts_parallel(spanner, texts, workers=2)
    sequential = evaluate_texts_parallel(spanner, texts, workers=1)
    assert parallel == sequential
    assert_no_leaked_segments()


def test_shm_metrics_counted():
    from repro.obs.metrics import kernel_metrics

    published_before = kernel_metrics().counter(
        "kernel.shm_published").value
    bytes_before = kernel_metrics().counter("kernel.shm_bytes").value
    published = shm.registry().publish(CompiledSpanner(arun_spanner()))
    try:
        assert kernel_metrics().counter(
            "kernel.shm_published").value == published_before + 1
        assert kernel_metrics().counter(
            "kernel.shm_bytes").value >= bytes_before + published.size
    finally:
        shm.registry().unlink(published.name)
