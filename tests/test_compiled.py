"""Property tests for the compiled automaton kernel.

The kernel (:mod:`repro.automata.compiled`) must be *observationally
identical* to the dict-of-sets interpreter it replaces: randomized
automata — including epsilon-heavy and empty-language cases — are
checked for exact agreement between the compiled paths
(``NFA.accepts``, ``NFA.is_empty``, ``NFA.to_dfa``,
``NFA.product_is_empty``, ``VSetAutomaton.evaluate``) and the
interpreted references (``accepts_interpreted``,
``evaluate_interpreted``, reachability over the materialized product).
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.automata.compiled import (
    MAX_BYTE_ROWS,
    LazyDFA,
    bits,
    compile_nfa,
    compile_vset_automaton,
)
from repro.automata.nfa import EPSILON, NFA
from repro.spanners.refwords import Close, Open, gamma
from repro.spanners.vset_automaton import VSetAutomaton

ALPHABET = "ab"
MAX_STATES = 6

SETTINGS = dict(max_examples=60, deadline=None)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def random_nfas(draw, alphabet: str = ALPHABET, epsilon_heavy: bool = False):
    """A random small NFA; epsilon transitions always possible, and in
    ``epsilon_heavy`` mode they dominate the transition relation."""
    n = draw(st.integers(min_value=1, max_value=MAX_STATES))
    symbols = list(alphabet) + [EPSILON] * (4 if epsilon_heavy else 1)
    n_transitions = draw(st.integers(min_value=0, max_value=3 * n))
    transitions = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.sampled_from(symbols)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(n_transitions)
    ]
    finals = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return NFA(alphabet, range(n), 0, finals, transitions)


@st.composite
def random_vset_automata(draw, alphabet: str = "ab", variables=("x", "y")):
    """A random VSet-automaton over ``alphabet`` and up to two
    variables; not necessarily functional, so evaluation must cope with
    dead variable operations and empty outputs."""
    n_vars = draw(st.integers(min_value=0, max_value=len(variables)))
    used = frozenset(variables[:n_vars])
    ops = sorted(gamma(used)) if used else []
    n = draw(st.integers(min_value=1, max_value=MAX_STATES))
    symbols = list(alphabet) + ops + [EPSILON]
    n_transitions = draw(st.integers(min_value=0, max_value=4 * n))
    transitions = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.sampled_from(symbols)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(n_transitions)
    ]
    finals = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    nfa = NFA(frozenset(alphabet) | gamma(used), range(n), 0, finals,
              transitions)
    return VSetAutomaton(alphabet, used, nfa)


def words_upto(alphabet: str, max_length: int):
    from tests.reference import documents_upto

    return list(documents_upto(alphabet, max_length))


# ----------------------------------------------------------------------
# NFA-level agreement
# ----------------------------------------------------------------------


@settings(**SETTINGS)
@given(random_nfas())
def test_compiled_accepts_agrees(nfa):
    for word in words_upto(ALPHABET, 4):
        assert nfa.accepts(word) == nfa.accepts_interpreted(word)


@settings(**SETTINGS)
@given(random_nfas(epsilon_heavy=True))
def test_compiled_accepts_agrees_epsilon_heavy(nfa):
    for word in words_upto(ALPHABET, 4):
        assert nfa.accepts(word) == nfa.accepts_interpreted(word)


@settings(**SETTINGS)
@given(random_nfas())
def test_compiled_emptiness_agrees(nfa):
    interpreted_empty = not (nfa.reachable_states() & nfa.finals)
    assert nfa.is_empty() == interpreted_empty
    assert nfa.is_empty() == (nfa.shortest_word() is None)


@settings(**SETTINGS)
@given(random_nfas(), random_nfas())
def test_product_emptiness_agrees(left, right):
    product = left.product(right)
    interpreted_empty = not (product.reachable_states() & product.finals)
    assert left.product_is_empty(right) == interpreted_empty


@settings(**SETTINGS)
@given(random_nfas(epsilon_heavy=True))
def test_to_dfa_agrees(nfa):
    dfa = nfa.to_dfa()
    for word in words_upto(ALPHABET, 4):
        assert dfa.accepts(word) == nfa.accepts_interpreted(word)


def test_empty_language_cases():
    nothing = NFA(ALPHABET, [0], 0, [], [])
    assert nothing.is_empty()
    assert not nothing.accepts("")
    assert not nothing.accepts("ab")
    # Final state unreachable from the initial state.
    stranded = NFA(ALPHABET, [0, 1], 0, [1], [(1, "a", 1)])
    assert stranded.is_empty()
    assert not stranded.accepts("a")
    # Epsilon-only acceptance of the empty word.
    eps_only = NFA(ALPHABET, [0, 1], 0, [1], [(0, EPSILON, 1)])
    assert not eps_only.is_empty()
    assert eps_only.accepts("")
    assert not eps_only.accepts("a")


# ----------------------------------------------------------------------
# Invalidation and the lazy DFA
# ----------------------------------------------------------------------


def test_mutation_invalidates_compiled_form_and_caches():
    nfa = NFA(ALPHABET, [0, 1], 0, [1], [(0, "a", 1)])
    assert nfa.accepts("a")
    assert not nfa.accepts("b")
    assert nfa.epsilon_closure({0}) == frozenset({0})
    assert nfa.symbols_from(0) == frozenset({"a"})
    nfa.add_transition(0, "b", 1)
    nfa.add_transition(0, EPSILON, 1)
    assert nfa.accepts("b")
    assert nfa.accepts("")
    assert nfa.epsilon_closure({0}) == frozenset({0, 1})
    assert nfa.symbols_from(0) == frozenset({"a", "b", EPSILON})


def test_lazy_dfa_lru_bound_and_agreement():
    # (a|b)* b (a|b)^2: subset construction has 8+ states, so a cap of
    # 3 must evict — and acceptance must stay exact throughout.
    nfa = NFA(
        ALPHABET,
        range(4),
        0,
        [3],
        [(0, "a", 0), (0, "b", 0), (0, "b", 1),
         (1, "a", 2), (1, "b", 2), (2, "a", 3), (2, "b", 3)],
    )
    compiled = compile_nfa(nfa)
    lazy = LazyDFA(compiled, max_states=3)
    for word in words_upto(ALPHABET, 6):
        current = compiled.start_mask
        accepted = True
        for symbol in word:
            current = lazy.next(current, compiled.symbol_id[symbol])
            if not current:
                accepted = False
                break
        accepted = accepted and bool(current & compiled.finals_mask)
        assert accepted == nfa.accepts_interpreted(word)
    assert len(lazy) <= 3
    assert lazy.evictions > 0
    assert lazy.hits > 0


def test_lazy_dfa_honors_requested_bound():
    nfa = NFA(ALPHABET, range(2), 0, [1], [(0, "a", 1), (1, "b", 0)])
    compiled = nfa.compiled()
    default = compiled.lazy_dfa()
    assert default.max_states == 4096
    capped = compiled.lazy_dfa(max_states=64)
    assert capped.max_states == 64
    assert compiled.lazy_dfa(max_states=64) is capped  # cached per bound


def test_bits_enumerates_set_bits():
    assert list(bits(0)) == []
    assert list(bits(0b101001)) == [0, 3, 5]


def test_compiled_artifacts_pickle():
    nfa = NFA(ALPHABET, range(3), 0, [2],
              [(0, "a", 1), (1, EPSILON, 2), (2, "b", 0)])
    compiled = nfa.compiled()
    compiled.accepts("ab")  # populate the lazy DFA memo
    clone = pickle.loads(pickle.dumps(compiled))
    for word in words_upto(ALPHABET, 4):
        assert clone.accepts(word) == nfa.accepts_interpreted(word)


# ----------------------------------------------------------------------
# VSet-automaton evaluation agreement
# ----------------------------------------------------------------------


@settings(**SETTINGS)
@given(random_vset_automata())
def test_compiled_evaluate_agrees(vsa):
    for document in words_upto("ab", 3):
        assert vsa.evaluate(document) == vsa.evaluate_interpreted(document)


@settings(max_examples=30, deadline=None)
@given(random_vset_automata(alphabet="a", variables=("x",)))
def test_compiled_evaluate_agrees_unary(vsa):
    for document in words_upto("a", 4):
        assert vsa.evaluate(document) == vsa.evaluate_interpreted(document)


def test_compiled_evaluate_epsilon_heavy_chain():
    # An epsilon chain threaded between the variable operations.
    x_open, x_close = Open("x"), Close("x")
    nfa = NFA(
        frozenset("ab") | gamma({"x"}),
        range(6),
        0,
        [5],
        [
            (0, EPSILON, 1), (1, x_open, 2), (2, EPSILON, 3),
            (3, "a", 3), (3, "b", 3), (3, x_close, 4), (4, EPSILON, 5),
            (5, "a", 5), (5, "b", 5),
        ],
    )
    vsa = VSetAutomaton("ab", {"x"}, nfa)
    for document in words_upto("ab", 4):
        assert vsa.evaluate(document) == vsa.evaluate_interpreted(document)


def test_compiled_evaluate_empty_language():
    x_open = Open("x")
    # x is opened but never closed: no valid run, empty output.
    nfa = NFA(
        frozenset("a") | gamma({"x"}),
        range(2),
        0,
        [1],
        [(0, x_open, 1), (1, "a", 1)],
    )
    vsa = VSetAutomaton("a", {"x"}, nfa)
    for document in ["", "a", "aa"]:
        assert vsa.evaluate(document) == set()
        assert vsa.evaluate_interpreted(document) == set()


def test_variable_order_cached_and_stable():
    x_open, x_close = Open("x"), Close("x")
    nfa = NFA(
        frozenset("a") | gamma({"x"}),
        range(3),
        0,
        [2],
        [(0, x_open, 1), (1, "a", 1), (1, x_close, 2)],
    )
    vsa = VSetAutomaton("a", {"x"}, nfa)
    first = vsa.variable_order
    assert first is vsa.variable_order  # computed once
    variables, index = first
    assert variables == ("x",)
    assert index == {"x": 0}


# ----------------------------------------------------------------------
# Kernel v2: byte-table tiers
# ----------------------------------------------------------------------

#: Documents mixing the test alphabet with latin-1-but-out-of-alphabet
#: bytes, non-latin-1 BMP characters, and astral characters — the byte
#: tier must dispatch (or fall back) per document and stay identical
#: to the integer tier on every one of them.
MIXED_DOCS = st.text(
    alphabet="ab .é\xffĀ日\U0001F600", max_size=8
)


@settings(**SETTINGS)
@given(random_nfas(), st.lists(MIXED_DOCS, max_size=6))
def test_accept_tiers_agree(nfa, documents):
    compiled = nfa.compiled()
    words = list(documents) + words_upto(ALPHABET, 4)
    for word in words:
        assert compiled.accepts(word) == compiled.accepts_v1(word)
    assert compiled.accepts_batch(words) == [
        compiled.accepts_v1(word) for word in words
    ]


@settings(**SETTINGS)
@given(random_vset_automata(), st.lists(MIXED_DOCS, max_size=6))
def test_suffix_and_evaluate_tiers_agree(vsa, documents):
    v2 = compile_vset_automaton(vsa, byte_tables=True)
    v1 = compile_vset_automaton(vsa, byte_tables=False)
    assert v1.kernel_tier == "v1-int"
    for document in list(documents) + words_upto("ab", 3):
        tables = v2.suffix_acceptance(document)
        assert tables == v1.suffix_acceptance_int(document)
        assert tables == v1.suffix_acceptance_v1(document)
        assert v2.evaluate(document) == v1.evaluate(document)
    assert v2.evaluate_batch(documents) == [
        v1.evaluate(document) for document in documents
    ]


@settings(**SETTINGS)
@given(random_vset_automata())
def test_byte_tier_matches_interpreted(vsa):
    compiled = compile_vset_automaton(vsa, byte_tables=True)
    for document in words_upto("ab", 3):
        assert compiled.evaluate(document) == \
            vsa.evaluate_interpreted(document)


def test_wide_alphabet_reports_v1_tier():
    # Non-latin-1 letters admit no byte lowering at all; results must
    # come from (and the tier must honestly report) the int path.
    nfa = NFA("ΑΒ", range(2), 0, [1],
              [(0, "Α", 1), (1, "Β", 0)])
    compiled = nfa.compiled()
    assert compiled.byte_dfa() is None
    assert compiled.kernel_tier == "v1-int"
    assert compiled.accepts("Α")
    assert not compiled.accepts("Β")
    assert compiled.accepts_batch(["Α", "ΑΒΑ", ""]) \
        == [True, True, False]


def test_byte_row_cap_falls_back_to_v1():
    # (a|b)* a (a|b)^9 needs 2^9 forward subset states — past the
    # 256-row cap, so the byte lowering must abandon ship while the
    # lazy-DFA path keeps answering exactly.
    k = 9
    transitions = [(0, "a", 0), (0, "b", 0), (0, "a", 1)]
    for i in range(1, k + 1):
        transitions += [(i, "a", i + 1), (i, "b", i + 1)]
    nfa = NFA(ALPHABET, range(k + 2), 0, [k + 1], transitions)
    compiled = nfa.compiled()
    assert compiled.byte_dfa() is None
    assert compiled.kernel_tier == "v1-int"
    assert compiled.accepts("a" + "b" * k)
    assert not compiled.accepts("b" * (k + 1))


def test_byte_dfa_has_bounded_rows():
    nfa = NFA(ALPHABET, range(2), 0, [1], [(0, "a", 1), (1, "b", 0)])
    dfa = nfa.compiled().byte_dfa()
    assert dfa is not None
    assert 1 <= dfa.n_rows <= MAX_BYTE_ROWS
    assert len(dfa.blob) == dfa.n_rows * 256
    # Row 0 is the dead sink: all-zero, non-accepting, self-looping.
    assert set(dfa.rows[0]) == {0}
    assert dfa.flags[0] == 0


def test_byte_artifacts_pickle_across_protocols():
    nfa = NFA(ALPHABET, range(3), 0, [2],
              [(0, "a", 1), (1, EPSILON, 2), (2, "b", 0)])
    compiled = nfa.compiled()
    assert compiled.kernel_tier == "v2-bytes"
    for protocol in (2, 4, 5):
        clone = pickle.loads(pickle.dumps(compiled, protocol=protocol))
        assert clone.kernel_tier == "v2-bytes"
        for word in words_upto(ALPHABET, 4):
            assert clone.accepts(word) == nfa.accepts_interpreted(word)


def test_non_string_documents_use_int_tier():
    # Sequences of symbols (not str) cannot be byte-encoded; the
    # dispatching entry points must agree with the int tier on them.
    x_open, x_close = Open("x"), Close("x")
    nfa = NFA(
        frozenset("ab") | gamma({"x"}),
        range(3),
        0,
        [2],
        [(0, x_open, 1), (1, "a", 1), (1, "b", 1), (1, x_close, 2)],
    )
    vsa = VSetAutomaton("ab", {"x"}, nfa)
    compiled = compile_vset_automaton(vsa)
    for document in words_upto("ab", 3):
        as_list = list(document)
        assert compiled.suffix_acceptance(as_list) == \
            compiled.suffix_acceptance(document)
        assert compiled.evaluate(as_list) == compiled.evaluate(document)


def test_vsa_compiled_tracks_nfa_mutation():
    x_open, x_close = Open("x"), Close("x")
    nfa = NFA(
        frozenset("ab") | gamma({"x"}),
        range(3),
        0,
        [2],
        [(0, x_open, 1), (1, "a", 1), (1, x_close, 2)],
    )
    vsa = VSetAutomaton("ab", {"x"}, nfa)
    before = vsa.evaluate("aa")
    assert before == vsa.evaluate_interpreted("aa")
    nfa.add_transition(1, "b", 1)  # widen the captured language
    after = vsa.evaluate("ab")
    assert after == vsa.evaluate_interpreted("ab")
    assert any(t["x"].length == 2 for t in after)
