"""Tests for splittability and the canonical split-spanner (Sec 5.2)."""

import pytest
from hypothesis import given

from repro.core.composition import compose, compose_semantics, splits_of
from repro.core.spans import Span, SpanTuple
from repro.core.split_correctness import split_correct_general
from repro.core.splittability import (
    canonical_split_spanner,
    is_splittable,
    splittability_witness,
)
from repro.reductions import splittability_instance
from repro.spanners.containment import spanner_contains
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter
from repro.splitters.disjointness import is_disjoint
from tests.conftest import formula_nodes_st, splitter_nodes_st
from tests.reference import documents_upto

AB = frozenset("ab")
ABC = frozenset("abc")


def brute_canonical(spanner, splitter, chunk, context_length):
    """``P_S^can(chunk)`` by enumerating bounded context documents."""
    results = set()
    alphabet = spanner.doc_alphabet
    for context in documents_upto(alphabet, context_length):
        for span in splits_of(splitter, context):
            if span.extract(context) != chunk:
                continue
            for t in spanner.evaluate(context):
                if t.covered_by(span):
                    results.add(t.unshift(span))
    return results


class TestCanonicalSplitSpanner:
    def test_example_5_10_values(self):
        p = compile_regex_formula("(a)y{b}b", AB)
        s = compile_regex_formula("x{ab}b|(a)x{bb}", AB)
        canonical = canonical_split_spanner(p, s)
        assert canonical.evaluate("ab") == {SpanTuple({"y": Span(2, 3)})}
        assert canonical.evaluate("bb") == {SpanTuple({"y": Span(1, 2)})}

    def test_example_5_10_composition_follows_definition(self):
        # Reproduction note: by Definition 3.1's composition,
        # (P_S^can o S)(abb) = {[2,3>} = P(abb); the example's displayed
        # expansion pools tuples across chunks and is inconsistent with
        # the definition (see EXPERIMENTS.md, F-2).
        p = compile_regex_formula("(a)y{b}b", AB)
        s = compile_regex_formula("x{ab}b|(a)x{bb}", AB)
        canonical = canonical_split_spanner(p, s)
        composed = compose(canonical, s)
        assert composed.evaluate("abb") == {SpanTuple({"y": Span(2, 3)})}

    def test_example_5_13_overproduction(self):
        # The intended phenomenon: for non-disjoint splitters the
        # canonical split-spanner can overproduce.
        p = compile_regex_formula("(ab)y{b}|(c)y{b}b", ABC)
        s = compile_regex_formula("x{.*}|.*x{bb}.*", ABC)
        canonical = canonical_split_spanner(p, s)
        assert canonical.evaluate("bb") == {
            SpanTuple({"y": Span(1, 2)}),
            SpanTuple({"y": Span(2, 3)}),
        }
        composed = compose(canonical, s)
        assert not spanner_contains(composed, p)

    def test_matches_brute_force_on_chunks(self):
        alphabet = frozenset("ab ")
        p = compile_regex_formula(
            ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet
        )
        tokens = token_splitter(alphabet)
        canonical = canonical_split_spanner(p, tokens)
        for chunk in ["a", "aa", "ab", "b", "aba"]:
            assert canonical.evaluate(chunk) == brute_canonical(
                p, tokens, chunk, 4
            ), chunk

    @given(formula_nodes_st(max_depth=2), splitter_nodes_st())
    def test_canonical_brute_force_random(self, p_node, s_node):
        p = compile_regex_formula(p_node, AB, require_functional=False)
        splitter = compile_regex_formula(s_node, AB,
                                         require_functional=False)
        if splitter.variables != {"x"} or "x" in p.variables:
            return
        canonical = canonical_split_spanner(p, splitter)
        for chunk in ["", "a", "b", "ab", "ba"]:
            assert canonical.evaluate(chunk) == brute_canonical(
                p, splitter, chunk, 4
            ), (p_node.to_string(), s_node.to_string(), chunk)


class TestSplittability:
    def test_splittable_via_different_split_spanner(self):
        # Example 5.8's P is splittable by its (non-disjoint) S; for the
        # disjoint path use the HTTP-style record instance.
        alphabet = frozenset("Gl#")
        p = compile_regex_formula("(.*\\#)?y{G}(l*)((\\#).*)?", alphabet)
        from repro.splitters.builders import record_splitter

        records = record_splitter(alphabet, "#")
        assert is_splittable(p, records)
        witness = splittability_witness(p, records)
        assert witness is not None
        assert split_correct_general(p, witness, records)

    def test_not_splittable(self):
        alphabet = frozenset("ab ")
        crossing = compile_regex_formula(
            ".*y{a a}.*|y{a a}.*|.*y{a a}|y{a a}", alphabet
        )
        tokens = token_splitter(alphabet)
        assert not is_splittable(crossing, tokens)
        assert splittability_witness(crossing, tokens) is None

    def test_non_disjoint_rejected(self):
        p = compile_regex_formula(".*y{a}.*", AB)
        two_gram = compile_regex_formula(".*x{..}.*|x{..}", AB)
        assert not is_disjoint(two_gram)
        with pytest.raises(ValueError):
            is_splittable(p, two_gram)

    def test_lemma_5_14_canonical_is_minimal(self):
        # If P = P_S o S with S disjoint then P_S^can <= P_S.
        alphabet = frozenset("Gl#")
        p = compile_regex_formula("(.*\\#)?y{G}(l*)((\\#).*)?", alphabet)
        p_s = compile_regex_formula("y{G}l*", alphabet)
        from repro.splitters.builders import record_splitter

        records = record_splitter(alphabet, "#")
        assert split_correct_general(p, p_s, records)
        canonical = canonical_split_spanner(p, records)
        assert spanner_contains(canonical, p_s)


class TestTheorem515Family:
    @pytest.mark.parametrize(
        "r1,r2,expected",
        [
            ("(a|b)*", "(a|b)*", True),
            ("a*", "(a|b)*", True),
            ("(a|b)*", "a*", False),
            ("ab", "a(a|b)", True),
            ("a(a|b)", "ab", False),
            ("!", "a", True),  # empty language contained in anything
        ],
    )
    def test_reduction(self, r1, r2, expected):
        p, s = splittability_instance(r1, r2, "ab")
        assert is_splittable(p, s) == expected
