"""Edge-case and failure-injection tests across all layers."""

import pytest

from repro.automata.nfa import EPSILON, NFA, empty_language_nfa
from repro.core.composition import compose, splits_of
from repro.core.spans import Span, SpanTuple
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters import overlap_witness
from repro.splitters.builders import (
    char_ngram_splitter,
    token_splitter,
    whole_document_splitter,
)

AB = frozenset("ab")


class TestEmptyThings:
    def test_empty_document_everywhere(self):
        spanner = compile_regex_formula("x{~}", AB)
        assert spanner.evaluate("") == {SpanTuple({"x": Span(1, 1)})}
        splitter = whole_document_splitter(AB)
        assert splits_of(splitter, "") == {Span(1, 1)}
        composed = compose(spanner, splitter)
        assert composed.evaluate("") == {SpanTuple({"x": Span(1, 1)})}

    def test_empty_language_spanner(self):
        spanner = compile_regex_formula("!", AB)
        assert spanner.evaluate("") == set()
        assert spanner.evaluate("ab") == set()
        assert spanner.match_language().is_empty()

    def test_empty_language_splitter_composes_to_empty(self):
        p = compile_regex_formula(".*y{a}.*", AB)
        dead = compile_regex_formula("x{!}", AB, require_functional=False)
        composed = compose(p, dead)
        for document in ["", "a", "ab"]:
            assert composed.evaluate(document) == set()

    def test_determinize_empty_spanner(self):
        dead = compile_regex_formula("x{a}b!", AB,
                                     require_functional=False)
        det = determinize(dead)
        assert det.evaluate("ab") == set()


class TestSplitterEdges:
    def test_splitter_selecting_empty_spans_only(self):
        # A splitter of empty spans: chunks are all "", so only
        # extractors matching the empty document survive composition.
        s = compile_regex_formula("x{~}.*", AB)
        p_empty = compile_regex_formula("~|.*", AB)  # Boolean: always
        composed = compose(p_empty, s)
        assert composed.evaluate("ab") == {SpanTuple({})}
        p_a = compile_regex_formula("a", AB)
        composed2 = compose(p_a, s)
        assert composed2.evaluate("ab") == set()

    def test_ngram_longer_than_document(self):
        s = char_ngram_splitter(AB, 3)
        assert splits_of(s, "ab") == set()

    def test_overlap_witness_is_minimal(self):
        witness = overlap_witness(char_ngram_splitter(AB, 2))
        assert witness is not None and len(witness) == 3

    def test_overlap_witness_none_for_disjoint(self):
        assert overlap_witness(token_splitter(frozenset("ab "))) is None

    def test_token_splitter_pure_separators(self):
        tokens = token_splitter(frozenset("ab "))
        assert splits_of(tokens, "    ") == set()


class TestAutomataEdges:
    def test_nfa_with_unreachable_finals(self):
        nfa = NFA(AB, [0, 1, 2], 0, [2], [(0, "a", 1)])
        assert nfa.is_empty()
        assert nfa.trim().is_empty()

    def test_epsilon_only_acceptance(self):
        nfa = NFA(AB, [0, 1], 0, [1], [(0, EPSILON, 1)])
        assert nfa.accepts("")
        assert not nfa.accepts("a")

    def test_empty_language_operations(self):
        dead = empty_language_nfa(AB)
        assert dead.union(dead).is_empty()
        assert dead.concatenate(dead).is_empty()
        assert dead.star().accepts("")  # Kleene star adds epsilon

    def test_product_with_disjoint_alphabets(self):
        left = NFA(frozenset("a"), [0], 0, [0], [(0, "a", 0)])
        right = NFA(frozenset("b"), [0], 0, [0], [(0, "b", 0)])
        product = left.product(right)
        assert product.accepts("")
        assert not product.alphabet


class TestVSAEdges:
    def test_variable_never_used_means_empty_spanner(self):
        # The automaton declares x but never opens it: no valid
        # ref-word exists, so the spanner is empty.
        from repro.spanners.refwords import gamma

        alphabet = AB | gamma(["x"])
        nfa = NFA(alphabet, [0], 0, [0], [(0, "a", 0)])
        spanner = VSetAutomaton(AB, ["x"], nfa)
        assert spanner.evaluate("aa") == set()
        assert not spanner.is_functional()

    def test_unused_declared_doc_symbols(self):
        spanner = compile_regex_formula("x{a}", AB)  # 'b' never matched
        assert spanner.evaluate("b") == set()

    def test_evaluate_rejects_foreign_symbols(self):
        spanner = compile_regex_formula("x{a}", AB)
        with pytest.raises(ValueError):
            spanner.evaluate("ac")

    def test_overlapping_variable_regions(self):
        # x and y interleave: x opens, y opens, x closes, y closes.
        spanner = compile_regex_formula("x{a y{b}}c|x{a(y{b})}c", AB | {"c", " "},
                                        require_functional=False)
        # Simpler direct construction below.
        from repro.spanners.refwords import Close, Open, gamma

        alphabet = AB | gamma(["x", "y"])
        transitions = [
            (0, Open("x"), 1),
            (1, "a", 2),
            (2, Open("y"), 3),
            (3, "a", 4),
            (4, Close("x"), 5),
            (5, "b", 6),
            (6, Close("y"), 7),
        ]
        interleaved = VSetAutomaton(
            AB, ["x", "y"], NFA(alphabet, range(8), 0, [7], transitions)
        )
        assert interleaved.evaluate("aab") == {
            SpanTuple({"x": Span(1, 3), "y": Span(2, 4)})
        }
        det = determinize(interleaved)
        assert det.evaluate("aab") == interleaved.evaluate("aab")

    def test_large_span_tuple_count(self):
        # Quadratically many tuples are enumerated exactly.
        spanner = compile_regex_formula(".*x{a*}.*", AB)
        document = "a" * 8
        result = spanner.evaluate(document)
        # One tuple per span [i, j> of the document: 9*10/2.
        assert len(result) == 45
