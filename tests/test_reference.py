"""Self-checks for the brute-force reference machinery."""

import pytest

from repro.core.spans import Span, SpanTuple
from repro.spanners.regex_formulas import parse_regex_formula
from tests.reference import (
    documents_upto,
    ref_eval,
    semantically_disjoint,
)

AB = frozenset("ab")


class TestDocumentsUpto:
    def test_counts(self):
        docs = list(documents_upto("ab", 2))
        assert len(docs) == 1 + 2 + 4
        assert "" in docs and "ab" in docs

    def test_zero_length(self):
        assert list(documents_upto("ab", 0)) == [""]


class TestRefEval:
    def test_literal(self):
        node = parse_regex_formula("x{a}")
        assert ref_eval(node, "a", AB) == {SpanTuple({"x": Span(1, 2)})}
        assert ref_eval(node, "b", AB) == set()

    def test_whole_document_constraint(self):
        node = parse_regex_formula("x{a}")
        # 'aa' is not fully consumed, so no match.
        assert ref_eval(node, "aa", AB) == set()

    def test_union_and_concat(self):
        node = parse_regex_formula("x{a}b|(a)x{b}")
        assert ref_eval(node, "ab", AB) == {
            SpanTuple({"x": Span(1, 2)}),
            SpanTuple({"x": Span(2, 3)}),
        }

    def test_star(self):
        node = parse_regex_formula("x{a*}a*")
        assert ref_eval(node, "aa", AB) == {
            SpanTuple({"x": Span(1, 1)}),
            SpanTuple({"x": Span(1, 2)}),
            SpanTuple({"x": Span(1, 3)}),
        }

    def test_star_with_variables_unsupported(self):
        node = parse_regex_formula("(x{a})*")
        with pytest.raises(NotImplementedError):
            ref_eval(node, "a", AB)

    def test_partial_assignments_filtered(self):
        # A branch missing a variable yields no valid ref-word.
        node = parse_regex_formula("x{a}|b")
        assert ref_eval(node, "b", AB) == set()
        assert ref_eval(node, "a", AB) == {SpanTuple({"x": Span(1, 2)})}

    def test_duplicate_variable_filtered(self):
        node = parse_regex_formula("x{a}x{b}")
        assert ref_eval(node, "ab", AB) == set()


class TestSemanticDeciders:
    def test_semantically_disjoint(self):
        from repro.spanners.regex_formulas import compile_regex_formula

        disjoint = compile_regex_formula("x{a*}", AB)
        assert semantically_disjoint(disjoint, 3)
        overlapping = compile_regex_formula(".*x{..}.*", AB)
        assert not semantically_disjoint(overlapping, 3)
