"""Tests for the binary index storage engine
(:mod:`repro.index.store`): segment format round-trips, the
JSON/binary/fresh equivalence property, mmap lifecycle (leak-freedom,
readers surviving compaction), edit-delta soundness against full
rebuilds, and the satellites that landed with it (typed load errors,
LRU incremental cache, explain() surfacing, CLI subcommands)."""

import json
import os

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.engine import Corpus, ExtractionEngine, Program
from repro.errors import IndexFormatError, ReproError
from repro.index import (
    CorpusIndex,
    SegmentedIndex,
    factors_of,
    open_index,
)
from repro.index.store import Segment, write_segment
from repro.query import Q, Spanner, Splitter
from repro.runtime import IncrementalExtractor, RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.runtime.incremental import diff_chunks
from repro.splitters.builders import separator_splitter

ALPHA = frozenset("abcdefgh qz.")

QZ_PATTERN = (".*(\\.| )y{qz+}(\\.| ).*|y{qz+}(\\.| ).*"
              "|.*(\\.| )y{qz+}|y{qz+}")

CORPUS_TEXTS = [
    "ab qz cd. ef gh ab. ab ab ab.",
    "cd cd cd. ef ef ef.",
    "qzz ab. gh qz.",
    "",
    "abcd efgh.",
]


def qz_spanner():
    return Spanner.regex(QZ_PATTERN, ALPHA, name="qz")


def sentence_registry():
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHA, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


def sentence_splitter():
    return Splitter.named("sentences", ALPHA)


def admitted_texts(index, factors):
    """The set of texts an index's candidate mask admits (id-order
    agnostic, so JSON and binary layouts compare)."""
    mask = index.candidates(factors)
    texts = list(index.texts()) if hasattr(index, "texts") \
        else list(index._texts)
    if mask is None:
        return None
    return {text for tid, text in enumerate(texts) if (mask >> tid) & 1}


# ----------------------------------------------------------------------
# Segment format
# ----------------------------------------------------------------------


class TestSegmentFormat:
    def test_round_trip_texts_and_lookups(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        texts = ["ab qz cd", "", "qq", "ef gh", "ab qz cd", "zz. ab"]
        summary = write_segment(path, texts, splitter="sentences")
        assert summary["texts"] == len(set(texts))
        with Segment(path) as segment:
            assert sorted(segment.texts()) == sorted(set(texts))
            for text in set(texts):
                tid = segment.text_id(text)
                assert segment.text(tid) == text
                assert segment.text_length(tid) == len(text)
            assert segment.text_id("not indexed") is None
            segment.verify()

    def test_posting_masks_match_json_index(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        texts = sorted({"ab qz cd", "qq", "ef gh qz", "aaaa", "."})
        write_segment(path, texts)
        reference = CorpusIndex()
        with Segment(path) as segment:
            # The JSON index over the same sorted texts has identical
            # text ids, so posting masks must agree bit for bit.
            for text in segment.texts():
                reference.add_text(text)
            for gram in ["a", "q", "qz", " qz", "ab ", "zz", "xyz"]:
                assert segment.posting_mask(gram) == \
                    reference._postings.get(gram, 0), gram
            assert segment.short_mask == reference._short

    def test_bitmap_and_varint_encodings_both_exercised(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        # 'a' appears everywhere (dense -> bitmap); each suffix gram is
        # rare (sparse -> varint).
        texts = [f"aaaa{suffix}" for suffix in
                 "bb cc dd ee ff gg hh".split()] * 2
        summary = write_segment(path, texts)
        assert summary["bitmap_postings"] > 0
        assert summary["varint_postings"] > 0
        with Segment(path) as segment:
            for text in set(texts):
                tid = segment.text_id(text)
                for gram in {text[i:i + 2] for i in range(len(text) - 1)}:
                    assert (segment.posting_mask(gram) >> tid) & 1

    def test_open_is_lazy_header_only(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        write_segment(path, [f"ab qz {n:04d}" for n in range(500)])
        segment = Segment(path)
        # No posting or text materialized yet.
        assert segment._masks == {}
        assert len(segment) == 500
        segment.close()

    def test_truncated_and_corrupt_files_raise_typed(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        write_segment(path, ["ab qz cd"])
        raw = open(path, "rb").read()
        truncated = str(tmp_path / "trunc.ris")
        with open(truncated, "wb") as handle:
            handle.write(raw[:len(raw) // 2])
        with pytest.raises(IndexFormatError):
            Segment(truncated)
        bad_magic = str(tmp_path / "magic.ris")
        with open(bad_magic, "wb") as handle:
            handle.write(b"XXXX" + raw[4:])
        with pytest.raises(IndexFormatError):
            Segment(bad_magic)
        empty = str(tmp_path / "empty.ris")
        open(empty, "wb").close()
        with pytest.raises(IndexFormatError):
            Segment(empty)

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = str(tmp_path / "seg.ris")
        write_segment(path, ["ab", "cd"])
        assert os.listdir(tmp_path) == ["seg.ris"]


# ----------------------------------------------------------------------
# Round-trip equivalence property (JSON = binary = fresh)
# ----------------------------------------------------------------------


class TestRoundTripEquivalence:
    @given(st.lists(
        st.text(alphabet=sorted(ALPHA), min_size=0, max_size=30),
        min_size=0, max_size=8,
    ))
    def test_candidate_masks_agree_across_formats(self, tmp_path_factory,
                                                  documents):
        tmp_path = tmp_path_factory.mktemp("store")
        corpus = Corpus.from_texts(documents)
        splitter = sentence_splitter()
        fresh = CorpusIndex.build(corpus, splitter)
        json_path = str(tmp_path / "corpus.idx")
        fresh.save(json_path)
        loaded = CorpusIndex.load(json_path)
        binary = SegmentedIndex.build(corpus, splitter,
                                      str(tmp_path / "corpus.segs"))
        reopened = open_index(str(tmp_path / "corpus.segs"))
        factors = factors_of(qz_spanner().vsa())
        expected = admitted_texts(fresh, factors)
        for index in (loaded, binary, reopened):
            assert admitted_texts(index, factors) == expected
        reopened.close()
        binary.close()

    def test_extraction_results_identical_across_formats(self, tmp_path):
        splitter = sentence_splitter()
        corpus = Corpus.from_texts(CORPUS_TEXTS)
        plain = Q(qz_spanner()).split_by("sentences") \
            .over(CORPUS_TEXTS).materialize()
        json_index = CorpusIndex.build(corpus, splitter)
        json_path = str(tmp_path / "corpus.idx")
        json_index.save(json_path)
        binary = SegmentedIndex.build(corpus, splitter,
                                      str(tmp_path / "corpus.segs"))
        binary.close()
        for index in (json_path, str(tmp_path / "corpus.segs")):
            query = Q(qz_spanner()).split_by("sentences").indexed(index)
            results = query.over(CORPUS_TEXTS)
            assert results.materialize() == plain
            assert results.stats().chunks_pruned > 0
            engine_index = query.engine().index
            if hasattr(engine_index, "close"):
                engine_index.close()

    def test_open_index_dispatches_by_layout(self, tmp_path):
        corpus = Corpus.from_texts(CORPUS_TEXTS)
        splitter = sentence_splitter()
        json_path = str(tmp_path / "corpus.idx")
        CorpusIndex.build(corpus, splitter).save(json_path)
        assert open_index(json_path).format == "json"
        segs = str(tmp_path / "corpus.segs")
        SegmentedIndex.build(corpus, splitter, segs).close()
        index = open_index(segs)
        assert index.format == "binary-segments"
        index.close()
        with pytest.raises(IndexFormatError):
            open_index(str(tmp_path / "nowhere"))
        empty_dir = tmp_path / "plain-dir"
        empty_dir.mkdir()
        with pytest.raises(IndexFormatError):
            open_index(str(empty_dir))


# ----------------------------------------------------------------------
# mmap lifecycle
# ----------------------------------------------------------------------


class TestMmapLifecycle:
    def build(self, tmp_path):
        return SegmentedIndex.build(
            Corpus.from_texts(CORPUS_TEXTS), sentence_splitter(),
            str(tmp_path / "corpus.segs"),
        )

    def test_close_releases_mappings_and_unlink_succeeds(self, tmp_path):
        index = self.build(tmp_path)
        factors = factors_of(qz_spanner().vsa())
        assert index.candidates(factors) is not None
        index.close()
        assert index.candidates(factors) is None
        # Every file (segments included) is deletable: nothing holds a
        # buffer export over the closed mappings.
        for name in os.listdir(tmp_path / "corpus.segs"):
            os.unlink(tmp_path / "corpus.segs" / name)

    def test_double_close_is_idempotent(self, tmp_path):
        index = self.build(tmp_path)
        index.close()
        index.close()
        segment_path = str(tmp_path / "seg.ris")
        write_segment(segment_path, ["ab"])
        segment = Segment(segment_path)
        segment.close()
        segment.close()
        assert segment.closed

    def test_concurrent_reader_survives_compaction(self, tmp_path):
        index = self.build(tmp_path)
        reader = SegmentedIndex.open(str(tmp_path / "corpus.segs"))
        factors = factors_of(qz_spanner().vsa())
        before = admitted_texts(reader, factors)
        index.update_document("doc-0002", ["replacement qz."])
        index.compact()
        # The reader still serves its (pre-compact) generation from the
        # unlinked inodes, then refreshes onto the new one.
        assert admitted_texts(reader, factors) == before
        assert reader.refresh() is True
        assert reader.generation == index.generation
        assert admitted_texts(reader, factors) \
            == admitted_texts(index, factors)
        reader.close()
        index.close()

    def test_compact_drops_tombstones_and_old_segments(self, tmp_path):
        index = self.build(tmp_path)
        index.update_document("doc-0000", ["fresh qz text."])
        assert index.segment_count > 1
        assert index.tombstone_count > 0
        summary = index.compact()
        assert summary["tombstones_dropped"] > 0
        assert index.segment_count == 1
        assert index.tombstone_count == 0
        on_disk = [name for name in os.listdir(tmp_path / "corpus.segs")
                   if name.endswith(".ris")]
        assert len(on_disk) == 1
        index.close()

    def test_pickle_ships_path_not_postings(self, tmp_path):
        import pickle

        index = self.build(tmp_path)
        blob = pickle.dumps(index)
        assert len(blob) < 500  # a path, not posting payloads
        clone = pickle.loads(blob)
        factors = factors_of(qz_spanner().vsa())
        assert admitted_texts(clone, factors) \
            == admitted_texts(index, factors)
        clone.close()
        index.close()

    def test_workers_premap_index_by_path(self, tmp_path):
        index = self.build(tmp_path)
        engine = ExtractionEngine(sentence_registry(), workers=2,
                                  corpus_index=index)
        program = Program.from_query(qz_spanner())
        try:
            baseline = ExtractionEngine(sentence_registry())
            expected = baseline.run(
                Corpus.from_texts(CORPUS_TEXTS), program).by_document
            result = engine.run(Corpus.from_texts(CORPUS_TEXTS), program)
            assert result.by_document == expected
            statuses = engine.scheduler.worker_index_status()
            assert statuses, "pool should be live after a run"
            for _pid, opens, segments in statuses:
                assert opens >= 1
                assert segments >= index.segment_count
        finally:
            engine.close()
            index.close()


# ----------------------------------------------------------------------
# Edit-delta soundness
# ----------------------------------------------------------------------


class TestEditDelta:
    @staticmethod
    def admits_via(index, factors, text):
        """Mirror :meth:`IndexFilter._admits_uncached`: the sound
        admit decision an engine would make for ``text`` over this
        index (tombstoned/unseen texts fall back to the exact scan)."""
        mask = index.candidates(factors)
        tid = index.text_id(text)
        if (mask is not None and tid is not None
                and not (mask >> tid) & 1
                and factors.alphabet.issuperset(text)):
            return False
        return factors.admits(text)

    def test_edit_equals_full_rebuild(self, tmp_path):
        splitter = sentence_splitter()
        edited = list(CORPUS_TEXTS)
        edited[0] = "ab qz cd. ef gh qz. ab ab ab."  # one sentence edited
        index = SegmentedIndex.build(
            Corpus.from_texts(CORPUS_TEXTS), splitter,
            str(tmp_path / "live.segs"),
        )
        index.update_document("doc-0000", splitter.chunks(edited[0]))
        rebuilt = SegmentedIndex.build(
            Corpus.from_texts(edited), splitter,
            str(tmp_path / "rebuilt.segs"),
        )
        factors = factors_of(qz_spanner().vsa())
        # For every chunk of the edited corpus, the delta-maintained
        # index makes the same (sound) admit decision a full rebuild
        # makes — extraction results are therefore identical.
        for document in edited:
            for chunk in splitter.chunks(document):
                assert self.admits_via(index, factors, chunk) \
                    == self.admits_via(rebuilt, factors, chunk), chunk
        # The dropped sentence is tombstoned (scan fallback), the new
        # one indexed.
        assert index.text_id("ef gh ab.") is None
        assert index.text_id("ef gh qz.") is not None
        assert index.tombstone_count >= 1
        index.close()
        rebuilt.close()

    def test_run_delta_reevaluates_only_changed_chunks(self, tmp_path):
        splitter = sentence_splitter()
        engine = ExtractionEngine(sentence_registry())
        program = Program.from_query(qz_spanner())
        index = engine.build_index(
            Corpus.from_texts(CORPUS_TEXTS), program,
            format="binary", path=str(tmp_path / "corpus.segs"),
        )
        engine.attach_index(index)
        engine.run(Corpus.from_texts(CORPUS_TEXTS), program)
        edited = "ab qz cd. ef gh qz. ab ab ab."
        delta_corpus = Corpus.from_mapping({"doc-0000": edited})
        result = engine.run_delta(delta_corpus, program)
        # Only the edited sentence misses the chunk cache.
        assert result.stats.chunk_cache_misses == 1
        baseline = ExtractionEngine(sentence_registry())
        expected = baseline.run(delta_corpus, program).by_document
        assert result.by_document == expected
        # And the index was maintained: one delta segment, tombstone
        # for the dropped sentence.
        assert index.tombstone_count >= 1
        # The registry's fast splitter keeps the leading space and
        # drops the separator, unlike Splitter.named("sentences").
        assert index.text_id(" ef gh qz") is not None
        engine.close()
        index.close()

    def test_run_delta_requires_delta_maintainable_index(self):
        engine = ExtractionEngine(sentence_registry())
        with pytest.raises(ValueError):
            engine.run_delta(Corpus.from_texts(["ab."]),
                             Program.from_query(qz_spanner()))

    def test_remove_document_tombstones_and_refcounts(self, tmp_path):
        index = SegmentedIndex.create(str(tmp_path / "segs"))
        index.add_document(["shared qz", "only one"], doc_id="one")
        index.add_document(["shared qz", "only two"], doc_id="two")
        index.remove_document("one")
        # "shared qz" still referenced by doc two: not tombstoned.
        assert index.text_id("shared qz") is not None
        assert index.text_id("only one") is None
        with pytest.raises(KeyError):
            index.remove_document("one")
        index.close()

    def test_diff_chunks_multiset_semantics(self):
        added, removed = diff_chunks(("a", "b", "a"), ("a", "c", "c"))
        assert added == ("c", "c")
        # removed comes back in first-occurrence order of the old
        # chunking: the surplus "a" is seen before "b".
        assert removed == ("a", "b")
        assert diff_chunks(("a",), ("a",)) == ((), ())

    def test_incremental_extractor_maintains_index(self, tmp_path):
        index = SegmentedIndex.create(str(tmp_path / "segs"),
                                      splitter="sentences")
        extractor = IncrementalExtractor(
            qz_spanner().executable,
            FastSeparatorSplitter("."),
            index=index,
        )
        extractor.evaluate("ab qz. cd ef.", doc_id="wiki")
        assert index.text_id("ab qz") is not None
        extractor.evaluate("ab qz. gh qz.", doc_id="wiki")
        assert index.text_id(" cd ef") is None  # edited away
        assert index.text_id(" gh qz") is not None
        index.close()

    def test_incremental_extractor_rejects_non_index(self):
        with pytest.raises(ValueError):
            IncrementalExtractor(
                qz_spanner().executable, FastSeparatorSplitter("."),
                index=object(),
            )


# ----------------------------------------------------------------------
# Satellites
# ----------------------------------------------------------------------


class TestLRUEviction:
    def test_hits_refresh_recency(self):
        extractor = IncrementalExtractor(
            qz_spanner().executable, FastSeparatorSplitter("."),
            cache_limit=2,
        )
        extractor.evaluate("aa. bb.")       # caches "aa", " bb"
        extractor.evaluate("aa. cc.")       # hit "aa"; evict must be " bb"
        assert "aa" in extractor._cache
        assert " bb" not in extractor._cache
        assert " cc" in extractor._cache
        before = extractor.chunks_evaluated
        extractor.evaluate("aa.")
        assert extractor.chunks_evaluated == before  # still cached

    def test_fifo_would_have_evicted_the_hot_chunk(self):
        # Regression shape: under the old FIFO policy the first-inserted
        # chunk was evicted even while hot.
        extractor = IncrementalExtractor(
            qz_spanner().executable, FastSeparatorSplitter("."),
            cache_limit=3,
        )
        extractor.evaluate("aa. bb. cc.")
        extractor.evaluate("aa. dd.")       # touch aa, insert " dd"
        assert "aa" in extractor._cache     # FIFO would have dropped it


class TestTypedErrors:
    def test_json_load_raises_index_format_error(self, tmp_path):
        not_json = tmp_path / "bad.idx"
        not_json.write_text("definitely not json {")
        with pytest.raises(IndexFormatError):
            CorpusIndex.load(str(not_json))
        wrong_shape = tmp_path / "shape.idx"
        wrong_shape.write_text(json.dumps(["a", "list"]))
        with pytest.raises(IndexFormatError):
            CorpusIndex.load(str(wrong_shape))
        wrong_version = tmp_path / "version.idx"
        wrong_version.write_text(json.dumps(
            {"version": 99, "texts": [], "postings": {}}))
        with pytest.raises(IndexFormatError) as info:
            CorpusIndex.load(str(wrong_version))
        # Still a ValueError (the historical type) and a ReproError.
        assert isinstance(info.value, ValueError)
        assert isinstance(info.value, ReproError)
        assert str(wrong_version) in str(info.value)

    def test_manifest_errors_are_typed(self, tmp_path):
        directory = tmp_path / "segs"
        directory.mkdir()
        with pytest.raises(IndexFormatError):
            SegmentedIndex.open(str(directory))
        (directory / "MANIFEST.json").write_text("{broken")
        with pytest.raises(IndexFormatError):
            SegmentedIndex.open(str(directory))
        (directory / "MANIFEST.json").write_text(
            json.dumps({"format": "something-else"}))
        with pytest.raises(IndexFormatError):
            SegmentedIndex.open(str(directory))

    def test_splitter_fingerprint_mismatch_rejected(self, tmp_path):
        index = SegmentedIndex.build(
            Corpus.from_texts(CORPUS_TEXTS), sentence_splitter(),
            str(tmp_path / "segs"),
        )
        index.close()
        manifest_path = tmp_path / "segs" / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["splitter"] = "tokens"
        manifest["splitter_fingerprint"] = "0123456789abcdef"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError):
            SegmentedIndex.open(str(tmp_path / "segs"))


class TestExplainSurface:
    def test_explain_reports_format_and_segments(self, tmp_path):
        segs = str(tmp_path / "corpus.segs")
        SegmentedIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                             sentence_splitter(), segs).close()
        query = Q(qz_spanner()).split_by("sentences").indexed(segs)
        results = query.over(CORPUS_TEXTS)
        results.materialize()
        report = results.explain()["index"]
        assert report["index_format"] == "binary-segments"
        assert report["index_segments"] >= 1
        query.engine().index.close()

    def test_explain_reports_json_format(self, tmp_path):
        index = CorpusIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                                  sentence_splitter())
        query = Q(qz_spanner()).split_by("sentences").indexed(index)
        results = query.over(CORPUS_TEXTS)
        results.materialize()
        report = results.explain()["index"]
        assert report["index_format"] == "json"
        assert report["index_segments"] == 1


class TestCLI:
    def run_main(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_index_build_binary_compact_update(self, tmp_path, capsys):
        doc = tmp_path / "doc.txt"
        doc.write_text("ab qz cd. ef gh ab.")
        segs = str(tmp_path / "corpus.segs")
        code, out = self.run_main(
            ["index", "--alphabet", "abcdefgh qz.", "--splitter",
             "sentences", "--file", str(doc), "--format", "binary",
             "--output", segs],
            capsys,
        )
        assert code == 0
        assert "binary-segments" in out
        doc.write_text("ab qz cd. ef gh qz.")
        code, out = self.run_main(
            ["index-update", "--index", segs, "--alphabet",
             "abcdefgh qz.", "--file", str(doc)],
            capsys,
        )
        assert code == 0
        assert "+1 -1" in out
        code, out = self.run_main(
            ["index-compact", "--index", segs], capsys,
        )
        assert code == 0
        assert "compacted index" in out
        index = SegmentedIndex.open(segs)
        assert index.segment_count == 1
        assert index.tombstone_count == 0
        index.close()

    def test_engine_accepts_binary_index_path(self, tmp_path, capsys):
        doc = tmp_path / "doc.txt"
        doc.write_text("ab qz cd. ef gh ab.")
        segs = str(tmp_path / "corpus.segs")
        code, _out = self.run_main(
            ["index", "--alphabet", "abcdefgh qz.", "--splitter",
             "sentences", "--file", str(doc), "--format", "binary",
             "--output", segs],
            capsys,
        )
        assert code == 0
        code, out = self.run_main(
            ["engine", "--pattern", QZ_PATTERN, "--alphabet",
             "abcdefgh qz.", "--splitters", "sentences", "--file",
             str(doc), "--index", segs],
            capsys,
        )
        assert code == 0
        assert "index prefilter: indexed" in out

    def test_index_binary_requires_output(self, tmp_path, capsys):
        code = __import__("repro.__main__", fromlist=["main"]).main(
            ["index", "--alphabet", "ab .", "--format", "binary",
             "--text", "ab."]
        )
        assert code == 2


class TestServiceReopen:
    def test_reopen_refreshes_compacted_index(self, tmp_path):
        from repro.serve import ExtractionService

        segs = str(tmp_path / "corpus.segs")
        SegmentedIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                             sentence_splitter(), segs).close()
        engine = ExtractionEngine(sentence_registry(),
                                  corpus_index=segs)
        program = Program.from_query(qz_spanner())
        with ExtractionService(engine, program=program) as service:
            first = service.extract(CORPUS_TEXTS)
            # Another process edits and compacts the index directory.
            writer = SegmentedIndex.open(segs)
            writer.update_document("doc-0002", ["gh qz."])
            writer.compact()
            writer.close()
            report = service.reopen_index().result(timeout=30)
            assert report["action"] == "refreshed"
            assert report["changed"] is True
            assert report["segments"] == 1
            second = service.extract(CORPUS_TEXTS)
            assert first.by_document.keys() == second.by_document.keys()
            engine.index.close()

    def test_reopen_with_path_swaps_index(self, tmp_path):
        from repro.serve import ExtractionService

        first_dir = str(tmp_path / "first.segs")
        second_dir = str(tmp_path / "second.segs")
        SegmentedIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                             sentence_splitter(), first_dir).close()
        SegmentedIndex.build(Corpus.from_texts(CORPUS_TEXTS),
                             sentence_splitter(), second_dir).close()
        engine = ExtractionEngine(sentence_registry(),
                                  corpus_index=first_dir)
        program = Program.from_query(qz_spanner())
        with ExtractionService(engine, program=program) as service:
            report = service.reopen_index(second_dir).result(timeout=30)
            assert report["action"] == "attached"
            assert report["format"] == "binary-segments"
            assert engine.index.directory == second_dir
            engine.index.close()

    def test_reopen_without_index_is_noop(self):
        from repro.serve import ExtractionService

        engine = ExtractionEngine(sentence_registry())
        program = Program.from_query(qz_spanner())
        with ExtractionService(engine, program=program) as service:
            report = service.reopen_index().result(timeout=30)
            assert report["action"] == "noop"
