"""The typed exception hierarchy of the public (fluent) API.

Every error the documented surface raises derives from
:class:`ReproError`, so ``except ReproError`` catches anything this
library signals while programming mistakes (``TypeError`` from wrong
argument shapes, say) still propagate.  The concrete classes also
derive from the built-in exceptions the pre-fluent entry points used
to raise (``ValueError``, ``KeyError``), so existing callers that
catch those keep working unchanged.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


class ReproError(Exception):
    """Base class of every error raised by the repro public API."""


class NotFunctionalError(ReproError, ValueError):
    """A regex formula (or VSet-automaton) is not functional.

    The paper's standing assumption for the class RGX is that every
    accepting run assigns each variable exactly once; formulas like
    ``(x{a})*`` violate it.  Subclasses :class:`ValueError` because
    :func:`repro.spanners.regex_formulas.compile_regex_formula`
    historically raised that.
    """


class CertificationError(ReproError, ValueError):
    """A certification request cannot be satisfied as posed.

    Raised when a forced ``method="fast"`` is asked of inputs outside
    the tractable fragment (Theorems 5.7/5.17 need dfVSAs and a
    disjoint splitter), when an unknown method name is passed, or when
    an object that is neither a VSet-automaton nor a wrapper around
    one reaches the decision procedures.
    """


class UnknownSplitterError(ReproError, KeyError):
    """A splitter name is not in the builder registry.

    Carries the offending ``name``, the ``known`` names, and the
    nearest-name ``suggestion`` (when one is close enough) so callers
    (the CLI, error messages in notebooks) can show what *would* have
    worked.  Subclasses :class:`KeyError` to behave like the failed
    registry lookup it is.
    """

    def __init__(self, name: str, known: Optional[Iterable[str]] = None):
        self.name = name
        self.known = sorted(known) if known is not None else []
        matches = difflib.get_close_matches(name, self.known, n=1,
                                            cutoff=0.6)
        self.suggestion: Optional[str] = matches[0] if matches else None
        message = f"unknown splitter {name!r}"
        if self.suggestion is not None:
            message += f"; did you mean {self.suggestion!r}?"
        if self.known:
            message += "; known splitters: " + ", ".join(self.known)
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; keep it readable.
        return self.args[0]
