"""The typed exception hierarchy of the public (fluent) API.

Every error the documented surface raises derives from
:class:`ReproError`, so ``except ReproError`` catches anything this
library signals while programming mistakes (``TypeError`` from wrong
argument shapes, say) still propagate.  The concrete classes also
derive from the built-in exceptions the pre-fluent entry points used
to raise (``ValueError``, ``KeyError``), so existing callers that
catch those keep working unchanged.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


class ReproError(Exception):
    """Base class of every error raised by the repro public API."""


class NotFunctionalError(ReproError, ValueError):
    """A regex formula (or VSet-automaton) is not functional.

    The paper's standing assumption for the class RGX is that every
    accepting run assigns each variable exactly once; formulas like
    ``(x{a})*`` violate it.  Subclasses :class:`ValueError` because
    :func:`repro.spanners.regex_formulas.compile_regex_formula`
    historically raised that.
    """


class CertificationError(ReproError, ValueError):
    """A certification request cannot be satisfied as posed.

    Raised when a forced ``method="fast"`` is asked of inputs outside
    the tractable fragment (Theorems 5.7/5.17 need dfVSAs and a
    disjoint splitter), when an unknown method name is passed, or when
    an object that is neither a VSet-automaton nor a wrapper around
    one reaches the decision procedures.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A query ran past its deadline and was cooperatively cancelled.

    Raised at batch boundaries (the engine checks between scheduler
    passes, the scheduler between pool result batches), so a partially
    streamed run stops promptly without killing in-flight work: chunks
    already evaluated stay in the chunk cache and the engine remains
    fully usable for subsequent queries.  Carries the ``elapsed`` and
    ``budget`` seconds when the deadline knows them.  Subclasses
    :class:`TimeoutError` so generic timeout handling catches it.
    """

    def __init__(self, message: str = "deadline exceeded",
                 elapsed: Optional[float] = None,
                 budget: Optional[float] = None):
        self.elapsed = elapsed
        self.budget = budget
        if elapsed is not None and budget is not None:
            message += f" ({elapsed:.3f}s elapsed of {budget:.3f}s budget)"
        super().__init__(message)


class ServiceOverloadedError(ReproError, RuntimeError):
    """The extraction service's admission queue is full.

    Raised synchronously at submission time (admission control rejects
    explicitly instead of queueing unboundedly); carries the queue
    ``capacity`` so callers can report back-pressure.  Retry later or
    shed load upstream.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        super().__init__(
            f"service admission queue full ({capacity} pending queries); "
            f"retry later"
        )


class ServiceClosedError(ReproError, RuntimeError):
    """A query was submitted to a service that has been closed."""

    def __init__(self) -> None:
        super().__init__("the extraction service is closed")


class IndexFormatError(ReproError, ValueError):
    """A persisted corpus index cannot be opened as its format claims.

    Raised by :meth:`repro.index.CorpusIndex.load` and the binary
    segment store (:mod:`repro.index.store`) for unsupported format
    versions, bad magic bytes, truncated files, and splitter-
    fingerprint mismatches between a manifest and its segments.
    Carries the offending ``path`` when one is known.  Subclasses
    :class:`ValueError` because the JSON loader historically raised
    that for version mismatches.
    """

    def __init__(self, message: str, path: Optional[str] = None):
        self.path = path
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


class UnknownSplitterError(ReproError, KeyError):
    """A splitter name is not in the builder registry.

    Carries the offending ``name``, the ``known`` names, and the
    nearest-name ``suggestion`` (when one is close enough) so callers
    (the CLI, error messages in notebooks) can show what *would* have
    worked.  Subclasses :class:`KeyError` to behave like the failed
    registry lookup it is.
    """

    def __init__(self, name: str, known: Optional[Iterable[str]] = None):
        self.name = name
        self.known = sorted(known) if known is not None else []
        matches = difflib.get_close_matches(name, self.known, n=1,
                                            cutoff=0.6)
        self.suggestion: Optional[str] = matches[0] if matches else None
        message = f"unknown splitter {name!r}"
        if self.suggestion is not None:
            message += f"; did you mean {self.suggestion!r}?"
        if self.known:
            message += "; known splitters: " + ", ".join(self.known)
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; keep it readable.
        return self.args[0]
