"""A stdlib-only HTTP/JSON endpoint over :class:`ExtractionService`.

Deliberately minimal — :mod:`asyncio.start_server` plus hand-rolled
HTTP/1.1 parsing, no third-party dependency — because the protocol
surface is three routes:

* ``POST /extract`` — body ``{"texts": [...]}`` or ``{"documents":
  {id: text}}``, optional ``"tenant"``, ``"deadline_ms"``, and (when
  the service allows ad-hoc programs) ``"pattern"``/``"alphabet"``.
  Responds ``200`` with per-document span tuples, ``429`` when
  admission control rejects, ``504`` on a missed deadline, ``400`` on
  a malformed request.
* ``GET /metrics`` — Prometheus text exposition (service + engine +
  kernel registries, tenant labels included).
* ``GET /healthz`` — liveness.

Start it from Python (:func:`serve_http`) or from the CLI::

    python -m repro serve --pattern '...' --alphabet 'ab .' \
        --splitters tokens --port 8080

Error mapping is part of the contract: admission and deadline errors
arrive as typed JSON (``{"error": "overloaded" | "deadline_exceeded",
...}``) so load-shedding clients can react without string matching.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)

from repro.serve.service import ExtractionService, ServiceResult

#: Request bodies above this size are rejected with 413 (the service
#: is an extraction endpoint, not a bulk-ingest channel).
MAX_BODY_BYTES = 16 * 1024 * 1024


def _json_response(status: int, payload: Dict[str, object],
                   reason: str = "") -> bytes:
    body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 413: "Payload Too Large",
               429: "Too Many Requests", 500: "Internal Server Error",
               503: "Service Unavailable", 504: "Gateway Timeout"}
    head = (
        f"HTTP/1.1 {status} {reason or reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _text_response(status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") \
        -> bytes:
    body = text.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} OK\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _result_payload(result: ServiceResult) -> Dict[str, object]:
    """JSON shape of a served result: tuples as ``{var: [begin, end]}``
    per document, plus the per-query timing the service measured."""
    documents: Dict[str, list] = {}
    for doc_id, tuples in result.by_document.items():
        documents[doc_id] = sorted(
            (
                {
                    str(variable): [span.begin, span.end]
                    for variable, span in sorted(
                        span_tuple.items(), key=lambda kv: str(kv[0])
                    )
                }
                for span_tuple in tuples
            ),
            key=lambda row: sorted(row.items()),
        )
    return {
        "tenant": result.tenant,
        "tuples": result.total_tuples,
        "documents": documents,
        "queue_seconds": result.queue_seconds,
        "run_seconds": result.run_seconds,
    }


class ServiceHTTPServer:
    """The asyncio endpoint bound to one :class:`ExtractionService`.

    ``query_factory`` optionally maps ``(pattern, alphabet)`` from a
    request body to an engine program, enabling ad-hoc programs over
    the same resident engine (they share its plan cache); without it,
    requests run the service's default program only.
    """

    def __init__(self, service: ExtractionService,
                 query_factory=None) -> None:
        self.service = service
        self.query_factory = query_factory
        self._server: Optional[asyncio.AbstractServer] = None

    # -- request plumbing ----------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise OverflowError("request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, body

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except OverflowError:
            response = _json_response(413, {"error": "body_too_large"})
        except Exception as error:  # malformed request; never crash
            response = _json_response(
                400, {"error": "bad_request", "detail": str(error)})
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        method, path, body = await self._read_request(reader)
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        if path == "/metrics":
            return _text_response(200, self.service.to_prometheus())
        if path != "/extract":
            return _json_response(404, {"error": "not_found",
                                        "path": path})
        if method != "POST":
            return _json_response(405, {"error": "method_not_allowed"})
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except ValueError:
            return _json_response(400, {"error": "invalid_json"})
        return await self._extract(request)

    # -- the /extract route --------------------------------------------

    def _corpus_of(self, request: Dict[str, object]):
        documents = request.get("documents")
        if isinstance(documents, dict):
            return {str(k): str(v) for k, v in documents.items()}
        texts = request.get("texts")
        if isinstance(texts, list) and texts:
            return [str(text) for text in texts]
        raise ValueError(
            'provide "texts": [..] or "documents": {id: text}')

    def _program_of(self, request: Dict[str, object]):
        pattern = request.get("pattern")
        if pattern is None:
            return None          # the service's default program
        if self.query_factory is None:
            raise ValueError(
                "this endpoint serves a fixed program; "
                "per-request patterns are not enabled")
        return self.query_factory(str(pattern),
                                  request.get("alphabet"))

    async def _extract(self, request: Dict[str, object]) -> bytes:
        try:
            corpus = self._corpus_of(request)
            program = self._program_of(request)
            deadline_ms = request.get("deadline_ms")
            deadline = (float(deadline_ms) / 1000.0
                        if deadline_ms is not None else None)
            tenant = str(request.get("tenant", "default"))
        except (TypeError, ValueError) as error:
            return _json_response(400, {"error": "bad_request",
                                        "detail": str(error)})
        try:
            result = await self.service.extract_async(
                corpus, program, tenant=tenant, deadline=deadline)
        except ServiceOverloadedError as error:
            return _json_response(
                429, {"error": "overloaded",
                      "capacity": error.capacity, "tenant": tenant})
        except DeadlineExceededError as error:
            return _json_response(
                504, {"error": "deadline_exceeded", "tenant": tenant,
                      "elapsed_seconds": error.elapsed,
                      "budget_seconds": error.budget})
        except ServiceClosedError:
            return _json_response(503, {"error": "closed"})
        except (ReproError, ValueError) as error:
            return _json_response(400, {"error": "bad_request",
                                        "detail": str(error)})
        return _json_response(200, _result_payload(result))

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (useful with ``port=0`` for an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("start() the server first")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def serve_http(service: ExtractionService, host: str = "127.0.0.1",
               port: int = 8080, query_factory=None,
               ready=None) -> None:
    """Run the HTTP endpoint until interrupted (blocking).

    ``ready`` is an optional callback receiving the bound
    ``(host, port)`` once the socket is listening — what the CLI uses
    to print the URL and smoke tests use to know when to connect.
    """
    server = ServiceHTTPServer(service, query_factory=query_factory)

    async def _run() -> None:
        bound = await server.start(host=host, port=port)
        if ready is not None:
            ready(bound)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
