"""A stdlib-only HTTP/JSON endpoint over :class:`ExtractionService`.

Deliberately minimal — :mod:`asyncio.start_server` plus hand-rolled
HTTP/1.1 parsing, no third-party dependency — because the protocol
surface is small:

* ``POST /extract`` — body ``{"texts": [...]}`` or ``{"documents":
  {id: text}}``, optional ``"tenant"``, ``"deadline_ms"``, and (when
  the service allows ad-hoc programs) ``"pattern"``/``"alphabet"``.
  Responds ``200`` with per-document span tuples, ``429`` when
  admission control rejects, ``504`` on a missed deadline, ``400`` on
  a malformed request.
* ``GET /metrics`` — Prometheus text exposition (service + engine +
  kernel registries, tenant labels included).
* ``GET /healthz`` — liveness.
* ``GET /debug/queries[?limit=N]`` — flight-recorder summaries of the
  last N completed queries; ``GET /debug/queries/<id>`` — one query's
  full record, span tree and explain payload included when the slow
  log kept them.
* ``GET /debug/slow`` — the slow-query log, full records.
* ``GET /debug/inflight`` — dispatcher queue depth, the running
  query, per-tenant admission counters.
* ``GET /debug/profile?seconds=S&hz=H`` — run the sampling profiler
  for S seconds (clamped) and return folded stacks per thread role.

Start it from Python (:func:`serve_http`) or from the CLI::

    python -m repro serve --pattern '...' --alphabet 'ab .' \
        --splitters tokens --port 8080 \
        --log events.jsonl --flight 256 --slow-ms 100

Error mapping is part of the contract: admission and deadline errors
arrive as typed JSON (``{"error": "overloaded" | "deadline_exceeded",
...}``) so load-shedding clients can react without string matching.
**Every** response carries an ``X-Repro-Request-Id`` header (echoed
in JSON error bodies as ``"request_id"``); the same id names the
query in the flight recorder and the structured event log, so a 429
or 504 seen client-side joins directly against the server's records.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Dict, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs.log import event_log

from repro.serve.service import (
    ExtractionService,
    ServiceResult,
    _new_query_id,
)

#: Request bodies above this size are rejected with 413 (the service
#: is an extraction endpoint, not a bulk-ingest channel).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: ``/debug/profile`` bounds: the profiler blocks a worker thread for
#: the requested window, so the window is clamped server-side.
MAX_PROFILE_SECONDS = 10.0
DEFAULT_PROFILE_SECONDS = 1.0


def _json_response(status: int, payload: Dict[str, object],
                   reason: str = "",
                   request_id: Optional[str] = None) -> bytes:
    if request_id is not None and status >= 400:
        payload = dict(payload)
        payload.setdefault("request_id", request_id)
    body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 413: "Payload Too Large",
               429: "Too Many Requests", 500: "Internal Server Error",
               503: "Service Unavailable", 504: "Gateway Timeout"}
    request_header = (f"X-Repro-Request-Id: {request_id}\r\n"
                      if request_id is not None else "")
    head = (
        f"HTTP/1.1 {status} {reason or reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{request_header}"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _text_response(status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4",
                   request_id: Optional[str] = None) -> bytes:
    body = text.encode("utf-8")
    request_header = (f"X-Repro-Request-Id: {request_id}\r\n"
                      if request_id is not None else "")
    head = (
        f"HTTP/1.1 {status} OK\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{request_header}"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _result_payload(result: ServiceResult) -> Dict[str, object]:
    """JSON shape of a served result: tuples as ``{var: [begin, end]}``
    per document, plus the per-query timing the service measured."""
    documents: Dict[str, list] = {}
    for doc_id, tuples in result.by_document.items():
        documents[doc_id] = sorted(
            (
                {
                    str(variable): [span.begin, span.end]
                    for variable, span in sorted(
                        span_tuple.items(), key=lambda kv: str(kv[0])
                    )
                }
                for span_tuple in tuples
            ),
            key=lambda row: sorted(row.items()),
        )
    return {
        "tenant": result.tenant,
        "tuples": result.total_tuples,
        "documents": documents,
        "queue_seconds": result.queue_seconds,
        "run_seconds": result.run_seconds,
    }


class ServiceHTTPServer:
    """The asyncio endpoint bound to one :class:`ExtractionService`.

    ``query_factory`` optionally maps ``(pattern, alphabet)`` from a
    request body to an engine program, enabling ad-hoc programs over
    the same resident engine (they share its plan cache); without it,
    requests run the service's default program only.

    Every connection is assigned a request id up front; it rides the
    ``X-Repro-Request-Id`` response header, JSON error bodies, the
    event log's ``http.error`` events, and — for ``/extract`` — the
    flight recorder (the id *is* the query id).
    """

    def __init__(self, service: ExtractionService,
                 query_factory=None) -> None:
        self.service = service
        self.query_factory = query_factory
        self._server: Optional[asyncio.AbstractServer] = None

    # -- request plumbing ----------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise OverflowError("request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, body

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        request_id = _new_query_id()
        try:
            response = await self._respond(reader, request_id)
        except OverflowError:
            response = self._error(413, {"error": "body_too_large"},
                                   request_id)
        except Exception as error:  # malformed request; never crash
            response = self._error(
                400, {"error": "bad_request", "detail": str(error)},
                request_id)
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()

    def _error(self, status: int, payload: Dict[str, object],
               request_id: str,
               tenant: Optional[str] = None) -> bytes:
        """An error response, logged to the event log first so the
        server-side record carries the same id the client sees."""
        event_log().emit(
            "http.error", level="warning", tenant=tenant,
            request_id=request_id, status=status,
            error=payload.get("error"),
        )
        return _json_response(status, payload, request_id=request_id)

    async def _respond(self, reader: asyncio.StreamReader,
                       request_id: str) -> bytes:
        method, path, body = await self._read_request(reader)
        path, _, query_string = path.partition("?")
        params = {
            key: values[-1] for key, values in
            urllib.parse.parse_qs(query_string).items()
        }
        if path == "/healthz":
            return _json_response(200, {"status": "ok"},
                                  request_id=request_id)
        if path == "/metrics":
            return _text_response(200, self.service.to_prometheus(),
                                  request_id=request_id)
        if path.startswith("/debug/"):
            return await self._debug(method, path, params, request_id)
        if path != "/extract":
            return self._error(404, {"error": "not_found",
                                     "path": path}, request_id)
        if method != "POST":
            return self._error(405, {"error": "method_not_allowed"},
                               request_id)
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except ValueError:
            return self._error(400, {"error": "invalid_json"},
                               request_id)
        return await self._extract(request, request_id)

    # -- the /debug routes ---------------------------------------------

    async def _debug(self, method: str, path: str,
                     params: Dict[str, str], request_id: str) -> bytes:
        if method != "GET":
            return self._error(405, {"error": "method_not_allowed"},
                               request_id)
        service = self.service
        try:
            limit = int(params["limit"]) if "limit" in params else None
        except ValueError:
            return self._error(400, {"error": "bad_request",
                                     "detail": "limit must be an int"},
                               request_id)
        if path == "/debug/queries":
            return _json_response(
                200, {"queries": service.flight_records(limit),
                      "recording": service.flight is not None},
                request_id=request_id)
        if path.startswith("/debug/queries/"):
            query_id = path[len("/debug/queries/"):]
            record = service.flight_record(query_id)
            if record is None:
                return self._error(
                    404, {"error": "unknown_query",
                          "query_id": query_id}, request_id)
            return _json_response(200, record, request_id=request_id)
        if path == "/debug/slow":
            return _json_response(
                200, {"slow": service.slow_queries(limit),
                      "recording": service.flight is not None},
                request_id=request_id)
        if path == "/debug/inflight":
            return _json_response(200, service.inflight(),
                                  request_id=request_id)
        if path == "/debug/profile":
            return await self._profile(params, request_id)
        return self._error(404, {"error": "not_found", "path": path},
                           request_id)

    async def _profile(self, params: Dict[str, str],
                       request_id: str) -> bytes:
        from repro.obs.profile import profile_for

        try:
            seconds = float(params.get("seconds",
                                       DEFAULT_PROFILE_SECONDS))
            hz = float(params.get("hz", 97.0))
        except ValueError:
            return self._error(
                400, {"error": "bad_request",
                      "detail": "seconds/hz must be numbers"},
                request_id)
        if seconds <= 0 or hz <= 0:
            return self._error(
                400, {"error": "bad_request",
                      "detail": "seconds and hz must be positive"},
                request_id)
        seconds = min(seconds, MAX_PROFILE_SECONDS)
        # The profiler blocks for the whole window — run it off the
        # event loop so other requests keep being served meanwhile.
        profiler = await asyncio.to_thread(
            profile_for, seconds, hz, self.service.current_query_id)
        payload = profiler.snapshot()
        payload["seconds"] = seconds
        return _json_response(200, payload, request_id=request_id)

    # -- the /extract route --------------------------------------------

    def _corpus_of(self, request: Dict[str, object]):
        documents = request.get("documents")
        if isinstance(documents, dict):
            return {str(k): str(v) for k, v in documents.items()}
        texts = request.get("texts")
        if isinstance(texts, list) and texts:
            return [str(text) for text in texts]
        raise ValueError(
            'provide "texts": [..] or "documents": {id: text}')

    def _program_of(self, request: Dict[str, object]):
        pattern = request.get("pattern")
        if pattern is None:
            return None          # the service's default program
        if self.query_factory is None:
            raise ValueError(
                "this endpoint serves a fixed program; "
                "per-request patterns are not enabled")
        return self.query_factory(str(pattern),
                                  request.get("alphabet"))

    async def _extract(self, request: Dict[str, object],
                       request_id: str) -> bytes:
        try:
            corpus = self._corpus_of(request)
            program = self._program_of(request)
            deadline_ms = request.get("deadline_ms")
            deadline = (float(deadline_ms) / 1000.0
                        if deadline_ms is not None else None)
            tenant = str(request.get("tenant", "default"))
        except (TypeError, ValueError) as error:
            return self._error(400, {"error": "bad_request",
                                     "detail": str(error)}, request_id)
        try:
            result = await self.service.extract_async(
                corpus, program, tenant=tenant, deadline=deadline,
                query_id=request_id)
        except ServiceOverloadedError as error:
            return self._error(
                429, {"error": "overloaded",
                      "capacity": error.capacity, "tenant": tenant},
                request_id, tenant=tenant)
        except DeadlineExceededError as error:
            return self._error(
                504, {"error": "deadline_exceeded", "tenant": tenant,
                      "elapsed_seconds": error.elapsed,
                      "budget_seconds": error.budget},
                request_id, tenant=tenant)
        except ServiceClosedError:
            return self._error(503, {"error": "closed"}, request_id,
                               tenant=tenant)
        except (ReproError, ValueError) as error:
            return self._error(400, {"error": "bad_request",
                                     "detail": str(error)}, request_id,
                               tenant=tenant)
        return _json_response(200, _result_payload(result),
                              request_id=request_id)

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (useful with ``port=0`` for an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("start() the server first")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def serve_http(service: ExtractionService, host: str = "127.0.0.1",
               port: int = 8080, query_factory=None,
               ready=None) -> None:
    """Run the HTTP endpoint until interrupted (blocking).

    ``ready`` is an optional callback receiving the bound
    ``(host, port)`` once the socket is listening — what the CLI uses
    to print the URL and smoke tests use to know when to connect.
    """
    server = ServiceHTTPServer(service, query_factory=query_factory)

    async def _run() -> None:
        bound = await server.start(host=host, port=port)
        if ready is not None:
            ready(bound)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
