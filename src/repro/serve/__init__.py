"""Resident extraction serving (:class:`ExtractionService`).

The paper makes chunks context-free units of work; the engine
(:mod:`repro.engine`) amortizes certification, compilation and chunk
results across a corpus; this package amortizes them across
*queries*: a resident service owns one hot
:class:`repro.engine.ExtractionEngine` — plan cache, chunk cache,
corpus index and worker pool warm for its whole lifetime — behind a
bounded admission queue with per-query deadlines and per-tenant
metrics.

* :mod:`repro.serve.service` — the :class:`ExtractionService`
  (ownership boundary, admission control, deadlines, tenant stats);
* :mod:`repro.serve.http` — the optional stdlib-only HTTP/JSON
  endpoint (``python -m repro serve``).

Quickstart::

    from repro import Q, Spanner

    service = Q(spanner).split_by("tokens").workers(4).serve()
    with service:
        result = service.extract(texts, tenant="acme", deadline=0.5)

Deadline and admission failures are typed
(:class:`repro.errors.DeadlineExceededError`,
:class:`repro.errors.ServiceOverloadedError`) and never poison the
shared engine: cancellation is cooperative at batch boundaries, so
subsequent queries run on an intact pool with all caches warm.
"""

from repro.engine.deadline import Deadline
from repro.serve.http import ServiceHTTPServer, serve_http
from repro.serve.service import ExtractionService, ServiceResult

__all__ = [
    "Deadline",
    "ExtractionService",
    "ServiceHTTPServer",
    "ServiceResult",
    "serve_http",
]
