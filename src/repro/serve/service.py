"""The resident :class:`ExtractionService`: one hot engine, many queries.

Everything below the service is batch-oriented and synchronous; the
service makes it *resident*.  One dispatcher thread owns a single
:class:`repro.engine.ExtractionEngine` — the ownership boundary: no
other thread ever touches the engine, so the plan cache, chunk cache,
corpus index and worker pool stay hot and uncontended across thousands
of queries — while any number of submitting threads (or asyncio tasks,
or HTTP connections) funnel work through a bounded admission queue.

Three serving disciplines, all explicit:

* **Admission control** — the queue is bounded; a full queue rejects
  *synchronously* with :class:`repro.errors.ServiceOverloadedError`
  instead of buffering unboundedly (load shedding at the front door).
* **Deadlines** — every query carries a
  :class:`repro.engine.deadline.Deadline` started at submission, so
  the budget covers queue wait too; the engine checks it cooperatively
  at batch boundaries and raises
  :class:`repro.errors.DeadlineExceededError` without poisoning the
  shared engine (pool, caches and shm segments stay intact).
* **Per-tenant accounting** — queries, tuples, deadline misses,
  rejections, queue-wait and latency histograms, all labeled by
  tenant in the engine's :class:`repro.obs.metrics.Metrics` registry
  and exportable as Prometheus text.

Typical use::

    from repro import Q, Spanner

    service = Q(spanner).split_by("tokens").workers(4).serve()
    with service:
        future = service.submit(texts, tenant="acme", deadline=0.5)
        result = future.result()          # ServiceResult
        print(result.total_tuples, service.tenant_stats("acme"))

``await service.extract_async(...)`` is the asyncio front end; the
stdlib HTTP/JSON endpoint on top lives in :mod:`repro.serve.http`
(``python -m repro serve`` starts it).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.spans import SpanTuple
from repro.engine.deadline import Deadline, as_deadline
from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.obs.metrics import Metrics

#: Queue sentinel telling the dispatcher thread to exit.
_SHUTDOWN = object()


@dataclass
class ServiceResult:
    """What one served query produced.

    ``by_document`` maps ``doc_id -> set of span tuples`` (the
    engine's result shape); the timing fields make latency visible per
    query — ``queue_seconds`` is time spent waiting for the dispatcher
    (admission to start of execution), ``run_seconds`` the engine pass
    itself.
    """

    by_document: Dict[str, Set[SpanTuple]]
    tenant: str
    queue_seconds: float
    run_seconds: float
    program: str = "query"

    @property
    def total_tuples(self) -> int:
        return sum(len(tuples) for tuples in self.by_document.values())

    def __getitem__(self, doc_id: str) -> Set[SpanTuple]:
        return self.by_document[doc_id]

    def __len__(self) -> int:
        return len(self.by_document)


@dataclass
class _Job:
    """One admitted query, queued for the dispatcher thread."""

    corpus: object
    program: object
    tenant: str
    deadline: Deadline
    future: "Future[ServiceResult]"
    enqueued: float = field(default_factory=time.monotonic)


@dataclass
class _Control:
    """An engine-management operation, queued like a query.

    Control work (index reopen, compaction pickup) must run on the
    dispatcher thread — it touches the engine, and the dispatcher owns
    the engine — so it rides the same admission queue as queries and
    executes between them, never concurrently with one.
    """

    operation: object  # callable(engine) -> result
    future: "Future[object]"


class ExtractionService:
    """A long-lived, concurrent front end over one extraction engine.

    ``engine`` is an :class:`repro.engine.ExtractionEngine` the service
    takes ownership of (it is driven exclusively by the service's
    dispatcher thread and closed by :meth:`close`); build one
    explicitly, or — the fluent route — let
    :meth:`repro.query.Query.serve` derive service and engine from a
    configured query in one call.

    ``program`` optionally fixes a default extraction program
    (:class:`repro.engine.Program` or anything
    :meth:`repro.engine.Program.from_query` accepts): submissions may
    then omit theirs.  ``max_queue`` bounds the admission queue
    (``submit`` raises :class:`repro.errors.ServiceOverloadedError`
    when it is full); ``default_deadline`` (seconds, or a
    :class:`repro.engine.deadline.Deadline` factory value) applies to
    queries that do not carry their own.

    Queries execute **serially** on the dispatcher thread — chunk-level
    parallelism comes from the engine's worker pool, and serial
    dispatch is precisely what makes concurrent identical queries
    share one certification and one chunk-cache population instead of
    racing.  The service is usable as a context manager; it starts
    lazily on first submission.
    """

    def __init__(
        self,
        engine,
        program: object = None,
        max_queue: int = 64,
        default_deadline: Optional[float] = None,
        name: str = "service",
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self._engine = engine
        self._default_program = program
        self._default_deadline = default_deadline
        self.name = name
        self.max_queue = max_queue
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queue)
        self._dispatcher: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._closed = False
        metrics = engine.metrics
        self._queries = metrics.counter
        self._queue_depth = metrics.gauge("service.queue_depth")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ExtractionService":
        """Start the dispatcher thread (idempotent; implicit on first
        submission)."""
        with self._lifecycle:
            if self._closed:
                raise ServiceClosedError()
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-{self.name}-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting queries and shut the service down.

        With ``drain=True`` (default) queries already admitted run to
        completion first; with ``drain=False`` pending queries fail
        with :class:`repro.errors.ServiceClosedError`.  The owned
        engine's pool and shm segments are released; caches survive on
        the engine object.  Idempotent.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
        if not drain:
            # Fail whatever is still queued; the dispatcher drains the
            # sentinel afterwards.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(job, (_Job, _Control)):
                    job.future.set_exception(ServiceClosedError())
        if dispatcher is not None:
            self._queue.put(_SHUTDOWN)
            dispatcher.join()
        self._engine.close()

    def __enter__(self) -> "ExtractionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------

    def submit(
        self,
        corpus,
        program: object = None,
        tenant: str = "default",
        deadline: object = None,
    ) -> "Future[ServiceResult]":
        """Admit one query; returns a future resolving to a
        :class:`ServiceResult`.

        ``corpus`` is anything the engine accepts (a
        :class:`repro.engine.Corpus`, a mapping ``id -> text``, or a
        sequence of texts); ``program`` defaults to the service's
        default program.  ``deadline`` (seconds or a
        :class:`Deadline`) starts counting *now* — queue wait spends
        budget too.  Raises :class:`ServiceOverloadedError` when the
        admission queue is full and :class:`ServiceClosedError` after
        :meth:`close`; both are synchronous, before anything queues.
        """
        if self._closed:
            self._count("service.rejections", tenant,
                        reason="closed").inc()
            raise ServiceClosedError()
        program = program if program is not None else self._default_program
        if program is None:
            raise ValueError(
                "no program: pass one to submit() or configure a "
                "default on the service"
            )
        if deadline is None:
            deadline = self._default_deadline
        job = _Job(
            corpus=corpus,
            program=program,
            tenant=tenant,
            deadline=as_deadline(deadline),
            future=Future(),
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._count("service.rejections", tenant,
                        reason="overloaded").inc()
            raise ServiceOverloadedError(self.max_queue) from None
        self._queue_depth.set(self._queue.qsize())
        if self._dispatcher is None:
            self.start()
        return job.future

    def extract(self, corpus, program: object = None,
                tenant: str = "default",
                deadline: object = None) -> ServiceResult:
        """Submit and block for the result (the synchronous shortcut)."""
        return self.submit(corpus, program, tenant, deadline).result()

    async def extract_async(self, corpus, program: object = None,
                            tenant: str = "default",
                            deadline: object = None) -> ServiceResult:
        """The asyncio front end: awaitable submission.

        Admission control still applies synchronously (an overloaded
        service raises before anything is awaited); the returned
        coroutine resolves when the dispatcher finishes the query.
        """
        import asyncio

        future = self.submit(corpus, program, tenant, deadline)
        return await asyncio.wrap_future(future)

    def reopen_index(self, path: Optional[str] = None) -> "Future[object]":
        """Pick up index changes without restarting the service.

        With ``path``, opens the index there (JSON file or binary
        segment directory, via :func:`repro.index.store.open_index`)
        and attaches it to the resident engine, closing the previously
        attached mmap-backed index if it had one.  With no ``path``,
        refreshes the currently attached
        :class:`repro.index.store.SegmentedIndex` in place — after an
        out-of-process :meth:`~repro.index.store.SegmentedIndex.
        compact` or delta flush, the engine starts serving the new
        generation from the next query (prefilter masks recompute
        automatically off the index version).

        Runs on the dispatcher thread between queries — never
        concurrently with one — so in-flight queries finish against
        the index they started with.  Returns a future resolving to a
        report dict; raises :class:`ServiceOverloadedError` /
        :class:`ServiceClosedError` like :meth:`submit`.
        """
        if self._closed:
            raise ServiceClosedError()

        def _reopen(engine) -> Dict[str, object]:
            if path is not None:
                from repro.index.store import open_index

                previous = engine.index
                engine.attach_index(open_index(path))
                if previous is not None and hasattr(previous, "close"):
                    previous.close()
                return {"action": "attached", "path": path,
                        "format": getattr(engine.index, "format",
                                          "unknown")}
            index = engine.index
            if index is None or not hasattr(index, "refresh"):
                return {"action": "noop",
                        "reason": "no refreshable index attached"}
            changed = index.refresh()
            return {"action": "refreshed", "changed": changed,
                    "generation": getattr(index, "generation", None),
                    "segments": getattr(index, "segment_count", None)}

        job = _Control(operation=_reopen, future=Future())
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise ServiceOverloadedError(self.max_queue) from None
        if self._dispatcher is None:
            self.start()
        return job.future

    # ------------------------------------------------------------------
    # Dispatch (the engine-owning thread)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                break
            self._queue_depth.set(self._queue.qsize())
            if isinstance(job, _Control):
                self._execute_control(job)
            else:
                self._execute(job)

    def _execute_control(self, job: _Control) -> None:
        if job.future.cancelled():
            return
        job.future.set_running_or_notify_cancel()
        try:
            job.future.set_result(job.operation(self._engine))
        except BaseException as error:  # report, don't kill dispatch
            job.future.set_exception(error)

    def _execute(self, job: _Job) -> None:
        if job.future.cancelled():
            return
        job.future.set_running_or_notify_cancel()
        tenant = job.tenant
        queue_wait = time.monotonic() - job.enqueued
        self._histogram("service.queue_wait_seconds", tenant) \
            .observe(queue_wait)
        started = time.perf_counter()
        try:
            # Reject a dead-on-arrival budget before any engine work;
            # mid-run expiry surfaces from the engine's own batch-
            # boundary checks.
            job.deadline.check()
            result = self._engine.run(job.corpus, job.program,
                                      deadline=job.deadline)
        except BaseException as error:
            from repro.errors import DeadlineExceededError

            if isinstance(error, DeadlineExceededError):
                self._count("service.deadline_misses", tenant).inc()
            self._count("service.errors", tenant,
                        kind=type(error).__name__).inc()
            self._finish(job, started, tenant)
            job.future.set_exception(error)
            return
        run_seconds = self._finish(job, started, tenant)
        self._count("service.tuples", tenant).inc(result.total_tuples())
        job.future.set_result(ServiceResult(
            by_document=result.by_document,
            tenant=tenant,
            queue_seconds=queue_wait,
            run_seconds=run_seconds,
            program=getattr(job.program, "name", "query"),
        ))

    def _finish(self, job: _Job, started: float, tenant: str) -> float:
        run_seconds = time.perf_counter() - started
        self._count("service.queries", tenant).inc()
        self._histogram("service.latency_seconds", tenant) \
            .observe(job.deadline.elapsed())
        return run_seconds

    def _count(self, name: str, tenant: str, **labels):
        return self._engine.metrics.counter(name, tenant=tenant, **labels)

    def _histogram(self, name: str, tenant: str):
        return self._engine.metrics.histogram(name, tenant=tenant)

    # ------------------------------------------------------------------
    # Introspection (any thread; read-only views)
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        """The engine's metrics registry (counters, histograms —
        including every ``service.*`` tenant-labeled instrument)."""
        return self._engine.metrics

    def engine_stats(self):
        """The owned engine's cumulative
        :class:`repro.engine.stats.EngineStats` (certifications, cache
        hit rates, chunks evaluated)."""
        return self._engine.stats()

    def tenant_stats(self, tenant: str = "default") -> Dict[str, object]:
        """One tenant's serving counters as a flat dict.

        ``queue_wait_p50/p95/p99`` and ``latency_p50/p95/p99`` are
        histogram-bucket upper bounds (see
        :meth:`repro.obs.metrics.Histogram.quantile`).
        """
        value = self._engine.metrics.value
        wait = self._histogram("service.queue_wait_seconds", tenant)
        latency = self._histogram("service.latency_seconds", tenant)
        return {
            "tenant": tenant,
            "queries": value("service.queries", tenant=tenant),
            "tuples": value("service.tuples", tenant=tenant),
            "deadline_misses": value("service.deadline_misses",
                                     tenant=tenant),
            "rejections": value("service.rejections", tenant=tenant,
                                reason="overloaded"),
            "queue_wait_p50": wait.quantile(0.5),
            "queue_wait_p95": wait.quantile(0.95),
            "queue_wait_p99": wait.quantile(0.99),
            "latency_p50": latency.quantile(0.5),
            "latency_p95": latency.quantile(0.95),
            "latency_p99": latency.quantile(0.99),
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the service + engine + kernel
        registries (what ``GET /metrics`` serves)."""
        from repro.obs.metrics import kernel_metrics

        combined = Metrics().merge(self._engine.metrics) \
                            .merge(kernel_metrics())
        return combined.to_prometheus()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "running" if self._dispatcher is not None else "idle")
        return (f"ExtractionService({self.name!r}, {state}, "
                f"queue {self._queue.qsize()}/{self.max_queue})")
