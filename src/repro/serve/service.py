"""The resident :class:`ExtractionService`: one hot engine, many queries.

Everything below the service is batch-oriented and synchronous; the
service makes it *resident*.  One dispatcher thread owns a single
:class:`repro.engine.ExtractionEngine` — the ownership boundary: no
other thread ever touches the engine, so the plan cache, chunk cache,
corpus index and worker pool stay hot and uncontended across thousands
of queries — while any number of submitting threads (or asyncio tasks,
or HTTP connections) funnel work through a bounded admission queue.

Three serving disciplines, all explicit:

* **Admission control** — the queue is bounded; a full queue rejects
  *synchronously* with :class:`repro.errors.ServiceOverloadedError`
  instead of buffering unboundedly (load shedding at the front door).
* **Deadlines** — every query carries a
  :class:`repro.engine.deadline.Deadline` started at submission, so
  the budget covers queue wait too; the engine checks it cooperatively
  at batch boundaries and raises
  :class:`repro.errors.DeadlineExceededError` without poisoning the
  shared engine (pool, caches and shm segments stay intact).
* **Per-tenant accounting** — queries, tuples, deadline misses,
  rejections, queue-wait and latency histograms, all labeled by
  tenant in the engine's :class:`repro.obs.metrics.Metrics` registry
  and exportable as Prometheus text.

Typical use::

    from repro import Q, Spanner

    service = Q(spanner).split_by("tokens").workers(4).serve()
    with service:
        future = service.submit(texts, tenant="acme", deadline=0.5)
        result = future.result()          # ServiceResult
        print(result.total_tuples, service.tenant_stats("acme"))

``await service.extract_async(...)`` is the asyncio front end; the
stdlib HTTP/JSON endpoint on top lives in :mod:`repro.serve.http`
(``python -m repro serve`` starts it).
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.spans import SpanTuple
from repro.engine.deadline import Deadline, as_deadline
from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.obs.flight import FlightRecorder, QueryRecord
from repro.obs.log import event_log
from repro.obs.metrics import Counter, Metrics

#: Queue sentinel telling the dispatcher thread to exit.
_SHUTDOWN = object()

#: Process-wide query-id sequence (ids stay unique across services).
_QUERY_IDS = itertools.count(1)


def _new_query_id() -> str:
    """A fresh query id: short, sortable, unique within this process
    and distinguishable across processes (the pid is embedded)."""
    return f"q-{os.getpid():x}-{next(_QUERY_IDS):06d}"


@dataclass
class ServiceResult:
    """What one served query produced.

    ``by_document`` maps ``doc_id -> set of span tuples`` (the
    engine's result shape); the timing fields make latency visible per
    query — ``queue_seconds`` is time spent waiting for the dispatcher
    (admission to start of execution), ``run_seconds`` the engine pass
    itself.
    """

    by_document: Dict[str, Set[SpanTuple]]
    tenant: str
    queue_seconds: float
    run_seconds: float
    program: str = "query"
    #: The flight-recorder record of this query (id, per-phase
    #: durations, counters, slow flag) when the service carries a
    #: :class:`repro.obs.flight.FlightRecorder`; ``None`` otherwise.
    record: Optional[QueryRecord] = None

    @property
    def query_id(self) -> Optional[str]:
        return self.record.query_id if self.record is not None else None

    @property
    def total_tuples(self) -> int:
        return sum(len(tuples) for tuples in self.by_document.values())

    def __getitem__(self, doc_id: str) -> Set[SpanTuple]:
        return self.by_document[doc_id]

    def __len__(self) -> int:
        return len(self.by_document)


@dataclass
class _Job:
    """One admitted query, queued for the dispatcher thread."""

    corpus: object
    program: object
    tenant: str
    deadline: Deadline
    future: "Future[ServiceResult]"
    query_id: str = field(default_factory=_new_query_id)
    enqueued: float = field(default_factory=time.monotonic)


@dataclass
class _Control:
    """An engine-management operation, queued like a query.

    Control work (index reopen, compaction pickup) must run on the
    dispatcher thread — it touches the engine, and the dispatcher owns
    the engine — so it rides the same admission queue as queries and
    executes between them, never concurrently with one.
    """

    operation: object  # callable(engine) -> result
    future: "Future[object]"


class ExtractionService:
    """A long-lived, concurrent front end over one extraction engine.

    ``engine`` is an :class:`repro.engine.ExtractionEngine` the service
    takes ownership of (it is driven exclusively by the service's
    dispatcher thread and closed by :meth:`close`); build one
    explicitly, or — the fluent route — let
    :meth:`repro.query.Query.serve` derive service and engine from a
    configured query in one call.

    ``program`` optionally fixes a default extraction program
    (:class:`repro.engine.Program` or anything
    :meth:`repro.engine.Program.from_query` accepts): submissions may
    then omit theirs.  ``max_queue`` bounds the admission queue
    (``submit`` raises :class:`repro.errors.ServiceOverloadedError`
    when it is full); ``default_deadline`` (seconds, or a
    :class:`repro.engine.deadline.Deadline` factory value) applies to
    queries that do not carry their own.

    Queries execute **serially** on the dispatcher thread — chunk-level
    parallelism comes from the engine's worker pool, and serial
    dispatch is precisely what makes concurrent identical queries
    share one certification and one chunk-cache population instead of
    racing.  The service is usable as a context manager; it starts
    lazily on first submission.
    """

    def __init__(
        self,
        engine,
        program: object = None,
        max_queue: int = 64,
        default_deadline: Optional[float] = None,
        name: str = "service",
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self._engine = engine
        self._default_program = program
        self._default_deadline = default_deadline
        self.name = name
        self.max_queue = max_queue
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queue)
        self._dispatcher: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._closed = False
        metrics = engine.metrics
        self._queries = metrics.counter
        self._queue_depth = metrics.gauge("service.queue_depth")
        #: The flight recorder retaining completed-query records
        #: (``None`` = recording off).  A recorder that wants span
        #: trees turns on engine-wide tracing; the dispatcher then
        #: *drains* the tracer per query, so each record gets exactly
        #: its own spans and the span buffer never grows unboundedly
        #: on a long-lived service.
        self.flight = flight
        if (flight is not None and flight.capture_spans
                and not engine.tracer.enabled):
            engine.enable_tracing()
        if engine.tracer.enabled:
            event_log().bind_tracer(engine.tracer)
        #: The query currently executing on the dispatcher thread, as
        #: an immutable summary dict (atomic assignment: readable from
        #: any thread without a lock), or ``None`` when idle.
        self._running: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ExtractionService":
        """Start the dispatcher thread (idempotent; implicit on first
        submission)."""
        with self._lifecycle:
            if self._closed:
                raise ServiceClosedError()
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-{self.name}-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
                event_log().emit("service.start", service=self.name,
                                 max_queue=self.max_queue)
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting queries and shut the service down.

        With ``drain=True`` (default) queries already admitted run to
        completion first; with ``drain=False`` pending queries fail
        with :class:`repro.errors.ServiceClosedError`.  The owned
        engine's pool and shm segments are released; caches survive on
        the engine object.  Idempotent.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
        if not drain:
            # Fail whatever is still queued; the dispatcher drains the
            # sentinel afterwards.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(job, (_Job, _Control)):
                    job.future.set_exception(ServiceClosedError())
        if dispatcher is not None:
            self._queue.put(_SHUTDOWN)
            dispatcher.join()
        self._engine.close()
        event_log().emit("service.close", service=self.name,
                         drained=drain)

    def __enter__(self) -> "ExtractionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------

    def submit(
        self,
        corpus,
        program: object = None,
        tenant: str = "default",
        deadline: object = None,
        query_id: Optional[str] = None,
    ) -> "Future[ServiceResult]":
        """Admit one query; returns a future resolving to a
        :class:`ServiceResult`.

        ``corpus`` is anything the engine accepts (a
        :class:`repro.engine.Corpus`, a mapping ``id -> text``, or a
        sequence of texts); ``program`` defaults to the service's
        default program.  ``deadline`` (seconds or a
        :class:`Deadline`) starts counting *now* — queue wait spends
        budget too.  Raises :class:`ServiceOverloadedError` when the
        admission queue is full and :class:`ServiceClosedError` after
        :meth:`close`; both are synchronous, before anything queues.

        ``query_id`` names the query in the flight recorder and event
        log (generated when omitted); the HTTP layer passes its
        per-request id here, so ``X-Repro-Request-Id`` and
        ``GET /debug/queries/<id>`` refer to the same record.
        """
        if query_id is None:
            query_id = _new_query_id()
        if self._closed:
            self._count("service.rejections", tenant,
                        reason="closed").inc()
            event_log().emit("service.reject", level="warning",
                             tenant=tenant, query_id=query_id,
                             reason="closed")
            raise ServiceClosedError()
        program = program if program is not None else self._default_program
        if program is None:
            raise ValueError(
                "no program: pass one to submit() or configure a "
                "default on the service"
            )
        if deadline is None:
            deadline = self._default_deadline
        job = _Job(
            corpus=corpus,
            program=program,
            tenant=tenant,
            deadline=as_deadline(deadline),
            future=Future(),
            query_id=query_id,
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._count("service.rejections", tenant,
                        reason="overloaded").inc()
            event_log().emit("service.reject", level="warning",
                             tenant=tenant, query_id=query_id,
                             reason="overloaded",
                             max_queue=self.max_queue)
            raise ServiceOverloadedError(self.max_queue) from None
        self._queue_depth.set(self._queue.qsize())
        event_log().emit("service.admit", tenant=tenant,
                         query_id=query_id,
                         program=getattr(job.program, "name", "query"),
                         queue_depth=self._queue.qsize())
        if self._dispatcher is None:
            self.start()
        return job.future

    def extract(self, corpus, program: object = None,
                tenant: str = "default",
                deadline: object = None,
                query_id: Optional[str] = None) -> ServiceResult:
        """Submit and block for the result (the synchronous shortcut)."""
        return self.submit(corpus, program, tenant, deadline,
                           query_id=query_id).result()

    async def extract_async(self, corpus, program: object = None,
                            tenant: str = "default",
                            deadline: object = None,
                            query_id: Optional[str] = None
                            ) -> ServiceResult:
        """The asyncio front end: awaitable submission.

        Admission control still applies synchronously (an overloaded
        service raises before anything is awaited); the returned
        coroutine resolves when the dispatcher finishes the query.
        """
        import asyncio

        future = self.submit(corpus, program, tenant, deadline,
                             query_id=query_id)
        return await asyncio.wrap_future(future)

    def reopen_index(self, path: Optional[str] = None) -> "Future[object]":
        """Pick up index changes without restarting the service.

        With ``path``, opens the index there (JSON file or binary
        segment directory, via :func:`repro.index.store.open_index`)
        and attaches it to the resident engine, closing the previously
        attached mmap-backed index if it had one.  With no ``path``,
        refreshes the currently attached
        :class:`repro.index.store.SegmentedIndex` in place — after an
        out-of-process :meth:`~repro.index.store.SegmentedIndex.
        compact` or delta flush, the engine starts serving the new
        generation from the next query (prefilter masks recompute
        automatically off the index version).

        Runs on the dispatcher thread between queries — never
        concurrently with one — so in-flight queries finish against
        the index they started with.  Returns a future resolving to a
        report dict; raises :class:`ServiceOverloadedError` /
        :class:`ServiceClosedError` like :meth:`submit`.
        """
        if self._closed:
            raise ServiceClosedError()

        def _reopen(engine) -> Dict[str, object]:
            if path is not None:
                from repro.index.store import open_index

                previous = engine.index
                engine.attach_index(open_index(path))
                if previous is not None and hasattr(previous, "close"):
                    previous.close()
                report: Dict[str, object] = {
                    "action": "attached", "path": path,
                    "format": getattr(engine.index, "format", "unknown"),
                }
            else:
                index = engine.index
                if index is None or not hasattr(index, "refresh"):
                    report = {"action": "noop",
                              "reason": "no refreshable index attached"}
                else:
                    changed = index.refresh()
                    report = {
                        "action": "refreshed", "changed": changed,
                        "generation": getattr(index, "generation", None),
                        "segments": getattr(index, "segment_count",
                                            None),
                    }
            event_log().emit("service.reopen_index", service=self.name,
                             **report)
            return report

        job = _Control(operation=_reopen, future=Future())
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise ServiceOverloadedError(self.max_queue) from None
        if self._dispatcher is None:
            self.start()
        return job.future

    # ------------------------------------------------------------------
    # Dispatch (the engine-owning thread)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                break
            self._queue_depth.set(self._queue.qsize())
            if isinstance(job, _Control):
                self._execute_control(job)
            else:
                self._execute(job)

    def _execute_control(self, job: _Control) -> None:
        if job.future.cancelled():
            return
        job.future.set_running_or_notify_cancel()
        try:
            job.future.set_result(job.operation(self._engine))
        except BaseException as error:  # report, don't kill dispatch
            job.future.set_exception(error)

    def _execute(self, job: _Job) -> None:
        if job.future.cancelled():
            return
        job.future.set_running_or_notify_cancel()
        tenant = job.tenant
        queue_wait = time.monotonic() - job.enqueued
        self._histogram("service.queue_wait_seconds", tenant) \
            .observe(queue_wait)
        program_name = getattr(job.program, "name", "query")
        self._running = {
            "query_id": job.query_id,
            "tenant": tenant,
            "program": program_name,
            "started": time.time(),
            "deadline_remaining": job.deadline.remaining(),
        }
        tracer = self._engine.tracer
        if tracer.enabled:
            # Whatever is in the buffer predates this query (startup
            # spans, spans of a run driven outside the service);
            # dropping it here makes the post-run drain exactly this
            # query's spans — and doubles as the retention policy that
            # keeps a long-lived server's span buffer bounded.
            tracer.drain()
        stats_before = self._engine.stats()
        started = time.perf_counter()
        error: Optional[BaseException] = None
        result = None
        try:
            # Reject a dead-on-arrival budget before any engine work;
            # mid-run expiry surfaces from the engine's own batch-
            # boundary checks.
            job.deadline.check()
            result = self._engine.run(job.corpus, job.program,
                                      deadline=job.deadline)
        except BaseException as caught:
            error = caught
        run_seconds = time.perf_counter() - started
        self._count("service.queries", tenant).inc()
        self._histogram("service.latency_seconds", tenant) \
            .observe(job.deadline.elapsed())
        spans = tracer.drain() if tracer.enabled else []
        self._running = None

        if error is not None:
            from repro.errors import DeadlineExceededError

            missed = isinstance(error, DeadlineExceededError)
            if missed:
                self._count("service.deadline_misses", tenant).inc()
            self._count("service.errors", tenant,
                        kind=type(error).__name__).inc()
            record = self._record(job, tenant, program_name, queue_wait,
                                  run_seconds, stats_before, spans,
                                  outcome=type(error).__name__,
                                  detail=str(error))
            event_log().emit(
                "service.deadline_miss" if missed else "service.error",
                level="warning" if missed else "error",
                tenant=tenant, query_id=job.query_id,
                program=program_name, error=type(error).__name__,
                detail=str(error), queue_seconds=queue_wait,
                run_seconds=run_seconds,
                slow=record.slow if record is not None else False,
            )
            job.future.set_exception(error)
            return

        self._count("service.tuples", tenant).inc(result.total_tuples())
        record = self._record(job, tenant, program_name, queue_wait,
                              run_seconds, stats_before, spans,
                              outcome="ok", result=result)
        event_log().emit(
            "service.complete", tenant=tenant, query_id=job.query_id,
            program=program_name, documents=len(result),
            tuples=result.total_tuples(), queue_seconds=queue_wait,
            run_seconds=run_seconds,
            slow=record.slow if record is not None else False,
        )
        job.future.set_result(ServiceResult(
            by_document=result.by_document,
            tenant=tenant,
            queue_seconds=queue_wait,
            run_seconds=run_seconds,
            program=program_name,
            record=record,
        ))

    def _record(
        self, job: _Job, tenant: str, program_name: str,
        queue_wait: float, run_seconds: float, stats_before,
        spans, outcome: str, detail: Optional[str] = None,
        result=None,
    ) -> Optional[QueryRecord]:
        """Build and file this query's flight record (``None`` when
        recording is off).  Runs on the dispatcher thread, after the
        engine pass; the explain payload is resolved lazily and only
        for queries the slow log keeps."""
        if self.flight is None:
            return None
        delta = self._engine.stats().since(stats_before)
        certified = result.plan if result is not None else None
        if certified is None:
            try:
                # Cached: the run just certified this program (or died
                # before certifying, in which case this fills the gap).
                certified = self._engine.certify(job.program)
            except Exception:
                certified = None
        explain = None
        kernel_tier = None
        if certified is not None:
            plan_explain = certified.explain
            prefilter_report = self._engine.prefilter_report
            kernel_tier = plan_explain().get("kernel_tier")

            def explain() -> Dict[str, object]:
                return {"plan": plan_explain(),
                        "index": prefilter_report(certified)}

        record = QueryRecord(
            query_id=job.query_id,
            program=program_name,
            fingerprint=self._fingerprint(job.program),
            tenant=tenant,
            outcome=outcome,
            error=detail,
            started=time.time() - queue_wait - run_seconds,
            queue_seconds=queue_wait,
            run_seconds=run_seconds,
            documents=(len(result) if result is not None
                       else delta.documents),
            tuples=(result.total_tuples() if result is not None
                    else delta.tuples_emitted),
            deadline_budget=getattr(job.deadline, "_budget", None),
            kernel_tier=kernel_tier,
            counters=delta.snapshot(),
        )
        return self.flight.record(record, span_records=spans,
                                  explain=explain)

    @staticmethod
    def _fingerprint(program) -> str:
        fingerprint = getattr(program, "fingerprint", None)
        if callable(fingerprint):
            try:
                return str(fingerprint())
            except Exception:
                pass
        return f"id-{id(program):x}"

    def _count(self, name: str, tenant: str, **labels):
        return self._engine.metrics.counter(name, tenant=tenant, **labels)

    def _histogram(self, name: str, tenant: str):
        return self._engine.metrics.histogram(name, tenant=tenant)

    # ------------------------------------------------------------------
    # Introspection (any thread; read-only views)
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        """The engine's metrics registry (counters, histograms —
        including every ``service.*`` tenant-labeled instrument)."""
        return self._engine.metrics

    def engine_stats(self):
        """The owned engine's cumulative
        :class:`repro.engine.stats.EngineStats` (certifications, cache
        hit rates, chunks evaluated)."""
        return self._engine.stats()

    def tenant_stats(self, tenant: str = "default") -> Dict[str, object]:
        """One tenant's serving counters as a flat dict.

        ``queue_wait_p50/p95/p99`` and ``latency_p50/p95/p99`` are
        histogram-bucket upper bounds (see
        :meth:`repro.obs.metrics.Histogram.quantile`).
        """
        value = self._engine.metrics.value
        wait = self._histogram("service.queue_wait_seconds", tenant)
        latency = self._histogram("service.latency_seconds", tenant)
        return {
            "tenant": tenant,
            "queries": value("service.queries", tenant=tenant),
            "tuples": value("service.tuples", tenant=tenant),
            "deadline_misses": value("service.deadline_misses",
                                     tenant=tenant),
            "rejections": value("service.rejections", tenant=tenant,
                                reason="overloaded"),
            "queue_wait_p50": wait.quantile(0.5),
            "queue_wait_p95": wait.quantile(0.95),
            "queue_wait_p99": wait.quantile(0.99),
            "latency_p50": latency.quantile(0.5),
            "latency_p95": latency.quantile(0.95),
            "latency_p99": latency.quantile(0.99),
        }

    def current_query_id(self) -> Optional[str]:
        """The id of the query executing right now (``None`` = idle).

        Readable from any thread; this is what the sampling profiler's
        ``current_query`` hook uses to attribute samples to flight
        records.
        """
        running = self._running
        return running["query_id"] if running is not None else None

    def flight_records(self, limit: Optional[int] = None
                       ) -> List[Dict[str, object]]:
        """Summaries of the retained query records, most recent last
        (the ``GET /debug/queries`` payload; ``[]`` when recording is
        off)."""
        if self.flight is None:
            return []
        return [record.to_dict() for record in self.flight.recent(limit)]

    def flight_record(self, query_id: str
                      ) -> Optional[Dict[str, object]]:
        """One query's full record — span tree and explain payload
        included when the slow log kept them (``GET
        /debug/queries/<id>``)."""
        if self.flight is None:
            return None
        record = self.flight.get(query_id)
        return record.to_dict(full=True) if record is not None else None

    def slow_queries(self, limit: Optional[int] = None
                     ) -> List[Dict[str, object]]:
        """Full records of the slow-query log, most recent last
        (``GET /debug/slow``)."""
        if self.flight is None:
            return []
        return [record.to_dict(full=True)
                for record in self.flight.slow(limit)]

    def inflight(self) -> Dict[str, object]:
        """The live dispatcher view (``GET /debug/inflight``): queue
        depth, the running query, per-tenant admission counters, and
        the flight recorder's retention state."""
        tenants: Dict[str, Dict[str, float]] = {}
        rollup = {"service.queries": "queries",
                  "service.rejections": "rejections",
                  "service.deadline_misses": "deadline_misses",
                  "service.errors": "errors"}
        for instrument in self._engine.metrics.instruments():
            field = rollup.get(getattr(instrument, "name", ""))
            if field is None or not isinstance(instrument, Counter):
                continue
            tenant = instrument.labels.get("tenant")
            if tenant is None:
                continue
            bucket = tenants.setdefault(
                str(tenant), {"queries": 0, "rejections": 0,
                              "deadline_misses": 0, "errors": 0})
            bucket[field] += instrument.value
        return {
            "service": self.name,
            "closed": self._closed,
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "running": self._running,
            "tenants": tenants,
            "flight": (self.flight.describe()
                       if self.flight is not None else None),
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the service + engine + kernel
        registries (what ``GET /metrics`` serves)."""
        from repro.obs.metrics import kernel_metrics

        combined = Metrics().merge(self._engine.metrics) \
                            .merge(kernel_metrics())
        return combined.to_prometheus()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "running" if self._dispatcher is not None else "idle")
        return (f"ExtractionService({self.name!r}, {state}, "
                f"queue {self._queue.qsize()}/{self.max_queue})")
