"""Counters and derived metrics surfaced through the engine API.

The Introduction's performance claims are about *amortization*: pay
for certification once, schedule fine-grained chunks, never extract
the same chunk twice.  :class:`EngineStats` makes each of those
effects observable — benchmarks and operators read certification
counts, cache hit rates and chunk throughput from here instead of
instrumenting the engine by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EngineStats:
    """A snapshot of one engine's counters.

    Produced by :meth:`repro.engine.ExtractionEngine.stats`; all
    counters are cumulative over the engine's lifetime (i.e. across
    ``run`` calls), which is what makes plan-cache reuse visible.

    Since the observability layer (:mod:`repro.obs`) the engine keeps
    its counters in a :class:`repro.obs.metrics.Metrics` registry and
    this class is a *view* over it (:meth:`from_metrics`) — the flat
    stats surface and the exported metrics read the same storage and
    can never disagree.
    """

    #: Documents processed across all runs.
    documents: int = 0
    #: Chunk instances encountered (every chunk of every document).
    chunks_total: int = 0
    #: Chunk texts actually evaluated by a spanner.
    chunks_evaluated: int = 0
    #: Chunk instances skipped by the index prefilter (provably empty
    #: results; see :mod:`repro.index`) — never evaluated, never cached.
    chunks_pruned: int = 0
    #: Chunk instances served from the chunk cache.
    chunk_cache_hits: int = 0
    #: Chunk cache misses (equals chunks evaluated when unbounded).
    chunk_cache_misses: int = 0
    #: Entries currently retained in the chunk cache.
    chunk_cache_size: int = 0
    #: Chunk-cache evictions (bounded caches only).
    chunk_cache_evictions: int = 0
    #: Times a certified plan was replayed from the plan cache.
    plan_cache_hits: int = 0
    #: Times the decision procedures actually ran (plan-cache misses).
    certifications: int = 0
    #: Total seconds spent inside the decision procedures.
    certification_seconds: float = 0.0
    #: Compiled kernel artifacts produced (lowerings); stays flat when
    #: certificates and program runners are replayed from the caches.
    artifacts_compiled: int = 0
    #: Total seconds spent splitting, scheduling and evaluating.
    extraction_seconds: float = 0.0
    #: Span tuples produced across all runs.
    tuples_emitted: int = 0
    #: Extra key/value pairs (e.g. per-shard breakdowns).
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_metrics(cls, metrics, chunk_cache_size: int = 0,
                     extra: Dict[str, float] = None) -> "EngineStats":
        """The stats view of an engine's metrics registry.

        Reads the ``engine.*`` instruments the engine maintains
        (:class:`repro.engine.ExtractionEngine`); ``chunk_cache_size``
        is a live gauge the caller reads off the (possibly shared)
        cache itself.
        """
        value = metrics.value
        return cls(
            documents=value("engine.documents"),
            chunks_total=value("engine.chunks_total"),
            chunks_evaluated=value("engine.chunk_cache.misses"),
            chunks_pruned=value("engine.chunks_pruned"),
            chunk_cache_hits=value("engine.chunk_cache.hits"),
            chunk_cache_misses=value("engine.chunk_cache.misses"),
            chunk_cache_size=chunk_cache_size,
            chunk_cache_evictions=value("engine.chunk_cache.evictions"),
            plan_cache_hits=value("engine.plan_cache.hits"),
            certifications=value("engine.certifications"),
            certification_seconds=value("engine.certification_seconds",
                                        0.0),
            artifacts_compiled=value("engine.artifacts_compiled"),
            extraction_seconds=value("engine.extraction_seconds", 0.0),
            tuples_emitted=value("engine.tuples_emitted"),
            extra=dict(extra or {}),
        )

    @property
    def chunk_hit_rate(self) -> float:
        """Fraction of chunk instances served without evaluation."""
        total = self.chunk_cache_hits + self.chunk_cache_misses
        return self.chunk_cache_hits / total if total else 0.0

    @property
    def chunks_per_second(self) -> float:
        """Chunk instances consumed per second of extraction time."""
        if self.extraction_seconds <= 0:
            return 0.0
        return self.chunks_total / self.extraction_seconds

    @property
    def prune_rate(self) -> float:
        """Fraction of chunk instances skipped by the index prefilter."""
        return self.chunks_pruned / self.chunks_total \
            if self.chunks_total else 0.0

    @property
    def dedup_factor(self) -> float:
        """How many chunk instances each evaluation served on average."""
        if self.chunks_evaluated == 0:
            return 1.0
        return self.chunks_total / self.chunks_evaluated

    def snapshot(self) -> Dict[str, float]:
        """A flat dict (counters plus derived metrics) for reporting."""
        return {
            "documents": self.documents,
            "chunks_total": self.chunks_total,
            "chunks_evaluated": self.chunks_evaluated,
            "chunks_pruned": self.chunks_pruned,
            "prune_rate": self.prune_rate,
            "chunk_cache_hits": self.chunk_cache_hits,
            "chunk_cache_misses": self.chunk_cache_misses,
            "chunk_cache_size": self.chunk_cache_size,
            "chunk_cache_evictions": self.chunk_cache_evictions,
            "chunk_hit_rate": self.chunk_hit_rate,
            "dedup_factor": self.dedup_factor,
            "plan_cache_hits": self.plan_cache_hits,
            "certifications": self.certifications,
            "certification_seconds": self.certification_seconds,
            "artifacts_compiled": self.artifacts_compiled,
            "extraction_seconds": self.extraction_seconds,
            "chunks_per_second": self.chunks_per_second,
            "tuples_emitted": self.tuples_emitted,
            **self.extra,
        }

    def since(self, before: "EngineStats") -> "EngineStats":
        """The delta between two cumulative snapshots of one engine.

        Counters subtract; gauges (cache size) keep the later value.
        ``extra`` entries subtract where both snapshots hold a number
        and carry over otherwise (labels, per-shard notes).  This is
        what one ``run`` contributed to the engine's lifetime totals.
        """
        extra: Dict[str, float] = {}
        for key, value in self.extra.items():
            previous = before.extra.get(key)
            if (isinstance(value, (int, float))
                    and isinstance(previous, (int, float))):
                extra[key] = value - previous
            else:
                extra[key] = value
        return EngineStats(
            documents=self.documents - before.documents,
            chunks_total=self.chunks_total - before.chunks_total,
            chunks_evaluated=self.chunks_evaluated - before.chunks_evaluated,
            chunks_pruned=self.chunks_pruned - before.chunks_pruned,
            chunk_cache_hits=self.chunk_cache_hits - before.chunk_cache_hits,
            chunk_cache_misses=(self.chunk_cache_misses
                                - before.chunk_cache_misses),
            chunk_cache_size=self.chunk_cache_size,
            chunk_cache_evictions=(self.chunk_cache_evictions
                                   - before.chunk_cache_evictions),
            plan_cache_hits=self.plan_cache_hits - before.plan_cache_hits,
            certifications=self.certifications - before.certifications,
            certification_seconds=(self.certification_seconds
                                   - before.certification_seconds),
            artifacts_compiled=(self.artifacts_compiled
                                - before.artifacts_compiled),
            extraction_seconds=(self.extraction_seconds
                                - before.extraction_seconds),
            tuples_emitted=self.tuples_emitted - before.tuples_emitted,
            extra=extra,
        )

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Combine counters from another engine (sharded runs).

        ``extra`` keys present on both sides sum when both values are
        numeric (they are counters too); non-numeric collisions keep
        ``other``'s value (the later snapshot wins).
        """
        merged = EngineStats(
            documents=self.documents + other.documents,
            chunks_total=self.chunks_total + other.chunks_total,
            chunks_evaluated=self.chunks_evaluated + other.chunks_evaluated,
            chunks_pruned=self.chunks_pruned + other.chunks_pruned,
            chunk_cache_hits=self.chunk_cache_hits + other.chunk_cache_hits,
            chunk_cache_misses=(self.chunk_cache_misses
                                + other.chunk_cache_misses),
            # A gauge, not a counter: results of one engine share one
            # cache, so summing would double-count its contents.
            chunk_cache_size=max(self.chunk_cache_size,
                                 other.chunk_cache_size),
            chunk_cache_evictions=(self.chunk_cache_evictions
                                   + other.chunk_cache_evictions),
            plan_cache_hits=self.plan_cache_hits + other.plan_cache_hits,
            certifications=self.certifications + other.certifications,
            certification_seconds=(self.certification_seconds
                                   + other.certification_seconds),
            artifacts_compiled=(self.artifacts_compiled
                                + other.artifacts_compiled),
            extraction_seconds=(self.extraction_seconds
                                + other.extraction_seconds),
            tuples_emitted=self.tuples_emitted + other.tuples_emitted,
        )
        merged.extra.update(self.extra)
        for key, value in other.extra.items():
            mine = merged.extra.get(key)
            if (isinstance(value, (int, float))
                    and isinstance(mine, (int, float))):
                merged.extra[key] = mine + value
            else:
                merged.extra[key] = value
        return merged
