"""Corpus-scale extraction engine (the system the Introduction envisions).

The paper's punchline is operational: once split-correctness
``P = P_S o S`` is certified, extraction over a corpus parallelizes
over the chunks of ``S``.  The :mod:`repro.runtime` layer provides the
per-document mechanics; this package scales them to corpora by
amortizing everything that does not depend on the individual document:

* :mod:`repro.engine.corpus` — document store with deterministic
  sharding and batch iteration;
* :mod:`repro.engine.cache` — plan cache (decision procedures run once
  per program) and chunk cache (each distinct chunk text extracted
  once per program, corpus-wide);
* :mod:`repro.engine.scheduler` — chunk batches fanned over a process
  pool, shifted span-tuples merged back per document;
* :mod:`repro.engine.stats` — hit rates, certification counts and
  throughput surfaced through the engine API;
* :mod:`repro.engine.engine` — the :class:`ExtractionEngine` façade.

Quickstart::

    from repro.engine import Corpus, ExtractionEngine

    engine = ExtractionEngine(splitters, workers=4)
    result = engine.run(Corpus.from_texts(documents), spanner)
    print(engine.stats().snapshot())

For the documented fluent surface on top of this engine — named
splitters, chainable configuration, lazy streaming results — see
:mod:`repro.query` (``Q(spanner).split_by("tokens").over(corpus)``
executes here via :meth:`ExtractionEngine.run_iter`).
"""

from repro.engine.cache import (
    ChunkCache,
    PlanCache,
    fingerprint,
    registry_fingerprint,
)
from repro.engine.corpus import Corpus, Document, shard_of
from repro.engine.deadline import Deadline, as_deadline
from repro.engine.engine import EngineResult, ExtractionEngine, Program
from repro.engine.scheduler import ScheduledBatch, Scheduler
from repro.engine.stats import EngineStats

__all__ = [
    "ChunkCache",
    "Corpus",
    "Deadline",
    "Document",
    "EngineResult",
    "EngineStats",
    "ExtractionEngine",
    "PlanCache",
    "Program",
    "ScheduledBatch",
    "Scheduler",
    "as_deadline",
    "fingerprint",
    "registry_fingerprint",
    "shard_of",
]
