"""Document store with deterministic sharding and batch iteration.

A :class:`Corpus` is the unit of work the extraction engine operates
on: an ordered collection of identified documents.  Sharding assigns
every document to one of ``n`` shards by a *content-independent,
machine-independent* hash of its identifier (SHA-1, not Python's
randomized ``hash``), so that a corpus distributed over ``n`` engine
instances — the paper's Spark cluster picture — lands the same way on
every run and every node.  Batch iteration feeds the scheduler fixed
numbers of documents at a time, bounding peak memory regardless of
corpus size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class Document:
    """One identified document of a corpus."""

    doc_id: str
    text: str

    def __len__(self) -> int:
        return len(self.text)


def shard_of(doc_id: str, num_shards: int) -> int:
    """The shard index of ``doc_id`` among ``num_shards`` shards.

    Deterministic across processes, machines and insertion orders:
    depends only on the identifier bytes.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    digest = hashlib.sha1(doc_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class Corpus:
    """An ordered, identified document collection.

    Iteration order is insertion order; identifiers are unique.
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: Dict[str, Document] = {}
        for document in documents:
            self.add(document)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_texts(
        cls, texts: Sequence[str], prefix: str = "doc"
    ) -> "Corpus":
        """Identify plain texts positionally: ``doc-0000``, ..."""
        return cls(
            Document(f"{prefix}-{index:04d}", text)
            for index, text in enumerate(texts)
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "Corpus":
        return cls(Document(doc_id, text)
                   for doc_id, text in mapping.items())

    def add(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate document id {document.doc_id!r}")
        self._documents[document.doc_id] = document

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __getitem__(self, doc_id: str) -> Document:
        return self._documents[doc_id]

    def doc_ids(self) -> List[str]:
        return list(self._documents)

    def total_characters(self) -> int:
        return sum(len(doc) for doc in self)

    # ------------------------------------------------------------------
    # Sharding and batching
    # ------------------------------------------------------------------

    def shard(self, num_shards: int, index: int) -> "Corpus":
        """The sub-corpus of documents assigned to shard ``index``.

        Assignment depends only on document identifiers, so the same
        document lands in the same shard on every machine and every
        run, and the shards partition the corpus.
        """
        if not 0 <= index < num_shards:
            raise ValueError(
                f"shard index {index} out of range for {num_shards} shards"
            )
        return Corpus(
            doc for doc in self if shard_of(doc.doc_id, num_shards) == index
        )

    def shards(self, num_shards: int) -> List["Corpus"]:
        """All ``num_shards`` shards (some possibly empty)."""
        partition: List[Corpus] = [Corpus() for _ in range(num_shards)]
        for doc in self:
            partition[shard_of(doc.doc_id, num_shards)].add(doc)
        return partition

    def batches(self, batch_size: int) -> Iterator[List[Document]]:
        """Iterate documents in insertion-ordered batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        batch: List[Document] = []
        for doc in self:
            batch.append(doc)
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def __repr__(self) -> str:
        return (f"Corpus({len(self)} documents, "
                f"{self.total_characters()} characters)")
