"""Work-queue scheduling of chunk batches over a process pool.

The scheduler receives per-document chunk lists, consults the chunk
cache, fans the *missing* texts out over a worker pool in configurable
batches, and merges the shifted span-tuples back per document — the
engine-side realization of ``P = P_S o S``: once certified, chunks are
context-free units of work that can be executed anywhere, in any
order, and shared between documents.

``workers <= 1`` degrades to in-process sequential evaluation (no pool
overhead), which is also the configuration benchmarks use to isolate
caching effects from parallelism.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.spans import Span, SpanTuple
from repro.runtime.executor import (
    SpannerLike,
    _init_worker,
    evaluate_texts_parallel,
)

from repro.engine.cache import ChunkCache

#: One document's worth of chunk work: ``(doc_id, [(span, text), ...])``.
DocumentChunks = Tuple[str, Sequence[Tuple[Span, str]]]


@dataclass
class ScheduledBatch:
    """What one scheduler pass did (returned for stats/inspection)."""

    documents: int
    chunk_instances: int
    unique_missing: int


class Scheduler:
    """Fan unique chunk texts over a pool; merge results per document.

    ``workers`` is the process-pool size (``0``/``1`` = run in
    process).  ``batch_size`` is how many *documents* the engine feeds
    per scheduler pass — it bounds peak memory and sets the in-pass
    dedup granularity; the pool task chunksize is derived per pass in
    :meth:`_evaluate_missing` (several waves per worker, the paper's
    scheduling-granularity effect for skewed chunk costs).
    """

    def __init__(self, workers: int = 0, batch_size: int = 32) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.workers = workers
        self.batch_size = batch_size
        self.last_batch: ScheduledBatch = ScheduledBatch(0, 0, 0)
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_runner: Optional[SpannerLike] = None

    # ------------------------------------------------------------------

    def _pool_for(self, runner: SpannerLike) -> "multiprocessing.pool.Pool":
        """A persistent pool initialized with ``runner``.

        Reused across document batches (and runs) as long as the
        runner object is the same, so one corpus run pays pool startup
        and spanner shipping once, not once per batch.
        """
        if self._pool is not None and self._pool_runner is runner:
            return self._pool
        self.close()
        self._pool = multiprocessing.Pool(
            processes=self.workers, initializer=_init_worker,
            initargs=(runner,),
        )
        self._pool_runner = runner
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_runner = None

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _evaluate_missing(
        self,
        runner: SpannerLike,
        texts: Sequence[str],
    ) -> List[Set[SpanTuple]]:
        if self.workers > 1 and texts:
            # Aim for several waves per worker (load balance for skewed
            # chunk costs) without one-text-per-IPC overhead.
            chunksize = max(1, len(texts) // (self.workers * 4))
            return evaluate_texts_parallel(
                runner, texts, chunksize=chunksize,
                pool=self._pool_for(runner),
            )
        return [set(runner.evaluate(text)) for text in texts]

    def run(
        self,
        runner: SpannerLike,
        documents: Sequence[DocumentChunks],
        cache: ChunkCache,
        namespace: str,
    ) -> Dict[str, Set[SpanTuple]]:
        """Evaluate every document's chunks, deduplicated via ``cache``.

        Returns ``doc_id -> set of (shifted) span tuples``.  Each
        distinct chunk text missing from the cache is evaluated exactly
        once — even when it repeats within this batch — and stored for
        future batches and future runs.
        """
        # Pass 1: consult the cache; collect distinct missing texts in
        # first-seen order (deterministic scheduling).  A text repeated
        # within this batch counts as a hit from its second instance on:
        # those instances are served without evaluation.
        seen: Dict[str, object] = {}
        missing: List[str] = []
        chunk_instances = 0
        for _doc_id, chunks in documents:
            for _span, text in chunks:
                chunk_instances += 1
                if text in seen:
                    cache.record_batch_hit()
                    continue
                cached = cache.lookup(namespace, text)
                seen[text] = cached
                if cached is None:
                    missing.append(text)

        # Pass 2: fan the missing texts out (batched over the pool).
        for text, results in zip(
            missing, self._evaluate_missing(runner, missing)
        ):
            seen[text] = cache.store(namespace, text, results)

        # Pass 3: merge shifted tuples back per document.
        resolved: Dict[str, Set[SpanTuple]] = {}
        for doc_id, chunks in documents:
            merged: Set[SpanTuple] = resolved.setdefault(doc_id, set())
            for span, text in chunks:
                merged.update(t.shift(span) for t in seen[text])

        self.last_batch = ScheduledBatch(
            len(documents), chunk_instances, len(missing)
        )
        return resolved
