"""Work-queue scheduling of chunk batches over a process pool.

The scheduler receives per-document chunk lists, consults the chunk
cache, fans the *missing* texts out over a worker pool in configurable
batches, and merges the shifted span-tuples back per document — the
engine-side realization of ``P = P_S o S``: once certified, chunks are
context-free units of work that can be executed anywhere, in any
order, and shared between documents.

``workers <= 1`` degrades to in-process sequential evaluation (no pool
overhead), which is also the configuration benchmarks use to isolate
caching effects from parallelism.

The scheduler is also where worker-side observability comes home
(:mod:`repro.obs`): with a tracer enabled, pool workers run their
chunk evaluations inside worker-local spans, drain their span/metric
buffers after every task, and ship them back with the result; this
side adopts the spans under the current ``evaluate`` phase span,
merges the metric deltas (chunk-latency histograms, per-worker busy
time), and derives queue-wait from the gap between submission and
each worker span's wall-clock start.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.spans import Span, SpanTuple
from repro.obs.log import event_log
from repro.obs.metrics import Metrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.executor import (
    SpannerLike,
    _evaluate_text_traced,
    _evaluate_texts_batch,
    _evaluate_texts_batch_metered,
    _init_worker,
    _init_worker_premap,
    _init_worker_shm,
    _init_worker_shm_traced,
    _init_worker_traced,
    _worker_index_status,
    _worker_shm_status,
)

from repro.engine.deadline import NEVER, Deadline

from repro.engine.cache import ChunkCache

#: One document's worth of chunk work: ``(doc_id, [(span, text), ...])``.
DocumentChunks = Tuple[str, Sequence[Tuple[Span, str]]]


@dataclass
class ScheduledBatch:
    """What one scheduler pass did (returned for stats/inspection)."""

    documents: int
    chunk_instances: int
    unique_missing: int


class Scheduler:
    """Fan unique chunk texts over a pool; merge results per document.

    ``workers`` is the process-pool size (``0``/``1`` = run in
    process).  ``batch_size`` is how many *documents* the engine feeds
    per scheduler pass — it bounds peak memory and sets the in-pass
    dedup granularity; the pool task chunksize is derived per pass in
    :meth:`_evaluate_missing` (several waves per worker, the paper's
    scheduling-granularity effect for skewed chunk costs).

    ``tracer``/``metrics`` are the engine's observability handles: the
    scheduler brackets its passes in ``evaluate``/``merge`` spans and
    feeds the chunk-latency histogram; when the tracer is enabled,
    pool workers collect spans/metrics locally and this side merges
    them back (see the module docstring).

    The pool persists across batches and runs; swapping to a different
    runner (or tracing mode) *drains* the old pool gracefully —
    ``Pool.close()``/``join()``, so in-flight tasks finish — while
    :meth:`close` is the hard shutdown that ``terminate()``\\ s workers.

    ``use_shm`` controls artifact shipping to pool workers: by default
    (``None``) the runner is published once into a
    :mod:`multiprocessing.shared_memory` segment
    (:mod:`repro.automata.shm`) and workers attach by name in their
    initializer — no per-worker artifact pickling; ``False`` forces
    the legacy initializer-pickling path.  Published segments are
    unlinked in :meth:`close` (and by the shm registry's ``atexit``
    sweep if a crash skips it).
    """

    def __init__(self, workers: int = 0, batch_size: int = 32,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 use_shm: Optional[bool] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.workers = workers
        self.batch_size = batch_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: ``None`` = publish runners into shared memory whenever the
        #: platform supports it; ``False`` pins initializer pickling
        #: (``True`` insists, still falling back if publication fails).
        self.use_shm = use_shm
        self.last_batch: ScheduledBatch = ScheduledBatch(0, 0, 0)
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_runner: Optional[SpannerLike] = None
        self._pool_traced = False
        self._pool_premap: Optional[str] = None
        self._shm_artifact = None
        #: Segmented-index directory each pool worker maps in its
        #: initializer (see :meth:`premap_index`); ``None`` = none.
        self._premap_path: Optional[str] = None

    # ------------------------------------------------------------------

    def _pool_for(self, runner: SpannerLike) -> "multiprocessing.pool.Pool":
        """A persistent pool initialized with ``runner``.

        Reused across document batches (and runs) as long as the
        runner object — and the tracing mode, which selects the worker
        initializer — is the same, so one corpus run pays pool startup
        and spanner shipping once, not once per batch.

        Swapping to a different runner **drains** the old pool
        gracefully (``Pool.close()``/``join()``) rather than
        terminating it: tasks still in flight — e.g. batches abandoned
        by a deadline-cancelled query, or a concurrent stream's pending
        pass — run to completion before the new pool starts, so a swap
        can never kill work another consumer is waiting on.
        ``terminate()`` is reserved for hard shutdown (:meth:`close`).
        """
        traced = self.tracer.enabled
        if (self._pool is not None and self._pool_runner is runner
                and self._pool_traced == traced
                and self._pool_premap == self._premap_path):
            return self._pool
        self._retire_pool()
        segment = self._publish_shm(runner)
        if segment is not None:
            initializer = (_init_worker_shm_traced if traced
                           else _init_worker_shm)
            initargs: Tuple = (segment.name,)
        else:
            initializer = _init_worker_traced if traced else _init_worker
            initargs = (runner,)
        if self._premap_path is not None:
            # Wrap: base init, then each worker maps the segmented
            # index by path — the directory name is all that crosses
            # the process boundary; postings arrive via the page cache.
            initargs = (initializer, initargs[0], self._premap_path)
            initializer = _init_worker_premap
        self._pool = multiprocessing.Pool(
            processes=self.workers,
            initializer=initializer,
            initargs=initargs,
        )
        self._pool_runner = runner
        self._pool_traced = traced
        self._pool_premap = self._premap_path
        event_log().emit(
            "engine.pool.start", workers=self.workers, traced=traced,
            shm=segment.name if segment is not None else None,
            premap=self._premap_path,
        )
        return self._pool

    def _publish_shm(self, runner: SpannerLike):
        """Publish ``runner`` for worker attach, if shm is in play.

        Returns the published segment handle or ``None`` (shm off,
        unavailable, or publication failed — e.g. an unpicklable
        black-box runner); ``None`` sends the runner through the
        legacy initializer-pickling path instead.  The segment lives
        exactly as long as the pool: :meth:`close` unlinks it.
        """
        from repro.automata import shm

        if self.use_shm is False or not shm.available():
            return None
        try:
            self._shm_artifact = shm.registry().publish(runner)
        except Exception:
            self._shm_artifact = None
        return self._shm_artifact

    def shm_segment_name(self) -> Optional[str]:
        """Name of the live published segment, if any."""
        artifact = self._shm_artifact
        return artifact.name if artifact is not None else None

    def worker_shm_status(self) -> List[Tuple[int, int]]:
        """Probe live pool workers: ``(pid, attach count)`` samples.

        Several probe tasks per worker, so with high probability every
        worker reports; the lifecycle tests assert each sampled worker
        attached (count >= 1) instead of unpickling artifacts.
        """
        if self._pool is None:
            return []
        return self._pool.map(
            _worker_shm_status, range(max(1, self.workers) * 4)
        )

    def premap_index(self, path: Optional[str]) -> None:
        """Have pool workers map the segmented index at ``path`` in
        their initializer (``None`` switches it off).

        Takes effect at the next pool (re)build: the current pool, if
        its premap differs, is gracefully drained on the next
        :meth:`run` — exactly like a runner swap.
        """
        self._premap_path = path

    def worker_index_status(self) -> List[Tuple[int, int, int]]:
        """Probe live pool workers: ``(pid, index opens, segments
        mapped)`` from each worker's kernel-metrics registry — the
        evidence that postings were mapped worker-side, not pickled
        across (several probes per worker, as
        :meth:`worker_shm_status`)."""
        if self._pool is None:
            return []
        return self._pool.map(
            _worker_index_status, range(max(1, self.workers) * 4)
        )

    def _retire_pool(self) -> None:
        """Gracefully drain and discard the current pool (runner swap).

        ``Pool.close()`` stops new task submission, ``join()`` waits
        for everything already submitted — in-flight batches finish
        instead of being killed mid-chunk the way :meth:`close`'s
        ``terminate()`` would kill them.  The shm segment outlives the
        workers by construction (unlinked only after ``join()``), so a
        draining worker can never lose its mapped artifact.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_runner = None
            self._pool_traced = False
            self._pool_premap = None
            event_log().emit("engine.pool.retire", workers=self.workers)
        self._unlink_shm()

    def _unlink_shm(self) -> None:
        if self._shm_artifact is not None:
            from repro.automata import shm

            shm.registry().unlink(self._shm_artifact.name)
            self._shm_artifact = None

    def close(self) -> None:
        """Hard-stop the worker pool and unlink its shm segment
        (idempotent — the unlink happens even if the pool already died
        or was force-terminated).

        This is the *shutdown* path and uses ``Pool.terminate()``:
        in-flight tasks are killed.  Runner swaps mid-run go through
        the graceful :meth:`_retire_pool` drain instead.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_runner = None
            self._pool_traced = False
            self._pool_premap = None
            try:
                event_log().emit("engine.pool.close",
                                 workers=self.workers)
            except Exception:
                pass  # close() may run during interpreter teardown
        self._unlink_shm()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _evaluate_missing(
        self,
        runner: SpannerLike,
        texts: Sequence[str],
        deadline: Deadline = NEVER,
    ) -> List[Set[SpanTuple]]:
        if self.workers > 1 and texts:
            # Aim for several waves per worker (load balance for skewed
            # chunk costs) without one-text-per-IPC overhead.
            chunksize = max(1, len(texts) // (self.workers * 4))
            pool = self._pool_for(runner)
            if self._pool_traced:
                return self._evaluate_missing_traced(pool, texts,
                                                     chunksize, deadline)
            # Ship whole batches as single tasks: one dispatch and one
            # result pickle per ``chunksize`` texts, and batch-capable
            # runners sweep each batch through their tables in one
            # call (:func:`repro.runtime.executor._evaluate_texts_batch`).
            batches = [
                texts[start:start + chunksize]
                for start in range(0, len(texts), chunksize)
            ]
            results: List[Set[SpanTuple]] = []
            if self.metrics is not None:
                # Metered batch tasks time each chunk worker-side and
                # ship the delta back, so ``engine.chunk_eval_seconds``
                # is populated on this path too — not only when
                # tracing is on or the run is in-process.
                for group, delta in pool.imap(
                    _evaluate_texts_batch_metered, batches
                ):
                    results.extend(group)
                    self.metrics.merge(delta)
                    deadline.check()
                return results
            for group in pool.imap(_evaluate_texts_batch, batches):
                results.extend(group)
                deadline.check()
            return results
        latency = (self.metrics.histogram("engine.chunk_eval_seconds")
                   if self.metrics is not None else None)
        deadline.check()
        batch = getattr(runner, "evaluate_batch", None)
        if batch is not None:
            # Kernel batch entry: per-chunk latency observed inside the
            # sweep, no second dispatch layer.
            return batch(texts, latency)
        if latency is not None:
            results = []
            for text in texts:
                deadline.check()
                started = time.perf_counter()
                results.append(set(runner.evaluate(text)))
                latency.observe(time.perf_counter() - started)
            return results
        results = []
        for text in texts:
            deadline.check()
            results.append(set(runner.evaluate(text)))
        return results

    def _evaluate_missing_traced(
        self,
        pool: "multiprocessing.pool.Pool",
        texts: Sequence[str],
        chunksize: int,
        deadline: Deadline = NEVER,
    ) -> List[Set[SpanTuple]]:
        """The pool pass with worker-side collection merged back.

        Each task returns ``(results, span records, metrics delta)``
        (see :func:`repro.runtime.executor._evaluate_text_traced`);
        worker spans are adopted under the currently open ``evaluate``
        phase span, metric deltas merge into the engine registry, and
        the gap between submission and each worker span's wall-clock
        start lands in the queue-wait histogram.
        """
        parent_id = self.tracer.current_id()
        queue_wait = (
            self.metrics.histogram("scheduler.queue_wait_seconds")
            if self.metrics is not None else None
        )
        submitted = time.time()
        results: List[Set[SpanTuple]] = []
        for outcome, records, delta in pool.imap(
            _evaluate_text_traced, texts, chunksize=chunksize
        ):
            results.append(outcome)
            adopted = self.tracer.adopt(records, parent_id=parent_id)
            if queue_wait is not None:
                for record in adopted:
                    if record.parent_id == parent_id:
                        queue_wait.observe(
                            max(0.0, record.start - submitted)
                        )
            if self.metrics is not None and delta is not None:
                self.metrics.merge(delta)
            deadline.check()
        return results

    def run(
        self,
        runner: SpannerLike,
        documents: Sequence[DocumentChunks],
        cache: ChunkCache,
        namespace: str,
        deadline: Deadline = NEVER,
    ) -> Dict[str, Set[SpanTuple]]:
        """Evaluate every document's chunks, deduplicated via ``cache``.

        Returns ``doc_id -> set of (shifted) span tuples``.  Each
        distinct chunk text missing from the cache is evaluated exactly
        once — even when it repeats within this batch — and stored for
        future batches and future runs.

        ``deadline`` is checked cooperatively between evaluation
        batches (never mid-chunk): an expired deadline raises
        :class:`repro.errors.DeadlineExceededError`, results already
        evaluated stay cached, and the pool keeps running — the next
        ``run`` on this scheduler proceeds normally.
        """
        deadline.check()
        # Pass 1: consult the cache; collect distinct missing texts in
        # first-seen order (deterministic scheduling).  A text repeated
        # within this batch counts as a hit from its second instance on:
        # those instances are served without evaluation.
        seen: Dict[str, object] = {}
        missing: List[str] = []
        chunk_instances = 0
        for _doc_id, chunks in documents:
            for _span, text in chunks:
                chunk_instances += 1
                if text in seen:
                    cache.record_batch_hit()
                    continue
                cached = cache.lookup(namespace, text)
                seen[text] = cached
                if cached is None:
                    missing.append(text)

        # Pass 2: fan the missing texts out (batched over the pool).
        with self.tracer.span(
            "evaluate", unique_missing=len(missing),
            instances=chunk_instances,
            workers=self.workers if self.workers > 1 else 0,
        ):
            for text, results in zip(
                missing, self._evaluate_missing(runner, missing, deadline)
            ):
                seen[text] = cache.store(namespace, text, results)

        # Pass 3: merge shifted tuples back per document.
        with self.tracer.span("merge", documents=len(documents)) as span:
            resolved: Dict[str, Set[SpanTuple]] = {}
            tuples_merged = 0
            for doc_id, chunks in documents:
                merged: Set[SpanTuple] = resolved.setdefault(doc_id, set())
                for span_, text in chunks:
                    merged.update(t.shift(span_) for t in seen[text])
                tuples_merged += len(merged)
            span.set("tuples", tuples_merged)

        self.last_batch = ScheduledBatch(
            len(documents), chunk_instances, len(missing)
        )
        return resolved
