"""The engine's two-level cache: certified plans and chunk results.

Corpus-scale extraction repeats two kinds of work that the paper's
framework makes safely cacheable:

* **Certification.**  Deciding split-correctness is PSPACE-complete in
  general (Theorem 5.1); once ``P = P_S o S`` is certified, the
  certificate stays valid for every document.  The :class:`PlanCache`
  memoizes :class:`repro.runtime.planner.CertifiedPlan` objects keyed
  by a *fingerprint* of the (spanner, splitter registry) pair, so the
  decision procedures run exactly once per program.  Certificates also
  carry the plan's **compiled kernel artifact** (the split spanner
  lowered onto the integer/bitset IR of
  :mod:`repro.automata.compiled` at certify time), so cache hits
  replay both the decision and the lowering — chunk runners, including
  pool workers that receive the certificate's runner by pickling,
  never re-lower.

* **Chunk extraction.**  Real corpora repeat chunks — boilerplate
  sentences, shared records, quoted passages.  Because a split-correct
  plan evaluates each chunk independently of its context, equal chunk
  *texts* have equal (unshifted) results, and the :class:`ChunkCache`
  evaluates each distinct text once per program.  This is the corpus-
  wide generalization of the per-document reuse in
  :mod:`repro.runtime.incremental`.

Fingerprints are structural, not ``id``-based: two separately
constructed but identically shaped VSet-automata fingerprint alike
(states are canonically renumbered by a breadth-first traversal), so
cache hits survive re-compilation of the same program.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.spans import SpanTuple
from repro.runtime.planner import CertifiedPlan, Planner, RegisteredSplitter
from repro.spanners.vset_automaton import VSetAutomaton


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------


def _canonical_automaton(automaton: VSetAutomaton) -> str:
    """A serialization invariant under state renaming.

    States reachable from the initial state are renumbered in
    breadth-first order, visiting transition labels in sorted-``repr``
    order, so two automata that differ only in state identities (or in
    the traversal order their builder happened to use) serialize
    identically.
    """
    nfa = automaton.nfa
    numbering: Dict[object, int] = {nfa.initial: 0}
    queue = deque([nfa.initial])
    transitions: List[Tuple[int, str, int]] = []
    while queue:
        state = queue.popleft()
        source = numbering[state]
        for symbol in sorted(nfa.symbols_from(state), key=repr):
            successors = sorted(nfa.successors(state, symbol), key=repr)
            for target in successors:
                if target not in numbering:
                    numbering[target] = len(numbering)
                    queue.append(target)
                transitions.append((source, repr(symbol), numbering[target]))
    finals = sorted(
        numbering[state] for state in nfa.finals if state in numbering
    )
    return repr((
        sorted(map(repr, automaton.doc_alphabet)),
        sorted(map(repr, automaton.variables)),
        sorted(transitions),
        finals,
    ))


def _canonical_value(value: object) -> str:
    """A container-order-insensitive serialization of an attribute.

    ``repr`` alone is unstable exactly where Python containers are:
    ``dict`` preserves insertion order and ``frozenset``/``set`` repr
    in iteration order, so two structurally identical programs built
    in different orders would describe (and fingerprint) differently —
    silently duplicating certification.  Dicts serialize by sorted
    key, sets by sorted element; tuples and lists keep their
    (meaningful) order with elements canonicalized recursively.
    """
    if isinstance(value, dict):
        items = sorted(
            (_canonical_value(key), _canonical_value(item))
            for key, item in value.items()
        )
        return "dict{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (frozenset, set)):
        return ("set{" + ",".join(sorted(_canonical_value(item)
                                         for item in value)) + "}")
    if isinstance(value, tuple):
        return ("tuple(" + ",".join(_canonical_value(item)
                                    for item in value) + ")")
    if isinstance(value, list):
        return ("list[" + ",".join(_canonical_value(item)
                                   for item in value) + "]")
    return repr(value)


def _describe(program: object) -> str:
    """A stable structural description of a spanner or splitter."""
    if isinstance(program, VSetAutomaton):
        return "vsa:" + _canonical_automaton(program)
    own_fingerprint = getattr(program, "fingerprint", None)
    if callable(own_fingerprint):
        return f"custom:{own_fingerprint()}"
    pattern = getattr(program, "_regex", None)
    if pattern is not None and hasattr(pattern, "pattern"):
        return f"regex:{type(program).__name__}:{pattern.pattern}"
    attributes = sorted(
        (name, _canonical_value(value))
        for name, value in vars(program).items()
        if isinstance(value, (str, int, float, bool, bytes, frozenset,
                              set, tuple, list, dict))
    )
    # Objects whose behavior lives in attributes not captured above
    # (callables, nested objects) should expose their own
    # ``fingerprint()`` — this structural fallback cannot see inside
    # them and would treat such programs as equal.
    return f"obj:{type(program).__name__}:{attributes!r}"


def fingerprint(program: object) -> str:
    """A short hex fingerprint of a spanner/splitter's structure."""
    return hashlib.sha256(_describe(program).encode("utf-8")).hexdigest()[:16]


def registry_fingerprint(
    splitters: Sequence[RegisteredSplitter],
) -> str:
    """Fingerprint of a planner's splitter registry.

    Covers names, priorities, specification automata, and the identity
    of any fast executor — everything :meth:`Planner.plan` consults.
    """
    parts = [
        (registered.name, registered.priority,
         _describe(registered.automaton),
         _describe(registered.executor) if registered.executor is not None
         else None)
        for registered in splitters
    ]
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Level 1: the plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """Memoize split-correctness certificates per program.

    Keyed by ``(spanner fingerprint, registry fingerprint)``; the
    stored :class:`CertifiedPlan` records how long certification took,
    and the cache counts hits, misses and total certification time for
    the engine's statistics.
    """

    def __init__(self) -> None:
        self._plans: Dict[Tuple[str, str], CertifiedPlan] = {}
        self.hits = 0
        self.misses = 0
        self.certification_seconds = 0.0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def certifications(self) -> int:
        """Times the decision procedures actually ran."""
        return self.misses

    def get(
        self,
        planner: Planner,
        spanner: VSetAutomaton,
        spanner_fp: Optional[str] = None,
        registry_fp: Optional[str] = None,
    ) -> CertifiedPlan:
        """The certified plan for ``spanner`` under ``planner``.

        Runs :meth:`Planner.certify` on the first request for a given
        (spanner, registry) pair and replays the certificate afterward.
        Callers that hold precomputed fingerprints (the engine
        fingerprints its immutable registry once) pass them to make
        cache hits O(1).
        """
        spanner_fp = spanner_fp or fingerprint(spanner)
        key = (spanner_fp,
               registry_fp or registry_fingerprint(planner.splitters))
        certified = self._plans.get(key)
        if certified is not None:
            self.hits += 1
            certified.reuses += 1
            return certified
        self.misses += 1
        certified = planner.certify(spanner, fingerprint="/".join(key))
        self.certification_seconds += certified.certification_seconds
        self._plans[key] = certified
        return certified

    def clear(self) -> None:
        self._plans.clear()


# ----------------------------------------------------------------------
# Level 2: the chunk cache
# ----------------------------------------------------------------------


class ChunkCache:
    """Deduplicate chunk extraction across an entire corpus.

    Maps ``(namespace, chunk text)`` to the frozen, unshifted result
    set of running a chunk-level spanner on that text.  The engine
    namespaces entries by *certificate* fingerprint (program plus
    splitter registry) because the certificate determines which runner
    produced the results — so one cache serves many programs, and even
    many engines, without cross-contamination.  ``limit`` bounds the
    number of retained entries with least-recently-used eviction
    (``None`` = unbounded).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be positive or None")
        self.limit = limit
        self._results: "OrderedDict[Tuple[str, str], FrozenSet[SpanTuple]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._results)

    def lookup(
        self, namespace: str, chunk: str
    ) -> Optional[FrozenSet[SpanTuple]]:
        """The cached result for ``chunk``, or ``None``; counts the
        hit/miss and refreshes recency on hit."""
        key = (namespace, chunk)
        cached = self._results.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        self._results.move_to_end(key)
        return cached

    def record_batch_hit(self) -> None:
        """Count an instance served by an evaluation scheduled within
        the same batch (a repeat of a text not yet stored)."""
        self.hits += 1

    def store(
        self, namespace: str, chunk: str, results: Set[SpanTuple]
    ) -> FrozenSet[SpanTuple]:
        frozen = frozenset(results)
        key = (namespace, chunk)
        if key in self._results:
            # A write is a use: refresh recency like lookup() does.
            self._results[key] = frozen
            self._results.move_to_end(key)
            return frozen
        if self.limit is not None:
            while len(self._results) >= self.limit:
                self._results.popitem(last=False)
                self.evictions += 1
        self._results[key] = frozen
        return frozen

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._results.clear()
