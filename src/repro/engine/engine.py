"""The :class:`ExtractionEngine` façade: certified corpus extraction.

The engine ties the subsystem together: it certifies a program against
its splitter registry once (plan cache), splits each document with the
certified splitter, deduplicates chunk texts corpus-wide (chunk
cache), fans missing chunks over a worker pool (scheduler), and merges
shifted span-tuples back per document — surfacing counters for every
stage (stats).

Typical use::

    from repro.engine import Corpus, ExtractionEngine
    engine = ExtractionEngine(registered_splitters, workers=4)
    result = engine.run(Corpus.from_texts(texts), program)
    result["doc-0000"]          # span tuples of the first document
    engine.stats().snapshot()   # hit rates, certifications, throughput

Results equal per-document ``evaluate_whole`` whenever the planner
certifies a split plan (that is what the certificate *means*) and
trivially when it falls back to whole-document evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.spans import Span, SpanTuple, whole_span
from repro.obs.log import event_log
from repro.obs.metrics import Metrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.executor import SpannerLike, splitter_spans
from repro.runtime.planner import CertifiedPlan, Planner, RegisteredSplitter
from repro.spanners.vset_automaton import VSetAutomaton

from repro.engine.cache import (
    ChunkCache,
    PlanCache,
    fingerprint,
    registry_fingerprint,
)
from repro.engine.corpus import Corpus, Document
from repro.engine.deadline import NEVER, Deadline, as_deadline
from repro.engine.scheduler import Scheduler
from repro.engine.stats import EngineStats


@dataclass(frozen=True)
class Program:
    """An extraction program as the engine sees it.

    ``executable`` is what runs on chunks (a VSet-automaton, a
    :class:`repro.runtime.fast.RegexSpanner`, or any object with
    ``evaluate``); ``specification`` is the VSet-automaton the decision
    procedures reason over.  When the executable *is* a VSet-automaton
    the specification defaults to it; production programs pair a fast
    executable with a miniature specification, the same pattern the
    benchmark workloads use.
    """

    executable: SpannerLike
    specification: Optional[VSetAutomaton] = None
    name: str = "program"

    def __post_init__(self) -> None:
        if self.specification is None:
            if not isinstance(self.executable, VSetAutomaton):
                spec = getattr(self.executable, "specification", None)
                if not isinstance(spec, VSetAutomaton):
                    raise ValueError(
                        "a non-automaton executable needs an explicit "
                        "VSet-automaton specification for certification"
                    )
                object.__setattr__(self, "specification", spec)
            else:
                object.__setattr__(self, "specification", self.executable)

    @classmethod
    def from_query(cls, spanner: object, name: Optional[str] = None
                   ) -> "Program":
        """The engine program behind a fluent query's spanner.

        Accepts a :class:`repro.query.Spanner` wrapper (unwrapping its
        executable/specification pair), a raw VSet-automaton, or any
        ``SpannerLike`` that carries its own specification; idempotent
        on :class:`Program` itself.
        """
        if isinstance(spanner, cls):
            return spanner
        executable = getattr(spanner, "executable", spanner)
        specification = getattr(spanner, "specification", None)
        if not isinstance(specification, VSetAutomaton):
            specification = None
        label = name or getattr(spanner, "name", None) or "query"
        return cls(executable, specification, name=label)

    def fingerprint(self) -> str:
        """Identity for both cache levels: covers the specification
        (what gets certified) and the executable (what runs).

        Computed once per program (the inputs are frozen).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            spec_fp = fingerprint(self.specification)
            if self.executable is self.specification:
                cached = spec_fp
            else:
                cached = f"{spec_fp}+{fingerprint(self.executable)}"
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def runner(self) -> SpannerLike:
        """The chunk-level executable, resolved once per program.

        VSet-automaton executables lower onto the compiled kernel
        (:func:`repro.runtime.executor.as_runner`); fast executables
        (regex, black boxes) pass through.  Cached so repeated runs —
        and the engine's artifact accounting — see one lowering.
        """
        cached = self.__dict__.get("_runner")
        if cached is None:
            from repro.runtime.executor import as_runner

            cached = as_runner(self.executable)
            object.__setattr__(self, "_runner", cached)
        return cached


@dataclass
class EngineResult:
    """Per-document results of one engine run.

    ``stats`` covers *this run only* (the delta it contributed to the
    engine's cumulative counters, see
    :meth:`repro.engine.stats.EngineStats.since`), so merging results
    of disjoint runs sums correctly.
    """

    by_document: Dict[str, Set[SpanTuple]]
    plan: CertifiedPlan
    stats: EngineStats

    def __getitem__(self, doc_id: str) -> Set[SpanTuple]:
        return self.by_document[doc_id]

    def __iter__(self) -> Iterator[Tuple[str, Set[SpanTuple]]]:
        return iter(self.by_document.items())

    def __len__(self) -> int:
        return len(self.by_document)

    def total_tuples(self) -> int:
        return sum(len(tuples) for tuples in self.by_document.values())

    def merge(self, other: "EngineResult") -> "EngineResult":
        """Union of two disjoint runs (sharded execution)."""
        overlap = self.by_document.keys() & other.by_document.keys()
        if overlap:
            raise ValueError(f"overlapping document ids: {sorted(overlap)}")
        merged = dict(self.by_document)
        merged.update(other.by_document)
        return EngineResult(merged, self.plan, self.stats.merge(other.stats))


CorpusLike = Union[Corpus, Sequence[str], Mapping[str, str]]
ProgramLike = Union[Program, SpannerLike]


def _as_corpus(corpus: CorpusLike) -> Corpus:
    if isinstance(corpus, Corpus):
        return corpus
    if isinstance(corpus, Mapping):
        return Corpus.from_mapping(corpus)
    return Corpus.from_texts(list(corpus))


def _as_program(program: ProgramLike) -> Program:
    return program if isinstance(program, Program) else Program(program)


class ExtractionEngine:
    """Corpus-scale extraction with plan and chunk caching.

    ``splitters`` is the registry the planner certifies against (same
    objects as :class:`repro.runtime.planner.Planner`); ``workers`` and
    ``batch_size`` configure the scheduler; ``chunk_cache_limit``
    bounds chunk-cache memory (LRU); ``method`` selects the
    certification procedure (see :class:`repro.runtime.planner.
    Planner`).  Both caches persist across ``run`` calls, so a
    long-lived engine keeps getting faster as it sees more of the
    workload.

    ``corpus_index`` optionally attaches a
    :class:`repro.index.CorpusIndex` whose posting lists answer the
    prefilter's candidate queries; ``prefilter`` controls chunk
    skipping (:mod:`repro.index`): ``True`` prunes chunks the
    certified plan provably produces nothing on (scan mode without an
    index), ``False`` never prunes, and the default ``None`` prunes
    exactly when an index is attached.  Pruning never changes results
    — only how many chunks reach the automaton.

    ``tracer`` attaches an enabled :class:`repro.obs.trace.Tracer`:
    every phase of every run then lands in its span buffer (including
    worker-process spans, merged back by the scheduler).  Defaults to
    the shared disabled tracer — a no-op.  ``metrics`` supplies the
    :class:`repro.obs.metrics.Metrics` registry the engine's counters
    live in; :meth:`stats` is a view over it, and passing a shared
    registry aggregates several engines into one exposition.

    ``use_shm`` passes through to the scheduler: with the default
    ``None``, compiled artifacts reach pool workers through a
    :mod:`multiprocessing.shared_memory` segment workers attach by
    name (unlinked on :meth:`close`); ``False`` forces initializer
    pickling (see :class:`repro.engine.scheduler.Scheduler`).
    """

    def __init__(
        self,
        splitters: Sequence[RegisteredSplitter],
        workers: int = 0,
        batch_size: int = 32,
        chunk_cache_limit: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        chunk_cache: Optional[ChunkCache] = None,
        method: str = "general",
        corpus_index: Optional[object] = None,
        prefilter: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        use_shm: Optional[bool] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else Metrics()
        self.planner = Planner(splitters, method=method,
                               tracer=self.tracer)
        self.scheduler = Scheduler(workers=workers, batch_size=batch_size,
                                   tracer=self.tracer,
                                   metrics=self.metrics,
                                   use_shm=use_shm)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.chunk_cache = (chunk_cache if chunk_cache is not None
                            else ChunkCache(chunk_cache_limit))
        # The registry is immutable after construction; fingerprint
        # once.  The certification method participates: engines that
        # certify differently must not exchange certificates through a
        # shared plan cache.
        self._registry_fp = registry_fingerprint(self.planner.splitters)
        if method != "general":
            self._registry_fp += f"+{method}"
        self._index = None
        self._prefilter = prefilter
        # IndexFilter per certificate fingerprint; invalidated when the
        # index changes (the filter binds the index's candidate mask).
        self._filters: Dict[str, Optional[object]] = {}
        if corpus_index is not None:
            self.attach_index(corpus_index)
        # Per-engine counters, stored as instruments in the metrics
        # registry (stats() is a view over them): caches may be shared
        # between engines, so each run attributes only its own
        # cache-counter deltas here.  Instrument handles are cached —
        # the hot loops touch Counter.inc, not registry lookups.
        counter = self.metrics.counter
        self._documents = counter("engine.documents")
        self._chunks_total = counter("engine.chunks_total")
        self._chunks_pruned = counter("engine.chunks_pruned")
        self._extraction_seconds = counter("engine.extraction_seconds")
        self._tuples_emitted = counter("engine.tuples_emitted")
        self._chunk_hits = counter("engine.chunk_cache.hits")
        self._chunk_misses = counter("engine.chunk_cache.misses")
        self._chunk_evictions = counter("engine.chunk_cache.evictions")
        self._plan_hits = counter("engine.plan_cache.hits")
        self._certifications = counter("engine.certifications")
        self._certification_seconds = counter(
            "engine.certification_seconds")
        self._artifacts_compiled = counter("engine.artifacts_compiled")
        self._certification_latency = self.metrics.histogram(
            "engine.certification_latency_seconds")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def certify(self, program: ProgramLike) -> CertifiedPlan:
        """The (cached) certificate for ``program``.

        The decision procedures run at most once per (program,
        registry) pair for the lifetime of the plan cache.
        """
        program = _as_program(program)
        cache = self.plan_cache
        before = (cache.hits, cache.misses, cache.certification_seconds)
        with self.tracer.span("certify", program=program.name) as span:
            certified = cache.get(
                self.planner, program.specification,
                spanner_fp=program.fingerprint(),
                registry_fp=self._registry_fp,
            )
            missed = cache.misses - before[1]
            span.set("cache_hit", not missed)
            span.set("mode", certified.plan.mode)
        self._plan_hits.inc(cache.hits - before[0])
        self._certifications.inc(missed)
        elapsed = cache.certification_seconds - before[2]
        self._certification_seconds.inc(elapsed)
        if missed:
            self._certification_latency.observe(elapsed)
            # A fresh certificate lowered its split spanner onto the
            # compiled kernel (at most once); replays never re-lower.
            self._artifacts_compiled.inc(certified.artifacts_compiled)
            event_log().emit(
                "engine.certify", program=program.name,
                mode=certified.plan.mode,
                splitter=certified.splitter_name,
                seconds=elapsed,
            )
        return certified

    def runner_for(
        self, certified: CertifiedPlan, program: Program
    ) -> SpannerLike:
        """What evaluates chunks under this certificate.

        The certificate's compiled artifact when the plan carries one;
        otherwise the program's own runner, lowered on first use (and
        counted toward ``artifacts_compiled``).  Callers that need the
        runner identity (e.g. :meth:`repro.query.ResultSet.explain`)
        must resolve it through here, not ``program.runner()``, so the
        lowering accounting is never bypassed.
        """
        runner = certified.chunk_runner()
        if runner is not None:
            return runner
        fresh = "_runner" not in program.__dict__
        if fresh:
            with self.tracer.span("compile", program=program.name) as span:
                runner = program.runner()
                span.set("lowered",
                         bool(getattr(runner, "freshly_lowered", False)))
            if getattr(runner, "freshly_lowered", False):
                self._artifacts_compiled.inc()
            return runner
        return program.runner()

    @staticmethod
    def _chunks_of(
        certified: CertifiedPlan, document: Document
    ) -> List[Tuple[Span, str]]:
        """The ``(span, text)`` chunks of one document under the plan."""
        plan = certified.plan
        if plan.mode == "whole" or plan.splitter is None:
            # No certified splitter: the whole document is one chunk —
            # the chunk cache still deduplicates identical documents.
            return [(whole_span(document.text), document.text)]
        target = plan.splitter.runtime_splitter()
        return [
            (span, span.extract(document.text))
            for span in splitter_spans(target, document.text)
        ]

    # ------------------------------------------------------------------
    # Index prefiltering
    # ------------------------------------------------------------------

    @property
    def index(self):
        """The attached :class:`repro.index.CorpusIndex`, if any."""
        return self._index

    def attach_index(self, index) -> None:
        """Attach (or replace) the corpus index used for prefiltering.

        Accepts an index object (:class:`repro.index.CorpusIndex` or
        :class:`repro.index.store.SegmentedIndex`) or a *path*, opened
        via :func:`repro.index.store.open_index`.  A directory-backed
        (mmap) index is also registered with the scheduler so pool
        workers map its segments by path in their initializers —
        postings never ride a pickle to a worker.  Takes effect from
        the next run; with the default ``prefilter=None`` attaching an
        index is what switches chunk skipping on.
        """
        if isinstance(index, str):
            from repro.index.store import open_index

            path, index = index, open_index(index)
            if not hasattr(index, "directory"):
                # Record where a file-backed index came from so query
                # plumbing can recognize an already-attached path.
                index.source_path = path
        self._index = index
        self._filters.clear()
        self.scheduler.premap_index(
            getattr(index, "directory", None)
        )
        event_log().emit(
            "engine.index.attach",
            directory=getattr(index, "directory", None),
            splitter=getattr(index, "splitter", None),
        )

    def build_index(self, corpus: CorpusLike, program: ProgramLike,
                    num_shards: int = 1, format: str = "json",
                    path: Optional[str] = None):
        """Index ``corpus`` exactly as this engine would chunk it.

        Certifies ``program`` (cached) and feeds every document's plan
        chunks to a fresh index, so lookups at run time hit by
        construction.  ``format="json"`` (default) builds an in-memory
        :class:`repro.index.CorpusIndex`; ``format="binary"`` builds a
        mmap-backed :class:`repro.index.store.SegmentedIndex` in the
        directory ``path`` (required), one segment per shard, with
        per-document tracking so later edits maintain it by delta.
        The index is returned, not attached — pass it to
        :meth:`attach_index`.
        """
        corpus = _as_corpus(corpus)
        certified = self.certify(program)
        shards = (corpus.shards(num_shards) if num_shards > 1
                  else [corpus])
        if format == "binary":
            if path is None:
                raise ValueError(
                    "format='binary' needs a directory path for the "
                    "segment files"
                )
            from repro.index.store import SegmentedIndex

            index = SegmentedIndex.create(
                path, splitter=certified.splitter_name
            )
            for shard in shards:
                with index.batch():
                    for document in shard:
                        index.add_document(
                            [text for _span, text in
                             self._chunks_of(certified, document)],
                            doc_id=document.doc_id,
                        )
                    index.shards_indexed += 1
            return index
        if format != "json":
            raise ValueError(
                f"unknown index format {format!r} (json or binary)"
            )
        from repro.index import CorpusIndex

        index = CorpusIndex(splitter=certified.splitter_name)
        for shard in shards:
            for document in shard:
                index.add_document(
                    text for _span, text in
                    self._chunks_of(certified, document)
                )
            index.shards_indexed += 1
        return index

    def run_delta(
        self,
        corpus: CorpusLike,
        program: ProgramLike,
        deadline: object = None,
    ) -> EngineResult:
        """Re-run ``program`` over edited documents, maintaining the
        attached index by delta.

        Requires an attached delta-maintainable index
        (:class:`repro.index.store.SegmentedIndex`).  Each document's
        fresh chunk set is diffed into the index first — introduced
        chunk texts land in **one** new delta segment, texts no longer
        referenced anywhere are tombstoned — then the run proceeds
        normally: the chunk cache serves every unchanged chunk, so the
        automaton only ever sees the chunks the edits introduced (the
        ``engine.chunk_cache.misses`` delta of the returned stats is
        exactly that count).
        """
        index = self._index
        if index is None or not hasattr(index, "update_document"):
            raise ValueError(
                "run_delta needs an attached delta-maintainable index "
                "(attach a repro.index.store.SegmentedIndex first)"
            )
        corpus = _as_corpus(corpus)
        program = _as_program(program)
        certified = self.certify(program)
        with self.tracer.span("delta_index", documents=len(corpus)):
            with index.batch():
                for document in corpus:
                    index.update_document(
                        document.doc_id,
                        [text for _span, text in
                         self._chunks_of(certified, document)],
                    )
        before = self.stats()
        by_document: Dict[str, Set[SpanTuple]] = dict(
            self._iter_certified(corpus, program, certified,
                                 as_deadline(deadline))
        )
        return EngineResult(by_document, certified,
                            self.stats().since(before))

    def _prefilter_for(self, certified: CertifiedPlan):
        """The :class:`repro.index.IndexFilter` gating this
        certificate's chunks, or ``None`` when prefiltering is off or
        the plan has no effective factors (full evaluation)."""
        enabled = (self._prefilter if self._prefilter is not None
                   else self._index is not None)
        if not enabled:
            return None
        key = certified.fingerprint or f"plan-{id(certified):x}"
        if key not in self._filters:
            from repro.index import IndexFilter

            factors = certified.factor_set()
            self._filters[key] = (
                IndexFilter(factors, self._index,
                            metrics=self.metrics, plan=key[:12])
                if factors is not None and factors.effective else None
            )
        return self._filters[key]

    def prefilter_report(self, certified: CertifiedPlan) -> Dict[str, object]:
        """What the prefilter does under this certificate (the
        ``"index"`` block of :meth:`repro.query.ResultSet.explain`)."""
        prefilter = self._prefilter_for(certified)
        if prefilter is None:
            enabled = (self._prefilter if self._prefilter is not None
                       else self._index is not None)
            return {
                "enabled": False,
                "reason": ("no effective factors (full evaluation)"
                           if enabled else "prefiltering off"),
            }
        report: Dict[str, object] = {"enabled": True}
        report.update(prefilter.describe())
        return report

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _iter_certified(
        self, corpus: Corpus, program: Program, certified: CertifiedPlan,
        deadline: Deadline = NEVER,
    ) -> Iterator[Tuple[str, Set[SpanTuple]]]:
        """Yield ``(doc_id, tuples)`` batch by batch under a certificate.

        The lazy core under both :meth:`run` and :meth:`run_iter`: one
        scheduler pass per document batch, counters updated as each
        batch completes, results yielded per document in corpus order —
        nothing downstream of the current batch is computed yet.

        ``deadline`` is the cooperative cancellation point: it is
        checked at every batch boundary (and between evaluation batches
        inside :meth:`repro.engine.scheduler.Scheduler.run`), raising
        :class:`repro.errors.DeadlineExceededError` without disturbing
        the pool, the caches, or any published shm segment — the
        engine stays fully usable for subsequent queries.
        """
        runner = self.runner_for(certified, program)
        prefilter = self._prefilter_for(certified)
        # Chunk results depend on the *runner*, which the certificate
        # determines — namespace the chunk cache by certificate (it
        # covers program and registry), not by program alone.
        chunk_namespace = certified.fingerprint or program.fingerprint()
        cache = self.chunk_cache
        tracer = self.tracer
        for batch in corpus.batches(max(1, self.scheduler.batch_size)):
            deadline.check()
            start = time.perf_counter()
            cache_before = (cache.hits, cache.misses, cache.evictions)
            tasks = []
            with tracer.span("split", documents=len(batch)) as span:
                by_document = [
                    (document, self._chunks_of(certified, document))
                    for document in batch
                ]
                span.set("chunks",
                         sum(len(chunks) for _d, chunks in by_document))
            with tracer.span("prefilter",
                             active=prefilter is not None) as span:
                pruned_batch = 0
                for document, chunks in by_document:
                    self._chunks_total.inc(len(chunks))
                    if prefilter is not None and chunks:
                        admitted = [chunk for chunk in chunks
                                    if prefilter.admits(chunk[1])]
                        pruned_batch += len(chunks) - len(admitted)
                        chunks = admitted
                    tasks.append((document.doc_id, chunks))
                self._chunks_pruned.inc(pruned_batch)
                span.set("pruned", pruned_batch)
            with tracer.span("schedule", documents=len(batch)):
                resolved = self.scheduler.run(runner, tasks, cache,
                                              chunk_namespace, deadline)
            self._chunk_hits.inc(cache.hits - cache_before[0])
            self._chunk_misses.inc(cache.misses - cache_before[1])
            self._chunk_evictions.inc(cache.evictions - cache_before[2])
            self._extraction_seconds.inc(time.perf_counter() - start)
            self._documents.inc(len(batch))
            for document in batch:
                tuples = resolved[document.doc_id]
                self._tuples_emitted.inc(len(tuples))
                yield document.doc_id, tuples

    def run(
        self,
        corpus: CorpusLike,
        program: ProgramLike,
        deadline: object = None,
    ) -> EngineResult:
        """Extract ``program`` over ``corpus``; results per document.

        ``deadline`` (a :class:`repro.engine.deadline.Deadline`,
        seconds, or ``None``) bounds the run: past it, the next batch
        boundary raises :class:`repro.errors.DeadlineExceededError`.
        Partial work stays cached; the engine remains usable.
        """
        corpus = _as_corpus(corpus)
        program = _as_program(program)
        before = self.stats()
        certified = self.certify(program)
        by_document: Dict[str, Set[SpanTuple]] = dict(
            self._iter_certified(corpus, program, certified,
                                 as_deadline(deadline))
        )
        return EngineResult(by_document, certified,
                            self.stats().since(before))

    def run_iter(
        self,
        corpus: CorpusLike,
        program: ProgramLike,
        deadline: object = None,
    ) -> Iterator[Tuple[str, Set[SpanTuple]]]:
        """Extract lazily: yield ``(doc_id, tuples)`` per document.

        Documents come out in corpus order, produced one scheduler
        batch at a time, so consuming a prefix of the iterator only
        pays for the batches that prefix spans — the streaming
        primitive under :meth:`repro.query.ResultSet.stream`.
        Certification still happens exactly once — up front, through
        the plan cache, when the iterator is created.  ``deadline``
        bounds consumption like :meth:`run`.
        """
        corpus = _as_corpus(corpus)
        program = _as_program(program)
        certified = self.certify(program)
        return self._iter_certified(corpus, program, certified,
                                    as_deadline(deadline))

    def run_sharded(
        self,
        corpus: CorpusLike,
        program: ProgramLike,
        num_shards: int,
    ) -> EngineResult:
        """Process each shard in turn and merge the results.

        Shard assignment is deterministic (see
        :func:`repro.engine.corpus.shard_of`), so a cluster of engines
        running ``shard(i)`` each would partition the corpus exactly
        like this sequential loop does.
        """
        corpus = _as_corpus(corpus)
        before = self.stats()
        merged: Dict[str, Set[SpanTuple]] = {}
        certified: Optional[CertifiedPlan] = None
        for shard in corpus.shards(num_shards):
            result = self.run(shard, program)
            merged.update(result.by_document)
            certified = result.plan
        if certified is None:  # num_shards >= 1 always yields shards
            certified = self.certify(program)
        return EngineResult(merged, certified, self.stats().since(before))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable_tracing(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Install (or switch on) an enabled tracer engine-wide.

        Gives the engine, its planner and its scheduler one shared
        enabled :class:`Tracer` — ``tracer`` if provided, the current
        one if it is already a private enabled/enableable instance, or
        a fresh ``Tracer()`` when the engine still holds the shared
        :data:`NULL_TRACER` (which must never be mutated: other
        engines share it).  The scheduler notices the mode change at
        its next pool build, so worker-side span collection follows
        automatically.  Returns the active tracer.  This is how a
        flight recorder with ``capture_spans=True`` turns a previously
        untraced engine into one producing per-query span trees.
        """
        if tracer is None:
            tracer = (Tracer() if self.tracer is NULL_TRACER
                      else self.tracer)
        if tracer is NULL_TRACER:
            raise ValueError(
                "refusing to enable the shared NULL_TRACER; pass a "
                "private Tracer instance instead"
            )
        tracer.enabled = True
        self.tracer = tracer
        self.planner.tracer = tracer
        self.scheduler.tracer = tracer
        return tracer

    def close(self) -> None:
        """Shut down the scheduler's worker pool (idempotent).

        Caches survive ``close``; the process pool and any published
        shared-memory artifact segment are released.  Engines are
        also usable as context managers.
        """
        self.scheduler.close()

    def __enter__(self) -> "ExtractionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> EngineStats:
        """Cumulative counters across this engine's lifetime.

        Counters cover only *this engine's* activity even when the
        caches are shared between engines; ``chunk_cache_size`` is a
        gauge of the (possibly shared) cache's current contents.

        A pure view over the metrics registry
        (:meth:`repro.engine.stats.EngineStats.from_metrics`): the
        stats surface and ``self.metrics`` read the same instruments
        and can never disagree.
        """
        return EngineStats.from_metrics(
            self.metrics, chunk_cache_size=len(self.chunk_cache)
        )
