"""Per-query deadlines: cooperative cancellation budgets.

A :class:`Deadline` is a monotonic-clock budget a query carries
through the engine.  Nothing preempts running work — the engine checks
the deadline at *batch boundaries* (between scheduler passes, and the
scheduler between pool result batches), raising
:class:`repro.errors.DeadlineExceededError` as soon as a check fails.
Cooperative checks are what keep a shared engine safe under deadlines:
no worker is killed mid-chunk, the pool and any published
shared-memory segments stay intact, and chunks evaluated before the
cut-off remain in the chunk cache for the next query.

>>> deadline = Deadline.after(60.0)
>>> deadline.expired()
False
>>> deadline.check()        # no-op while there is budget left
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import DeadlineExceededError


class Deadline:
    """A monotonic wall-clock budget for one query.

    ``Deadline.after(seconds)`` starts the clock now;
    ``Deadline(at=t)`` pins an absolute :func:`time.monotonic` instant
    (what a service uses to make the budget cover queue wait too).
    ``None`` budgets never expire — :data:`NEVER` is the shared
    no-deadline instance, so call sites can check unconditionally.
    """

    __slots__ = ("_at", "_started", "_budget")

    def __init__(self, at: Optional[float] = None,
                 budget: Optional[float] = None) -> None:
        self._started = time.monotonic()
        self._budget = budget
        self._at = at

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = never expires)."""
        if seconds is None:
            return NEVER
        if seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        return cls(at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> Optional[float]:
        """Seconds left (negative once expired; ``None`` = unbounded)."""
        if self._at is None:
            return None
        return self._at - time.monotonic()

    def elapsed(self) -> float:
        """Seconds since this deadline object was created."""
        return time.monotonic() - self._started

    def expired(self) -> bool:
        return self._at is not None and time.monotonic() >= self._at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent.

        The cooperative cancellation point: cheap enough to call at
        every batch boundary (one :func:`time.monotonic` read).
        """
        if self._at is not None and time.monotonic() >= self._at:
            raise DeadlineExceededError(
                elapsed=self.elapsed(), budget=self._budget
            )

    def __repr__(self) -> str:
        if self._at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: The shared never-expiring deadline: call sites thread it through
#: unconditionally instead of branching on ``None``.
NEVER = Deadline()


def as_deadline(deadline) -> Deadline:
    """Coerce a caller-supplied deadline: a :class:`Deadline`, a
    float/int budget in seconds, or ``None`` (never expires)."""
    if deadline is None:
        return NEVER
    if isinstance(deadline, Deadline):
        return deadline
    if isinstance(deadline, (int, float)):
        return Deadline.after(float(deadline))
    raise TypeError(
        f"deadline must be a Deadline, seconds, or None, "
        f"got {type(deadline).__name__}"
    )
