"""Command-line interface: analyze programs, run corpus extraction.

The Introduction's debugging interface as a CLI::

    python -m repro analyze --pattern '.*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}' \
        --alphabet 'ab .' --splitters tokens,sentences

prints, per splitter, disjointness, self-splittability and
splittability, plus the recommended plan.  The corpus engine
(:mod:`repro.engine`) is exposed as a second subcommand::

    python -m repro engine --pattern '...' --alphabet 'ab .' \
        --text 'aa ab a.' --text 'aa ab a.' --workers 4

which certifies once, extracts over all documents with chunk
deduplication, and reports per-document tuple counts plus the engine
statistics (cache hit rates, certification time, throughput).
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime.planner import Planner, RegisteredSplitter
from repro.spanners.regex_formulas import compile_regex_formula


def _build_splitter(name: str, alphabet):
    from repro.splitters import builders

    if name == "tokens":
        return builders.token_splitter(alphabet)
    if name == "sentences":
        return builders.sentence_splitter(alphabet)
    if name == "paragraphs":
        return builders.paragraph_splitter(alphabet)
    if name == "records":
        return builders.record_splitter(alphabet)
    if name == "whole":
        return builders.whole_document_splitter(alphabet)
    if name.startswith("ngram"):
        return builders.token_ngram_splitter(alphabet, int(name[5:] or 2))
    if name.startswith("window"):
        return builders.fixed_window_splitter(alphabet, int(name[6:] or 8))
    raise SystemExit(f"unknown splitter {name!r}; try tokens, sentences, "
                     "paragraphs, records, whole, ngram<N>, window<N>")


def analyze(args) -> int:
    alphabet = frozenset(args.alphabet)
    try:
        spanner = compile_regex_formula(args.pattern, alphabet)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = [n.strip() for n in args.splitters.split(",") if n.strip()]
    registered = [
        RegisteredSplitter(name, _build_splitter(name, alphabet),
                           priority=len(names) - i)
        for i, name in enumerate(names)
    ]
    planner = Planner(registered)
    print(f"pattern:  {args.pattern}")
    print(f"alphabet: {sorted(alphabet)}")
    print()
    print(f"{'splitter':<12} {'disjoint':<9} {'self-split':<11} splittable")
    for row in planner.analyse(spanner):
        splittable = "?" if row.splittable is None else str(row.splittable)
        print(f"{row.name:<12} {str(row.disjoint):<9} "
              f"{str(row.self_splittable):<11} {splittable}")
    plan = planner.plan(spanner)
    if plan.mode == "split":
        extra = "self-splittable" if plan.self_splittable else \
            "via canonical split-spanner"
        print(f"\nplan: split by {plan.splitter.name!r} ({extra})")
    else:
        print("\nplan: whole-document evaluation (no certified splitter)")
    return 0


def engine_command(args) -> int:
    from repro.engine import Corpus, Document, ExtractionEngine

    alphabet = frozenset(args.alphabet)
    try:
        spanner = compile_regex_formula(args.pattern, alphabet)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = [n.strip() for n in args.splitters.split(",") if n.strip()]
    registered = [
        RegisteredSplitter(name, _build_splitter(name, alphabet),
                           priority=len(names) - i)
        for i, name in enumerate(names)
    ]
    corpus = Corpus()
    try:
        for index, text in enumerate(args.text or []):
            corpus.add(Document(f"text-{index:04d}", text))
        for path in args.file or []:
            with open(path, encoding="utf-8") as handle:
                corpus.add(Document(path, handle.read()))
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not len(corpus):
        print("error: no documents (use --text and/or --file)",
              file=sys.stderr)
        return 2
    try:
        engine = ExtractionEngine(registered, workers=args.workers,
                                  batch_size=args.batch_size)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.shards > 1:
        result = engine.run_sharded(corpus, spanner, args.shards)
    else:
        result = engine.run(corpus, spanner)
    plan = result.plan
    if plan.mode == "split":
        detail = ("self-splittable" if plan.plan.self_splittable
                  else "via canonical split-spanner")
        print(f"plan: split by {plan.splitter_name!r} ({detail}), "
              f"certified in {plan.certification_seconds:.3f}s")
    else:
        print("plan: whole-document evaluation (no certified splitter)")
    print()
    print(f"{'document':<24} tuples")
    for doc_id, tuples in result:
        print(f"{doc_id:<24} {len(tuples)}")
    print()
    for key, value in result.stats.snapshot().items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}: {rendered}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    subparsers = parser.add_subparsers(dest="command", required=True)
    analyze_parser = subparsers.add_parser(
        "analyze", help="report split-correctness against common splitters"
    )
    analyze_parser.add_argument("--pattern", required=True,
                                help="regex formula (x{...} captures)")
    analyze_parser.add_argument("--alphabet", required=True,
                                help="document alphabet, e.g. 'ab .'")
    analyze_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help="comma list: tokens,sentences,paragraphs,records,whole,"
             "ngram<N>,window<N>",
    )
    engine_parser = subparsers.add_parser(
        "engine", help="run the corpus extraction engine (repro.engine)"
    )
    engine_parser.add_argument("--pattern", required=True,
                               help="regex formula (x{...} captures)")
    engine_parser.add_argument("--alphabet", required=True,
                               help="document alphabet, e.g. 'ab .'")
    engine_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help="comma list registered with the planner",
    )
    engine_parser.add_argument("--text", action="append",
                               help="inline document (repeatable)")
    engine_parser.add_argument("--file", action="append",
                               help="path to a document file (repeatable)")
    engine_parser.add_argument("--workers", type=int, default=0,
                               help="process-pool size (0 = in-process)")
    engine_parser.add_argument("--batch-size", type=int, default=32,
                               help="chunk/document batch size")
    engine_parser.add_argument("--shards", type=int, default=1,
                               help="process the corpus in N shards")
    args = parser.parse_args(argv)
    if args.command == "analyze":
        return analyze(args)
    if args.command == "engine":
        return engine_command(args)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
