"""Command-line analyzer: which splitters is a program split-correct for?

The Introduction's debugging interface as a CLI::

    python -m repro analyze --pattern '.*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}' \
        --alphabet 'ab .' --splitters tokens,sentences

prints, per splitter, disjointness, self-splittability and
splittability, plus the recommended plan.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime.planner import Planner, RegisteredSplitter
from repro.spanners.regex_formulas import compile_regex_formula


def _build_splitter(name: str, alphabet):
    from repro.splitters import builders

    if name == "tokens":
        return builders.token_splitter(alphabet)
    if name == "sentences":
        return builders.sentence_splitter(alphabet)
    if name == "paragraphs":
        return builders.paragraph_splitter(alphabet)
    if name == "records":
        return builders.record_splitter(alphabet)
    if name == "whole":
        return builders.whole_document_splitter(alphabet)
    if name.startswith("ngram"):
        return builders.token_ngram_splitter(alphabet, int(name[5:] or 2))
    if name.startswith("window"):
        return builders.fixed_window_splitter(alphabet, int(name[6:] or 8))
    raise SystemExit(f"unknown splitter {name!r}; try tokens, sentences, "
                     "paragraphs, records, whole, ngram<N>, window<N>")


def analyze(args) -> int:
    alphabet = frozenset(args.alphabet)
    try:
        spanner = compile_regex_formula(args.pattern, alphabet)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = [n.strip() for n in args.splitters.split(",") if n.strip()]
    registered = [
        RegisteredSplitter(name, _build_splitter(name, alphabet),
                           priority=len(names) - i)
        for i, name in enumerate(names)
    ]
    planner = Planner(registered)
    print(f"pattern:  {args.pattern}")
    print(f"alphabet: {sorted(alphabet)}")
    print()
    print(f"{'splitter':<12} {'disjoint':<9} {'self-split':<11} splittable")
    for row in planner.analyse(spanner):
        splittable = "?" if row.splittable is None else str(row.splittable)
        print(f"{row.name:<12} {str(row.disjoint):<9} "
              f"{str(row.self_splittable):<11} {splittable}")
    plan = planner.plan(spanner)
    if plan.mode == "split":
        extra = "self-splittable" if plan.self_splittable else \
            "via canonical split-spanner"
        print(f"\nplan: split by {plan.splitter.name!r} ({extra})")
    else:
        print("\nplan: whole-document evaluation (no certified splitter)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    subparsers = parser.add_subparsers(dest="command", required=True)
    analyze_parser = subparsers.add_parser(
        "analyze", help="report split-correctness against common splitters"
    )
    analyze_parser.add_argument("--pattern", required=True,
                                help="regex formula (x{...} captures)")
    analyze_parser.add_argument("--alphabet", required=True,
                                help="document alphabet, e.g. 'ab .'")
    analyze_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help="comma list: tokens,sentences,paragraphs,records,whole,"
             "ngram<N>,window<N>",
    )
    args = parser.parse_args(argv)
    if args.command == "analyze":
        return analyze(args)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
