"""Command-line interface: analyze programs, run corpus extraction.

Both subcommands are thin shells over the fluent query API
(:mod:`repro.query`) — the CLI builds the same :class:`repro.query.Q`
chain a notebook would, so splitter names, certification behaviour and
explain output can never diverge between the two surfaces.

The Introduction's debugging interface as a CLI::

    python -m repro analyze --pattern '.*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}' \
        --alphabet 'ab .' --splitters tokens,sentences

prints, per splitter, disjointness, self-splittability and
splittability, plus the recommended plan.  The corpus engine
(:mod:`repro.engine`) is exposed as a second subcommand::

    python -m repro engine --pattern '...' --alphabet 'ab .' \
        --text 'aa ab a.' --text 'aa ab a.' --workers 4

which certifies once, streams per-document tuple counts as batches
complete, and reports the plan explanation (theorem, procedure,
compiled artifact) plus the engine statistics.

The corpus index subsystem (:mod:`repro.index`) is the third
subcommand: build a persistent trigram index over a corpus's chunks
once, then let any number of engine runs skip chunks that provably
cannot match::

    python -m repro index --alphabet 'ab .' --splitter sentences \
        --file corpus.txt --output corpus.idx
    python -m repro engine --pattern '...' --alphabet 'ab .' \
        --file corpus.txt --index corpus.idx

The resident serving layer (:mod:`repro.serve`) is the fourth
subcommand: one engine stays hot behind a bounded admission queue and
an HTTP/JSON endpoint, with per-query deadlines and per-tenant
metrics::

    python -m repro serve --pattern '...' --alphabet 'ab .' \
        --splitters tokens --workers 4 --port 8080

``POST /extract`` runs queries (``429`` when the queue is full,
``504`` on a missed deadline), ``GET /metrics`` exposes the tenant-
labeled Prometheus registries, ``GET /healthz`` reports liveness.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.query import Q, Query, Spanner


def _build_query(args) -> Query:
    """The fluent query shared by the analyze/engine subcommands."""
    spanner = Spanner.regex(args.pattern, frozenset(args.alphabet))
    names = [n.strip() for n in args.splitters.split(",") if n.strip()]
    query = Q(spanner).split_by(*names)
    if getattr(args, "method", None) is not None:
        query = query.method(args.method)
    if getattr(args, "workers", None) is not None:
        query = query.workers(args.workers)
    # `is not None`, not truthiness: 0 must reach the scheduler's
    # validation instead of silently keeping the default.
    if getattr(args, "batch_size", None) is not None:
        query = query.batch_size(args.batch_size)
    if getattr(args, "index", None) is not None:
        # A path — JSON file or binary segment directory, resolved by
        # repro.index.store.open_index when the query binds.
        query = query.indexed(args.index)
    elif getattr(args, "prefilter", False):
        query = query.indexed()
    if getattr(args, "trace", None) is not None:
        query = query.traced()
    return query


def _emit_observability(args, query) -> None:
    """Honour ``--trace FILE`` / ``--metrics`` after a (sub)command ran."""
    engine = query.engine()
    if getattr(args, "trace", None) is not None:
        engine.tracer.export_chrome(args.trace)
        print(f"wrote Chrome trace ({len(engine.tracer)} spans) "
              f"to {args.trace}")
    if getattr(args, "metrics", False):
        from repro.obs import Metrics, kernel_metrics

        combined = Metrics().merge(engine.metrics).merge(kernel_metrics())
        print()
        print(combined.to_prometheus(), end="")


def _collect_corpus(args):
    """The documents named by ``--text``/``--file`` as a Corpus."""
    from repro.engine import Corpus, Document

    corpus = Corpus()
    for index, text in enumerate(args.text or []):
        corpus.add(Document(f"text-{index:04d}", text))
    for path in args.file or []:
        with open(path, encoding="utf-8") as handle:
            corpus.add(Document(path, handle.read()))
    return corpus


def _print_plan(explain: dict) -> None:
    if explain["mode"] == "split":
        extra = "self-splittable" if explain["self_splittable"] else \
            "via canonical split-spanner"
        print(f"plan: split by {explain['splitter']!r} ({extra})")
    else:
        print("plan: whole-document evaluation (no certified splitter)")


def _print_prefilter(explain: dict) -> None:
    prefilter = explain.get("index") or {}
    if prefilter.get("enabled"):
        required = ",".join(prefilter.get("required", [])) or "-"
        print(f"      index prefilter: {prefilter['mode']} "
              f"(required literals: {required})")


def analyze(args) -> int:
    try:
        query = _build_query(args)
        print(f"pattern:  {args.pattern}")
        print(f"alphabet: {sorted(frozenset(args.alphabet))}")
        print()
        print(f"{'splitter':<12} {'disjoint':<9} {'self-split':<11} "
              "splittable")
        for row in query.analyse():
            splittable = "?" if row.splittable is None else \
                str(row.splittable)
            print(f"{row.name:<12} {str(row.disjoint):<9} "
                  f"{str(row.self_splittable):<11} {splittable}")
        explain = query.explain()
    except (ReproError, ValueError) as error:
        # ValueError covers pre-hierarchy errors still raised below the
        # fluent surface (regex parse errors, bad worker counts, ...).
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    _print_plan(explain)
    if explain["theorem"]:
        print(f"      certified by {explain['theorem']} "
              f"[{explain['procedure']}]")
    _emit_observability(args, query)
    return 0


def engine_command(args) -> int:
    try:
        corpus = _collect_corpus(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not len(corpus):
        print("error: no documents (use --text and/or --file)",
              file=sys.stderr)
        return 2
    try:
        query = _build_query(args)
        if args.shards > 1:
            # Sharded runs partition the corpus deterministically; the
            # merged result is materialized shard by shard.
            engine = query.engine()
            if getattr(args, "prefilter", False) and engine.index is None:
                # .over() auto-indexes; run_sharded bypasses it, so
                # honour --prefilter's auto-indexing promise here too.
                engine.attach_index(
                    engine.build_index(corpus, query.program(),
                                       num_shards=args.shards)
                )
            results = engine.run_sharded(
                corpus, query.program(), args.shards
            )
            explain = query.explain()
            explain["index"] = engine.prefilter_report(query.certify())
            by_document = dict(results)
            stats = results.stats
        else:
            result_set = query.over(corpus)
            explain = result_set.explain()
            _print_plan(explain)
            print(f"      certified in "
                  f"{explain['certification_seconds']:.3f}s")
            if explain["theorem"]:
                print(f"      certified by {explain['theorem']} "
                      f"[{explain['procedure']}]")
            print(f"      compiled artifact: "
                  f"{explain['compiled_artifact']}")
            _print_prefilter(explain)
            print()
            print(f"{'document':<24} tuples")
            for doc_id, tuples in result_set.stream():   # lazy
                print(f"{doc_id:<24} {len(tuples)}")
            print()
            for key, value in result_set.stats().snapshot().items():
                rendered = (f"{value:.3f}" if isinstance(value, float)
                            else value)
                print(f"  {key}: {rendered}")
            _emit_observability(args, query)
            return 0
    except (ReproError, ValueError, OSError) as error:
        # OSError covers a missing/unreadable --index file.
        print(f"error: {error}", file=sys.stderr)
        return 2
    _print_plan(explain)
    _print_prefilter(explain)
    print()
    print(f"{'document':<24} tuples")
    for doc_id, tuples in by_document.items():
        print(f"{doc_id:<24} {len(tuples)}")
    print()
    for key, value in stats.snapshot().items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}: {rendered}")
    _emit_observability(args, query)
    return 0


def serve_command(args) -> int:
    """Start the resident extraction service with its HTTP endpoint.

    The service keeps one engine hot (plan cache, chunk cache, pool,
    optional index) across every request; per-request patterns share
    that engine's plan cache through the query factory, so repeated
    patterns certify once for the server's lifetime.
    """
    from repro.engine.engine import Program
    from repro.serve import serve_http

    try:
        query = _build_query(args)
        if args.flight:
            query = query.recorded(
                capacity=args.flight,
                slow_ms=args.slow_ms,
            )
        service = query.serve(
            max_queue=args.max_queue,
            default_deadline=(args.default_deadline_ms / 1000.0
                              if args.default_deadline_ms else None),
        )
    except (ReproError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.log:
        from repro.obs.log import configure_event_log

        try:
            configure_event_log(path=args.log)
        except OSError as error:
            print(f"error: cannot open event log {args.log!r}: "
                  f"{error}", file=sys.stderr)
            return 2

    default_alphabet = frozenset(args.alphabet)

    def query_factory(pattern: str, alphabet) -> Program:
        spanner = Spanner.regex(
            pattern,
            frozenset(alphabet) if alphabet else default_alphabet,
        )
        return Program.from_query(spanner)

    def ready(bound) -> None:
        host, port = bound
        print(f"serving on http://{host}:{port} "
              f"(pattern {args.pattern!r}, splitters {args.splitters}, "
              f"workers {args.workers}, max_queue {args.max_queue})",
              flush=True)

    with service:
        serve_http(service, host=args.host, port=args.port,
                   query_factory=query_factory, ready=ready)
    return 0


def index_command(args) -> int:
    """Build (and optionally persist) a corpus index over chunks."""
    from repro.index import CorpusIndex, SegmentedIndex
    from repro.query import Splitter

    try:
        corpus = _collect_corpus(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not len(corpus):
        print("error: no documents (use --text and/or --file)",
              file=sys.stderr)
        return 2
    if args.format == "binary" and not args.output:
        print("error: --format binary needs --output DIRECTORY",
              file=sys.stderr)
        return 2
    try:
        splitter = Splitter.named(args.splitter, frozenset(args.alphabet))
        if args.format == "binary":
            index = SegmentedIndex.build(corpus, splitter, args.output,
                                         num_shards=args.shards)
        else:
            index = CorpusIndex.build(corpus, splitter,
                                      num_shards=args.shards)
    except (ReproError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for key, value in index.describe().items():
        print(f"  {key}: {value}")
    if args.format == "binary":
        print(f"saved index to {args.output}")
    elif args.output:
        try:
            index.save(args.output)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"saved index to {args.output}")
    return 0


def index_compact_command(args) -> int:
    """Fold a segment directory flat, dropping tombstoned texts."""
    from repro.index import SegmentedIndex

    try:
        index = SegmentedIndex.open(args.index)
        summary = index.compact()
        index.close()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print(f"compacted index at {args.index}")
    return 0


def index_update_command(args) -> int:
    """Re-index edited documents by delta (tombstones + delta segment).

    Each ``--file PATH`` re-chunks that file under the index's own
    splitter and diffs it against the document the index knows by that
    id (the path, or ``--doc-id`` for a single file); documents given
    with ``--remove ID`` are retired.
    """
    from repro.index import SegmentedIndex
    from repro.query import Splitter

    files = args.file or []
    if args.doc_id and len(files) != 1:
        print("error: --doc-id needs exactly one --file",
              file=sys.stderr)
        return 2
    try:
        index = SegmentedIndex.open(args.index)
        splitter = Splitter.named(
            index.splitter or args.splitter, frozenset(args.alphabet)
        )
        with index.batch():
            for path in files:
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                doc_id = args.doc_id or path
                delta = index.update_document(
                    doc_id, splitter.chunks(text)
                )
                print(f"  {doc_id}: +{delta['added']} "
                      f"-{delta['removed']} distinct texts")
            for doc_id in args.remove or []:
                retired = index.remove_document(doc_id)
                print(f"  {doc_id}: removed ({retired} texts retired)")
        for key, value in index.describe().items():
            print(f"  {key}: {value}")
        index.close()
    except (ReproError, ValueError, OSError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    from repro.splitters.builders import known_splitter_names

    known = ",".join(known_splitter_names())
    parser = argparse.ArgumentParser(prog="python -m repro")
    subparsers = parser.add_subparsers(dest="command", required=True)
    analyze_parser = subparsers.add_parser(
        "analyze", help="report split-correctness against common splitters"
    )
    analyze_parser.add_argument("--pattern", required=True,
                                help="regex formula (x{...} captures)")
    analyze_parser.add_argument("--alphabet", required=True,
                                help="document alphabet, e.g. 'ab .'")
    analyze_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help=f"comma list: {known}",
    )
    analyze_parser.add_argument(
        "--method", default="general",
        choices=["auto", "fast", "general"],
        help="certification procedure selection",
    )
    analyze_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace certification; write Chrome trace JSON to FILE",
    )
    analyze_parser.add_argument(
        "--metrics", action="store_true",
        help="print Prometheus metrics after the analysis",
    )
    engine_parser = subparsers.add_parser(
        "engine", help="run the corpus extraction engine (repro.engine)"
    )
    engine_parser.add_argument("--pattern", required=True,
                               help="regex formula (x{...} captures)")
    engine_parser.add_argument("--alphabet", required=True,
                               help="document alphabet, e.g. 'ab .'")
    engine_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help=f"comma list registered with the planner: {known}",
    )
    engine_parser.add_argument(
        "--method", default="general",
        choices=["auto", "fast", "general"],
        help="certification procedure selection",
    )
    engine_parser.add_argument("--text", action="append",
                               help="inline document (repeatable)")
    engine_parser.add_argument("--file", action="append",
                               help="path to a document file (repeatable)")
    engine_parser.add_argument("--workers", type=int, default=0,
                               help="process-pool size (0 = in-process)")
    engine_parser.add_argument("--batch-size", type=int, default=32,
                               help="chunk/document batch size")
    engine_parser.add_argument("--shards", type=int, default=1,
                               help="process the corpus in N shards")
    engine_parser.add_argument(
        "--index", default=None, metavar="PATH",
        help="corpus index file built by `repro index` (enables "
             "chunk prefiltering from its posting lists)",
    )
    engine_parser.add_argument(
        "--prefilter", action="store_true",
        help="prune provably non-matching chunks (auto-indexes the "
             "corpus when no --index is given)",
    )
    engine_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace the run (all phases, worker processes included); "
             "write Chrome trace JSON to FILE (Perfetto-loadable)",
    )
    engine_parser.add_argument(
        "--metrics", action="store_true",
        help="print Prometheus metrics (engine + compiled kernel) "
             "after the run",
    )
    serve_parser = subparsers.add_parser(
        "serve", help="run the resident extraction service "
                      "(repro.serve HTTP/JSON endpoint)"
    )
    serve_parser.add_argument("--pattern", required=True,
                              help="default regex formula served")
    serve_parser.add_argument("--alphabet", required=True,
                              help="document alphabet, e.g. 'ab .'")
    serve_parser.add_argument(
        "--splitters", default="tokens,sentences",
        help=f"comma list registered with the planner: {known}",
    )
    serve_parser.add_argument(
        "--method", default="general",
        choices=["auto", "fast", "general"],
        help="certification procedure selection",
    )
    serve_parser.add_argument("--workers", type=int, default=0,
                              help="process-pool size (0 = in-process)")
    serve_parser.add_argument("--batch-size", type=int, default=32,
                              help="chunk/document batch size")
    serve_parser.add_argument(
        "--index", default=None, metavar="PATH",
        help="corpus index file built by `repro index` (enables "
             "chunk prefiltering from its posting lists)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="bind port (0 = ephemeral)")
    serve_parser.add_argument(
        "--max-queue", type=int, default=64,
        help="admission-queue bound (beyond it, requests get 429)",
    )
    serve_parser.add_argument(
        "--default-deadline-ms", type=float, default=None,
        help="deadline applied to requests without their own "
             "(missed deadlines get 504)",
    )
    serve_parser.add_argument(
        "--log", default=None, metavar="FILE",
        help="append structured JSON event-log lines to FILE "
             "(admissions, completions, rejections, deadline misses)",
    )
    serve_parser.add_argument(
        "--flight", type=int, default=0, metavar="N",
        help="retain the last N completed queries in the flight "
             "recorder (serves GET /debug/queries; 0 = off)",
    )
    serve_parser.add_argument(
        "--slow-ms", type=float, default=None, metavar="T",
        help="keep queries slower than T milliseconds (and every "
             "deadline miss) in the slow-query log with full span "
             "trees (GET /debug/slow)",
    )
    index_parser = subparsers.add_parser(
        "index", help="build a persistent corpus index (repro.index)"
    )
    index_parser.add_argument("--alphabet", required=True,
                              help="document alphabet, e.g. 'ab .'")
    index_parser.add_argument(
        "--splitter", default="sentences",
        help=f"chunking splitter, one of: {known}",
    )
    index_parser.add_argument("--text", action="append",
                              help="inline document (repeatable)")
    index_parser.add_argument("--file", action="append",
                              help="path to a document file (repeatable)")
    index_parser.add_argument("--shards", type=int, default=1,
                              help="index the corpus in N shards "
                                   "(binary: one segment per shard)")
    index_parser.add_argument(
        "--format", default="json", choices=["json", "binary"],
        help="storage format: json (single file) or binary "
             "(mmap-able segment directory, delta-updatable)",
    )
    index_parser.add_argument("--output", default=None, metavar="PATH",
                              help="write the index to PATH (json: a "
                                   "file; binary: a directory)")
    compact_parser = subparsers.add_parser(
        "index-compact",
        help="merge a binary index's segments, dropping tombstones",
    )
    compact_parser.add_argument("--index", required=True, metavar="DIR",
                                help="segment directory built by "
                                     "`repro index --format binary`")
    update_parser = subparsers.add_parser(
        "index-update",
        help="re-index edited documents by delta (binary index)",
    )
    update_parser.add_argument("--index", required=True, metavar="DIR",
                               help="segment directory to update")
    update_parser.add_argument("--alphabet", required=True,
                               help="document alphabet, e.g. 'ab .'")
    update_parser.add_argument(
        "--splitter", default="sentences",
        help=f"fallback splitter if the index records none: {known}",
    )
    update_parser.add_argument("--file", action="append",
                               help="edited document file (repeatable; "
                                    "doc id = path)")
    update_parser.add_argument("--doc-id", default=None,
                               help="document id for a single --file")
    update_parser.add_argument("--remove", action="append",
                               metavar="ID",
                               help="retire a document by id "
                                    "(repeatable)")
    args = parser.parse_args(argv)
    if args.command == "analyze":
        return analyze(args)
    if args.command == "engine":
        return engine_command(args)
    if args.command == "serve":
        return serve_command(args)
    if args.command == "index":
        return index_command(args)
    if args.command == "index-compact":
        return index_compact_command(args)
    if args.command == "index-update":
        return index_update_command(args)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
