"""The structured JSON event log: one JSON object per line.

Where spans (:mod:`repro.obs.trace`) answer *where time went* inside a
run and metrics (:mod:`repro.obs.metrics`) answer *how much*, the
event log answers *what happened, in order* — the shippable record an
operator greps (or feeds a log pipeline) after the fact: admissions,
completions, rejections, deadline misses, index reopens, compactions,
pool and shared-memory lifecycle.

Every event is one JSON object on one line with a fixed envelope —
wall-clock and monotonic time, level, event name, pid, the current
span id of the tracer that was active (so log lines join against
flight-recorder span trees), a tenant when one applies — plus
free-form attributes::

    {"ts": 1754650000.12, "mono": 8123.4, "level": "info",
     "event": "service.complete", "pid": 4242, "span": 17,
     "tenant": "acme", "query_id": "q-0007", "run_seconds": 0.012}

The log is **stdlib-``logging``-compatible**: events flow through a
regular :class:`logging.Logger` (``"repro.events"``), so any handler —
file, stream, syslog, a test's ``StringIO`` — can receive them, and
level filtering works the usual way.  An *unconfigured* event log is
disabled and costs one attribute check per :meth:`EventLog.emit` call,
which is why emit sites can stay in place on production paths.

>>> import io, json
>>> handler = configure_event_log(stream=io.StringIO())
>>> payload = event_log().emit("doctest.ping", answer=42)
>>> payload["event"], payload["answer"]
('doctest.ping', 42)
>>> line = handler.stream.getvalue().strip()
>>> json.loads(line)["answer"]
42
>>> event_log().detach(handler)
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from typing import Dict, Optional

#: The stdlib logger name every event rides through.
EVENT_LOGGER_NAME = "repro.events"

#: Accepted ``level`` strings and their stdlib numeric levels.
LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class EventLog:
    """A process-wide structured event sink over stdlib ``logging``.

    Handlers attach through :meth:`attach` (or the
    :func:`configure_event_log` shortcut); with none attached the log
    is disabled and :meth:`emit` returns immediately.  The underlying
    logger does not propagate to the root logger by default, so repro
    events never leak into an application's general log stream unless
    explicitly wired there.

    ``tracer`` optionally binds a default
    :class:`repro.obs.trace.Tracer` whose :meth:`~repro.obs.trace.
    Tracer.current_id` stamps each event with the innermost open span
    on the emitting thread; call sites may also pass ``span=`` per
    event (it wins over the bound tracer).
    """

    def __init__(self, name: str = EVENT_LOGGER_NAME,
                 tracer: object = None) -> None:
        self._logger = logging.getLogger(name)
        self._logger.propagate = False
        self._logger.setLevel(logging.DEBUG)
        self._tracer = tracer
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when at least one handler will receive events."""
        return bool(self._logger.handlers)

    def bind_tracer(self, tracer: object) -> None:
        """Bind the tracer whose current span id stamps events."""
        self._tracer = tracer

    def attach(self, handler: logging.Handler) -> logging.Handler:
        """Attach a stdlib handler; returns it (for later detach).

        The handler gets a message-only formatter unless it already
        carries one, so the emitted line is exactly one JSON object.
        """
        if handler.formatter is None:
            handler.setFormatter(logging.Formatter("%(message)s"))
        with self._lock:
            self._logger.addHandler(handler)
        return handler

    def detach(self, handler: logging.Handler) -> None:
        with self._lock:
            self._logger.removeHandler(handler)
        handler.close()

    def detach_all(self) -> None:
        with self._lock:
            for handler in list(self._logger.handlers):
                self._logger.removeHandler(handler)
                handler.close()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(
        self,
        event: str,
        level: str = "info",
        tenant: Optional[str] = None,
        span: Optional[int] = None,
        **attributes: object,
    ) -> Optional[Dict[str, object]]:
        """Record one event; returns the payload dict (``None`` when
        the log is disabled or the level is filtered out).

        The envelope — ``ts`` (wall seconds), ``mono`` (monotonic
        seconds, orders events under clock steps), ``level``,
        ``event``, ``pid``, ``span`` (current/explicit span id),
        ``tenant`` when given — always precedes the free-form
        ``attributes`` in the serialized line.
        """
        if not self._logger.handlers:
            return None
        levelno = LEVELS.get(level, logging.INFO)
        if not self._logger.isEnabledFor(levelno):
            return None
        if span is None and self._tracer is not None:
            span = self._tracer.current_id()
        payload: Dict[str, object] = {
            "ts": time.time(),
            "mono": time.monotonic(),
            "level": level,
            "event": event,
            "pid": os.getpid(),
        }
        if span is not None:
            payload["span"] = span
        if tenant is not None:
            payload["tenant"] = tenant
        payload.update(attributes)
        self._logger.log(
            levelno,
            json.dumps(payload, ensure_ascii=False, default=str),
        )
        return payload

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"EventLog({self._logger.name!r}, {state}, "
                f"{len(self._logger.handlers)} handlers)")


# ----------------------------------------------------------------------
# The process-global event log
# ----------------------------------------------------------------------

_EVENT_LOG = EventLog()


def event_log() -> EventLog:
    """The process-global :class:`EventLog` every layer emits into.

    Disabled (no handlers) until :func:`configure_event_log` — or a
    manual :meth:`EventLog.attach` — wires a destination, so emit
    sites on serving paths are effectively free in the default
    configuration.
    """
    return _EVENT_LOG


def configure_event_log(
    path: Optional[str] = None,
    stream: object = None,
    level: str = "info",
) -> logging.Handler:
    """Attach a destination to the global event log; returns the
    handler (detach it with ``event_log().detach(handler)``).

    ``path`` appends JSON lines to a file (the ``repro serve --log
    FILE`` destination); ``stream`` writes to an open text stream
    (tests use ``io.StringIO``).  ``level`` filters at the handler
    (``"debug"``/``"info"``/``"warning"``/``"error"``).
    """
    if (path is None) == (stream is None):
        raise ValueError("configure_event_log needs exactly one of "
                         "path= or stream=")
    if path is not None:
        handler: logging.Handler = logging.FileHandler(
            path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream)
    handler.setLevel(LEVELS.get(level, logging.INFO))
    return _EVENT_LOG.attach(handler)
