"""The query flight recorder: the last N queries, kept for the asking.

A resident service answers thousands of queries and throws each one's
story away the moment the result ships.  The
:class:`FlightRecorder` keeps that story: a bounded ring of
:class:`QueryRecord` objects — query fingerprint, tenant, queue-wait
and run seconds, per-phase durations, prune/cache counters, kernel
tier, outcome including the typed error — so ``GET /debug/queries``
can answer "what just happened?" after the fact.

On top of the ring sits the **slow-query log**: queries at or above a
configurable latency threshold — and deadline misses, always — are
retained separately and in full, with the complete span tree the
tracer collected for them (worker-process spans included) and the
certificate's ``explain()`` payload, so the one query that blew its
budget arrives with its own post-mortem attached.

The recorder is thread-safe and passive: it never measures anything
itself.  The :class:`repro.serve.ExtractionService` dispatcher builds
one :class:`QueryRecord` per executed query and hands it over
together with the spans drained for that query; everything expensive
(span snapshot, explain payload) is captured lazily and only for
queries the slow log keeps.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.trace import SpanRecord, phase_durations


def spans_to_dicts(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Span records as JSON-friendly dicts (the ``span_tree`` shape)."""
    return [
        {
            "name": record.name,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "start": record.start,
            "duration": record.duration,
            "pid": record.pid,
            "tid": record.tid,
            "attributes": dict(record.attributes),
        }
        for record in records
    ]


@dataclass
class QueryRecord:
    """One completed (or failed) query, as the flight recorder keeps it.

    ``outcome`` is ``"ok"`` or the typed error's class name
    (``"DeadlineExceededError"``, ``"ServiceClosedError"``, ...);
    ``phases`` are per-phase wall-clock seconds from the spans this
    query produced (empty when the engine ran untraced); ``counters``
    are the engine-counter deltas the query contributed (chunks total/
    pruned/evaluated, cache hits/misses, tuples).  ``pids`` lists every
    process that contributed a span — more than one exactly when pool
    workers did chunk work.  ``span_tree`` and ``explain`` are
    populated only for queries the slow log kept.
    """

    query_id: str
    program: str
    fingerprint: str
    tenant: str
    outcome: str
    error: Optional[str]
    started: float                    # wall-clock seconds (time.time)
    queue_seconds: float
    run_seconds: float
    documents: int
    tuples: int
    deadline_budget: Optional[float]
    kernel_tier: Optional[str] = None
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    pids: Tuple[int, ...] = ()
    slow: bool = False
    span_tree: Optional[List[Dict[str, object]]] = None
    explain: Optional[Dict[str, object]] = None

    @property
    def total_seconds(self) -> float:
        """Queue wait plus run time: the latency the caller saw."""
        return self.queue_seconds + self.run_seconds

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self, full: bool = False) -> Dict[str, object]:
        """The record as a JSON-friendly dict.

        The summary shape (default) is what ``GET /debug/queries``
        lists; ``full=True`` adds the span tree and explain payload
        (``GET /debug/queries/<id>`` and the slow log).
        """
        payload: Dict[str, object] = {
            "query_id": self.query_id,
            "program": self.program,
            "fingerprint": self.fingerprint,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "error": self.error,
            "started": self.started,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "total_seconds": self.total_seconds,
            "documents": self.documents,
            "tuples": self.tuples,
            "deadline_budget": self.deadline_budget,
            "kernel_tier": self.kernel_tier,
            "phases": dict(self.phases),
            "counters": dict(self.counters),
            "pids": list(self.pids),
            "slow": self.slow,
        }
        if full:
            payload["span_tree"] = self.span_tree
            payload["explain"] = self.explain
        return payload


class FlightRecorder:
    """A thread-safe ring of the last ``capacity`` query records.

    ``slow_threshold`` (seconds, ``None`` = off) routes queries whose
    total latency reaches it into the always-keep slow-query log
    (bounded by ``keep_slow``); ``capture_deadline_misses`` routes
    deadline misses there regardless of latency — a missed deadline is
    *the* query an operator wants the full story for.

    ``capture_spans`` declares whether the recorder wants span trees:
    a service attaching a recorder with ``capture_spans=True`` enables
    tracing on its engine so per-phase durations and slow-query span
    trees exist; ``False`` keeps the engine untraced (records carry
    timings and counters, phases stay empty) for minimum overhead.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold: Optional[float] = None,
        keep_slow: int = 64,
        capture_deadline_misses: bool = True,
        capture_spans: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if keep_slow < 1:
            raise ValueError("keep_slow must be positive")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be non-negative")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.keep_slow = keep_slow
        self.capture_deadline_misses = capture_deadline_misses
        self.capture_spans = capture_spans
        self._lock = threading.Lock()
        self._recent: Deque[QueryRecord] = deque(maxlen=capacity)
        self._slow: Deque[QueryRecord] = deque(maxlen=keep_slow)
        self._recorded = 0
        self._slow_recorded = 0

    # ------------------------------------------------------------------
    # Recording (the dispatcher side)
    # ------------------------------------------------------------------

    def is_slow(self, record: QueryRecord) -> bool:
        """Does ``record`` belong in the slow-query log?"""
        if (self.capture_deadline_misses
                and record.outcome == "DeadlineExceededError"):
            return True
        return (self.slow_threshold is not None
                and record.total_seconds >= self.slow_threshold)

    def record(
        self,
        record: QueryRecord,
        span_records: Sequence[SpanRecord] = (),
        explain: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> QueryRecord:
        """File one query; returns the (enriched) record.

        ``span_records`` are the spans this query produced (already
        drained from the tracer); they populate the record's
        ``phases`` and ``pids`` always, and its full ``span_tree``
        when the slow log keeps it.  ``explain`` is a zero-argument
        callable producing the certificate/prefilter report — invoked
        only for slow queries, so the cheap path never builds it.
        """
        if span_records:
            if not record.phases:
                record.phases = phase_durations(span_records)
            record.pids = tuple(sorted(
                {span.pid for span in span_records}))
        record.slow = self.is_slow(record)
        if record.slow:
            if span_records and record.span_tree is None:
                record.span_tree = spans_to_dicts(span_records)
            if explain is not None and record.explain is None:
                try:
                    record.explain = explain()
                except Exception as error:  # never fail the query path
                    record.explain = {"error": type(error).__name__,
                                      "detail": str(error)}
        with self._lock:
            self._recent.append(record)
            self._recorded += 1
            if record.slow:
                self._slow.append(record)
                self._slow_recorded += 1
        return record

    # ------------------------------------------------------------------
    # Reading (any thread)
    # ------------------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> List[QueryRecord]:
        """The retained records, most recent last."""
        with self._lock:
            records = list(self._recent)
        return records[-limit:] if limit else records

    def slow(self, limit: Optional[int] = None) -> List[QueryRecord]:
        """The slow-query log, most recent last."""
        with self._lock:
            records = list(self._slow)
        return records[-limit:] if limit else records

    def get(self, query_id: str) -> Optional[QueryRecord]:
        """Look a record up by id (slow log first: it lives longer)."""
        with self._lock:
            for record in reversed(self._slow):
                if record.query_id == query_id:
                    return record
            for record in reversed(self._recent):
                if record.query_id == query_id:
                    return record
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def describe(self) -> Dict[str, object]:
        """The recorder's configuration and retention state."""
        with self._lock:
            retained, slow_retained = len(self._recent), len(self._slow)
            recorded, slow_recorded = self._recorded, self._slow_recorded
        return {
            "capacity": self.capacity,
            "keep_slow": self.keep_slow,
            "slow_threshold": self.slow_threshold,
            "capture_deadline_misses": self.capture_deadline_misses,
            "capture_spans": self.capture_spans,
            "recorded": recorded,
            "retained": retained,
            "slow_recorded": slow_recorded,
            "slow_retained": slow_retained,
        }

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self)}/{self.capacity} records, "
                f"{len(self.slow())} slow)")
