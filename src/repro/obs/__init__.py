"""Observability: tracing spans, metrics, and exporters.

The instrumentation substrate under the whole pipeline.  One
:class:`Tracer` brackets every phase of a run in nestable spans
(``certify``, ``compile``, ``split``, ``prefilter``, ``schedule``,
``evaluate``, ``merge``) — including spans recorded *inside pool
workers* and shipped back through the scheduler — and one
:class:`Metrics` registry accumulates the counters, gauges and
mergeable fixed-bucket histograms behind
:class:`repro.engine.stats.EngineStats`.

Enabling it from the fluent API::

    results = Q(spanner).split_by("tokens").workers(2).traced().over(corpus)
    results.materialize()
    results.explain()["trace"]          # per-phase durations
    print(results.trace.render_tree())  # human-readable span tree
    results.trace.export_chrome("run.json")   # open in Perfetto

Exporters: Chrome trace-event JSON (:meth:`Tracer.export_chrome`,
:func:`repro.obs.export.to_chrome_trace`), a span-tree renderer
(:meth:`Tracer.render_tree`), and Prometheus text exposition
(:meth:`Metrics.to_prometheus`).  A disabled tracer (the default
everywhere) is a shared no-op whose cost is one attribute check per
phase, so production paths keep their speed until tracing is asked
for.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    kernel_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    PHASES,
    SpanRecord,
    Tracer,
    phase_durations,
)
from repro.obs.export import (
    render_span_tree,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
)
from repro.obs.log import (
    EventLog,
    configure_event_log,
    event_log,
)
from repro.obs.flight import (
    FlightRecorder,
    QueryRecord,
    spans_to_dicts,
)
from repro.obs.profile import (
    SamplingProfiler,
    profile_for,
    set_process_role,
)

__all__ = [
    "Tracer",
    "SpanRecord",
    "NULL_TRACER",
    "PHASES",
    "phase_durations",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "kernel_metrics",
    "to_chrome_trace",
    "render_span_tree",
    "to_prometheus",
    "validate_chrome_trace",
    "EventLog",
    "event_log",
    "configure_event_log",
    "FlightRecorder",
    "QueryRecord",
    "spans_to_dicts",
    "SamplingProfiler",
    "profile_for",
    "set_process_role",
]
