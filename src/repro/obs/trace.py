"""Nestable, thread-safe tracing spans: the :class:`Tracer`.

Every layer of the pipeline brackets its phases in spans —
``certify``, ``compile``, ``split``, ``prefilter``, ``schedule``,
``evaluate``, ``merge`` — so a single traced run answers the paper's
where-does-the-time-go questions: how long certification took, how
many chunks each batch evaluated, what each pool worker was busy
with.  Spans nest through a per-thread stack (a span opened while
another is active becomes its child), carry free-form attributes, and
record wall-clock start plus a monotonic duration, process id and
thread id — enough to render a span tree
(:func:`repro.obs.export.render_span_tree`) or a Chrome trace
(:func:`repro.obs.export.to_chrome_trace`) without post-processing.

A *disabled* tracer (``Tracer(enabled=False)``, the engine default) is
a true no-op: :meth:`Tracer.span` returns a shared inert handle, so an
untraced hot path pays one attribute check per phase, not per chunk.

>>> tracer = Tracer()
>>> with tracer.span("certify", program="demo") as span:
...     with tracer.span("compile"):
...         pass
...     span.set("cache_hit", False)
>>> [record.name for record in tracer.records()]
['compile', 'certify']
>>> tracer.records()[0].parent_id == tracer.records()[1].span_id
True

Spans recorded in *worker processes* come back as plain
:class:`SpanRecord` lists (they pickle cheaply) and are grafted onto
the parent trace with :meth:`Tracer.adopt`, which re-parents each
worker's root spans under the scheduling span that shipped the work.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

#: The canonical phase names the pipeline brackets itself with; the
#: per-phase rollups (:meth:`Tracer.phase_durations`) and the span-tree
#: renderer treat these as the top-level vocabulary, but any span name
#: is legal.
PHASES = (
    "certify", "compile", "split", "prefilter", "schedule", "evaluate",
    "merge",
)


@dataclass
class SpanRecord:
    """One finished span, as stored in (and shipped between) tracers.

    ``start`` is wall-clock seconds (``time.time()``, comparable across
    processes on one host); ``duration`` is measured with the monotonic
    ``time.perf_counter`` so it never goes negative under clock steps.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float
    pid: int
    tid: int
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NullSpan:
    """The shared inert span handle of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None

    def inc(self, key: str, amount: int = 1) -> None:
        return None

    @property
    def span_id(self) -> Optional[int]:
        return None


NULL_SPAN = _NullSpan()


def phase_durations(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Total seconds per span name over an arbitrary record list.

    The module-level form of :meth:`Tracer.phase_durations`, usable on
    records that left their tracer (drained buffers, flight-recorder
    snapshots).  Sums the *outermost* span of each name: a span nested
    under a same-name ancestor (per-chunk worker ``evaluate`` spans
    under the batch ``evaluate`` phase) is already covered by that
    ancestor's duration and is excluded, so each phase total is
    wall-clock time, not double-counted work.
    """
    by_id = {record.span_id: record for record in records}
    totals: Dict[str, float] = {}
    for record in records:
        parent = by_id.get(record.parent_id)
        shadowed = False
        while parent is not None:
            if parent.name == record.name:
                shadowed = True
                break
            parent = by_id.get(parent.parent_id)
        if not shadowed:
            totals[record.name] = (totals.get(record.name, 0.0)
                                   + record.duration)
    return totals


class _ActiveSpan:
    """A live span: context manager and attribute sink."""

    __slots__ = ("_tracer", "_record", "_clock_start")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._clock_start = 0.0

    @property
    def span_id(self) -> int:
        return self._record.span_id

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on this span."""
        self._record.attributes[key] = value

    def inc(self, key: str, amount: int = 1) -> None:
        """Accumulate a numeric attribute (a span-local counter)."""
        attributes = self._record.attributes
        attributes[key] = attributes.get(key, 0) + amount

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._record)
        self._clock_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._record.duration = time.perf_counter() - self._clock_start
        if exc_type is not None:
            self._record.attributes["error"] = exc_type.__name__
        self._tracer._pop(self._record)


class Tracer:
    """Collects nested spans; thread-safe; cheap when disabled.

    One tracer serves a whole engine: spans opened on any thread nest
    through that thread's own stack, and finished records append to one
    shared buffer under a lock.  Span ids are unique within the tracer;
    records adopted from other processes are renumbered on arrival so
    uniqueness survives merging (:meth:`adopt`).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: object):
        """A context manager bracketing one phase.

        ``attributes`` seed the span's attribute dict; more can be
        attached through the handle (:meth:`_ActiveSpan.set`,
        :meth:`_ActiveSpan.inc`).  On a disabled tracer this returns
        the shared :data:`NULL_SPAN` without allocating anything.
        """
        if not self.enabled:
            return NULL_SPAN
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=self.current_id(),
            start=time.time(),
            duration=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, record)

    def current_id(self) -> Optional[int]:
        """The innermost open span's id on this thread (or ``None``)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    def _push(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        # A span created on one thread but entered on another (rare,
        # but legal) parents under the *entering* thread's stack.
        if stack:
            record.parent_id = stack[-1].span_id
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # Reading, shipping, merging
    # ------------------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """A snapshot of every finished span (open spans excluded)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def drain(self) -> List[SpanRecord]:
        """Take the finished spans, leaving the tracer empty.

        This is the worker-side shipping primitive: a pool worker
        drains its local tracer after each task and returns the
        records with the task result.
        """
        with self._lock:
            records, self._records = self._records, []
        return records

    def adopt(
        self,
        records: Sequence[SpanRecord],
        parent_id: Optional[int] = None,
    ) -> List[SpanRecord]:
        """Graft spans recorded elsewhere onto this trace.

        Span ids are renumbered into this tracer's id space (internal
        parent/child links are preserved); records whose parent is not
        part of ``records`` — each worker's root spans — are
        re-parented under ``parent_id``.  Returns the renumbered
        records, already appended to the trace.
        """
        if not self.enabled or not records:
            return []
        mapping = {record.span_id: next(self._ids) for record in records}
        adopted = []
        for record in records:
            adopted.append(SpanRecord(
                name=record.name,
                span_id=mapping[record.span_id],
                parent_id=mapping.get(record.parent_id, parent_id),
                start=record.start,
                duration=record.duration,
                pid=record.pid,
                tid=record.tid,
                attributes=dict(record.attributes),
            ))
        with self._lock:
            self._records.extend(adopted)
        return adopted

    # ------------------------------------------------------------------
    # Rollups and exports
    # ------------------------------------------------------------------

    def phase_durations(self) -> Dict[str, float]:
        """Total seconds per span name (the ``explain()`` rollup).

        See the module-level :func:`phase_durations` for the shadowing
        semantics (same-name descendants are not double-counted).
        """
        return phase_durations(self.records())

    def to_chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object (see
        :func:`repro.obs.export.to_chrome_trace`)."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self.records())

    def export_chrome(self, path: str) -> None:
        """Write the Chrome trace-event JSON to ``path`` (loadable in
        Perfetto or ``chrome://tracing``)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1,
                      default=str)
            handle.write("\n")

    def render_tree(self) -> str:
        """The human-readable span tree (see
        :func:`repro.obs.export.render_span_tree`)."""
        from repro.obs.export import render_span_tree

        return render_span_tree(self.records())

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self)} spans)"


#: The shared disabled tracer: what every layer defaults to when the
#: caller did not ask for tracing.  Never records anything, so sharing
#: one instance across engines is safe.
NULL_TRACER = Tracer(enabled=False)
