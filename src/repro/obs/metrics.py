"""Counters, gauges and fixed-bucket histograms: the :class:`Metrics`
registry.

Where :mod:`repro.obs.trace` answers *when* each phase ran, the
metrics registry answers *how much* — chunks evaluated, certification
seconds, lazy-DFA states built, prune decisions, chunk-evaluation
latency distributions.  Three instrument kinds cover the pipeline:

* :class:`Counter` — monotonically increasing totals (float-valued, so
  accumulated seconds are counters too);
* :class:`Gauge` — point-in-time values (cache sizes);
* :class:`Histogram` — fixed-bucket latency/size distributions whose
  bucket counts, sum and count merge exactly across registries, which
  is what lets pool workers observe locally and ship deltas back.

Instruments are identified by name plus optional labels, Prometheus
style, and registries are **mergeable**: counters and histograms sum,
gauges keep the maximum.  Registries pickle (the lock is dropped and
rebuilt), so a worker-side registry delta travels through the process
pool like any task result.

>>> metrics = Metrics()
>>> metrics.counter("chunks", kind="evaluated").inc(3)
>>> metrics.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
>>> snapshot = metrics.snapshot()
>>> snapshot['chunks{kind="evaluated"}']
3
>>> snapshot["latency"]["count"]
1

The engine derives :class:`repro.engine.stats.EngineStats` from its
registry (:meth:`repro.engine.stats.EngineStats.from_metrics`), so the
flat stats view and the metrics can never disagree.  The compiled
kernel reports into a process-global registry
(:func:`kernel_metrics`), since lowering happens below any engine.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): ~log-spaced from 10µs to 10s,
#: covering chunk evaluation, certification and queue waits alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _key(name: str, labels: Dict[str, object]) -> str:
    """The canonical instrument key: ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing total (int or float)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.inc(other.value)

    def _export(self) -> object:
        return self.value

    def __getstate__(self):
        return (self.name, self.labels, self.value)

    def __setstate__(self, state):
        self.name, self.labels, self.value = state
        self._lock = threading.Lock()


class Gauge:
    """A point-in-time value; merges keep the maximum."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def _merge(self, other: "Gauge") -> None:
        with self._lock:
            self.value = max(self.value, other.value)

    def _export(self) -> object:
        return self.value

    def __getstate__(self):
        return (self.name, self.labels, self.value)

    def __setstate__(self, state):
        self.name, self.labels, self.value = state
        self._lock = threading.Lock()


class Histogram:
    """A fixed-bucket distribution: counts per upper bound, sum, count.

    ``buckets`` are the finite upper bounds (ascending); an implicit
    ``+Inf`` bucket catches the rest.  Two histograms with identical
    bounds merge exactly (bucket-wise sums), which is what makes
    worker-side observation sound: the merged parent histogram equals
    the one a single process would have recorded.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "_lock")

    def __init__(
        self,
        name: str,
        labels: Dict[str, object],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)   # +Inf bucket last
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile.

        Always finite: an empty histogram reports ``0.0``, ``q=0``
        reports the first *occupied* bucket's bound (the smallest
        bound any observation could sit under, never an empty leading
        bucket), and a quantile landing in the ``+Inf`` overflow
        bucket is clamped to the largest finite bound — a conservative
        *lower* estimate, but one that keeps p99 dashboards plottable
        instead of propagating ``inf`` through ``tenant_stats()``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target and cumulative > 0:
                return (self.buckets[index] if index < len(self.buckets)
                        else self.buckets[-1])
        return self.buckets[-1]

    def _merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({self.buckets} vs {other.buckets})"
            )
        with self._lock:
            for index, count in enumerate(other.counts):
                self.counts[index] += count
            self.sum += other.sum
            self.count += other.count

    def _export(self) -> object:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": {
                ("+Inf" if index == len(self.buckets)
                 else repr(self.buckets[index])): count
                for index, count in enumerate(self.counts)
            },
        }

    def __getstate__(self):
        return (self.name, self.labels, self.buckets, self.counts,
                self.sum, self.count)

    def __setstate__(self, state):
        (self.name, self.labels, self.buckets, self.counts,
         self.sum, self.count) = state
        self._lock = threading.Lock()


class Metrics:
    """A registry of named instruments; mergeable and picklable.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterward, so call sites never check for
    existence.  Labels distinguish instruments sharing a name
    (``counter("index.pruned", plan="ab12")``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def _get(self, kind, name: str, labels: Dict[str, object], **extra):
        key = _key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = kind(name, labels, **extra)
                    self._instruments[key] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        return self._get(Histogram, name, labels,
                         buckets=tuple(buckets or DEFAULT_BUCKETS))

    def value(self, name: str, default: float = 0, **labels: object):
        """The current value of a counter/gauge (``default`` when the
        instrument was never touched) — the read side
        :meth:`repro.engine.stats.EngineStats.from_metrics` uses."""
        instrument = self._instruments.get(_key(name, labels))
        if instrument is None:
            return default
        return instrument.value

    def instruments(self) -> List[object]:
        with self._lock:
            return list(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ------------------------------------------------------------------
    # Merging and shipping
    # ------------------------------------------------------------------

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another registry into this one (in place).

        Counters and histograms sum; gauges keep the maximum;
        instruments missing here are added as copies.  Returns
        ``self`` for chaining.
        """
        for instrument in other.instruments():
            key = _key(instrument.name, instrument.labels)
            mine = self._instruments.get(key)
            if mine is None:
                if isinstance(instrument, Histogram):
                    mine = self.histogram(instrument.name,
                                          buckets=instrument.buckets,
                                          **instrument.labels)
                elif isinstance(instrument, Gauge):
                    mine = self.gauge(instrument.name,
                                      **instrument.labels)
                else:
                    mine = self.counter(instrument.name,
                                        **instrument.labels)
            mine._merge(instrument)
        return self

    def drain(self) -> "Metrics":
        """Detach the accumulated instruments as a fresh registry.

        The worker-side shipping primitive (mirror of
        :meth:`repro.obs.trace.Tracer.drain`): returns a registry
        holding everything observed so far and leaves this one empty,
        so each pool task ships only its own delta.
        """
        shipped = Metrics()
        with self._lock:
            shipped._instruments, self._instruments = \
                self._instruments, {}
        return shipped

    def __getstate__(self):
        return {"instruments": self._instruments}

    def __setstate__(self, state):
        self._lock = threading.Lock()
        self._instruments = state["instruments"]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Every instrument's current value, keyed ``name{labels}``.

        Counters and gauges export their value; histograms export a
        ``{count, sum, mean, buckets}`` dict.
        """
        return {
            _key(i.name, i.labels): i._export()
            for i in self.instruments()
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (see
        :func:`repro.obs.export.to_prometheus`)."""
        from repro.obs.export import to_prometheus

        return to_prometheus(self)

    def __repr__(self) -> str:
        return f"Metrics({len(self)} instruments)"


# ----------------------------------------------------------------------
# The process-global kernel registry
# ----------------------------------------------------------------------

#: Lowering and lazy-DFA construction happen below any engine (inside
#: :mod:`repro.automata.compiled`), so the kernel reports into one
#: process-global registry rather than threading a handle through every
#: automaton call.  Read it with :func:`kernel_metrics`; exporters
#: (CLI ``--metrics``, ``ResultSet.explain()``) merge it alongside the
#: engine's own registry.
_KERNEL = Metrics()


def kernel_metrics() -> Metrics:
    """The process-global registry the compiled kernel reports into."""
    return _KERNEL
