"""A sampling wall-clock profiler for the serving stack.

``py-spy`` without the dependency: a daemon thread walks
``sys._current_frames()`` at a configurable rate and folds each
thread's stack into ``collapsed-stack`` counters — the
``module:function:line;module:function:line ...  count`` text format
flame-graph tooling consumes.  Wall-clock sampling (not CPU): a thread
blocked in ``queue.get`` or a pool ``recv`` shows up exactly where it
waits, which is the right view for a dispatcher whose latency story is
mostly *waiting*.

Stacks aggregate per **thread role** rather than per thread id, so a
profile reads as "what was the dispatcher doing" vs. "what were the
workers doing" rather than a soup of anonymous idents.  Roles come
from two sources: the thread's own name (the service names its
dispatcher thread; the profiler's sampler names itself and is skipped)
and a process-wide role set by :func:`set_process_role` — the pool
worker initializers (:mod:`repro.runtime.executor`) declare
``pool-worker``, so a profiler running *inside* a worker process
labels every thread accordingly.

Samples are optionally attributed to the query in flight: pass a
zero-argument ``current_query`` callable (the service exposes
:meth:`~repro.serve.ExtractionService.current_query_id`) and each
sample is also counted against the query id it landed under, joining
profiles to flight-recorder records.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

#: Process-wide role label (see :func:`set_process_role`); ``None``
#: in the parent/service process, ``"pool-worker"`` in pool workers.
_PROCESS_ROLE: Optional[str] = None

#: Maximum stack depth folded into one sample; deeper frames are
#: summarized with a ``...`` leaf so pathological recursion cannot
#: bloat the profile.
MAX_DEPTH = 64


def set_process_role(role: Optional[str]) -> None:
    """Declare what this *process* is (e.g. ``"pool-worker"``).

    Worker initializers call this so any profiler sampling inside the
    worker labels its threads with the pool role instead of guessing
    from thread names.
    """
    global _PROCESS_ROLE
    _PROCESS_ROLE = role


def process_role() -> Optional[str]:
    return _PROCESS_ROLE


def thread_role(name: str) -> str:
    """The role label for a thread named ``name``.

    The process role (pool workers) wins; otherwise the service's
    dispatcher thread is recognized by its name, ``MainThread``
    becomes ``main``, and anything else keeps its thread name — which
    is already the most descriptive label available.
    """
    if _PROCESS_ROLE is not None:
        return _PROCESS_ROLE
    if "dispatcher" in name:
        return "dispatcher"
    if name == "MainThread":
        return "main"
    return name


def fold_frame(frame) -> str:
    """One stack, root first, as a collapsed-stack string."""
    parts: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}:{frame.f_lineno}")
        frame = frame.f_back
        depth += 1
    if frame is not None:
        parts.append("...")
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples every live thread's stack at ``hz`` on a daemon thread.

    >>> profiler = SamplingProfiler(hz=200).start()
    >>> _ = sum(i * i for i in range(2000000))
    >>> profiler.stop().stats()["samples"] > 0
    True
    >>> "main" in profiler.by_role()
    True
    """

    def __init__(
        self,
        hz: float = 97.0,
        current_query: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self._current_query = current_query
        # {(role, folded_stack): count}
        self._stacks: Dict[Tuple[str, str], int] = {}
        # {query_id: count}
        self._queries: Dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread; returns threads sampled.

        Usable without :meth:`start` (tests, one-shot inspection).
        """
        sampler_ids = set()
        if self._thread is not None:
            # Skip the sampler's own thread; an inline sample_once()
            # from any other thread still counts the caller.
            sampler_ids.add(self._thread.ident)
        names = {thread.ident: thread.name
                 for thread in threading.enumerate()}
        query = self._current_query() if self._current_query else None
        counted = 0
        frames = sys._current_frames()
        try:
            with self._lock:
                self._samples += 1
                for ident, frame in frames.items():
                    if ident in sampler_ids:
                        continue
                    role = thread_role(names.get(ident, f"tid-{ident}"))
                    key = (role, fold_frame(frame))
                    self._stacks[key] = self._stacks.get(key, 0) + 1
                    counted += 1
                if query is not None and counted:
                    self._queries[query] = (
                        self._queries.get(query, 0) + 1)
        finally:
            del frames  # frames hold references into every thread
        return counted

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def collapsed(self, role: Optional[str] = None) -> str:
        """The profile as collapsed-stack text (one ``stack count``
        line per distinct stack), optionally restricted to one role.

        Stacks are prefixed with their role so a single export stays
        flame-graphable while keeping dispatcher and worker time
        separable.
        """
        with self._lock:
            items = sorted(self._stacks.items(),
                           key=lambda item: -item[1])
        lines = []
        for (stack_role, stack), count in items:
            if role is not None and stack_role != role:
                continue
            lines.append(f"{stack_role};{stack} {count}")
        return "\n".join(lines)

    def by_role(self) -> Dict[str, int]:
        """Sample counts per thread role."""
        totals: Dict[str, int] = {}
        with self._lock:
            for (stack_role, _stack), count in self._stacks.items():
                totals[stack_role] = totals.get(stack_role, 0) + count
        return totals

    def by_query(self) -> Dict[str, int]:
        """Sample counts per in-flight query id (needs
        ``current_query``)."""
        with self._lock:
            return dict(self._queries)

    def stats(self) -> Dict[str, object]:
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        with self._lock:
            samples = self._samples
            distinct = len(self._stacks)
        return {
            "hz": self.hz,
            "samples": samples,
            "distinct_stacks": distinct,
            "elapsed_seconds": elapsed,
            "running": self._thread is not None,
        }

    def snapshot(self) -> Dict[str, object]:
        """The JSON payload ``GET /debug/profile`` returns."""
        return {
            "stats": self.stats(),
            "by_role": self.by_role(),
            "by_query": self.by_query(),
            "collapsed": self.collapsed(),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        state = "running" if stats["running"] else "stopped"
        return (f"SamplingProfiler({self.hz:g} Hz, {state}, "
                f"{stats['samples']} samples)")


def profile_for(
    seconds: float,
    hz: float = 97.0,
    current_query: Optional[Callable[[], Optional[str]]] = None,
) -> SamplingProfiler:
    """Run a profiler for ``seconds`` (blocking) and return it stopped.

    The one-call form behind ``GET /debug/profile?seconds=S``; the
    HTTP layer runs it off the event loop.
    """
    profiler = SamplingProfiler(hz=hz, current_query=current_query)
    with profiler:
        time.sleep(max(0.0, seconds))
    return profiler
