"""Trace and metrics exporters: Chrome trace JSON, span trees,
Prometheus text.

Three consumers, three formats:

* :func:`to_chrome_trace` — the Chrome trace-event JSON array format,
  loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``; every span becomes a complete (``"ph": "X"``)
  event on its process/thread track, so parent and pool-worker
  activity line up on one timeline;
* :func:`render_span_tree` — a human-readable tree for terminals,
  durations and key attributes inline;
* :func:`to_prometheus` — the Prometheus text exposition format for a
  :class:`repro.obs.metrics.Metrics` registry, histogram buckets as
  cumulative ``_bucket{le=...}`` series.

:func:`validate_chrome_trace` checks an exported event list against
the schema the CI smoke job (and any downstream tooling) relies on.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.trace import SpanRecord

#: Trace-event category for every span we emit.
_CATEGORY = "repro"


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------


def to_chrome_trace(records: Sequence[SpanRecord]) -> Dict[str, object]:
    """``records`` as a Chrome trace-event JSON object.

    Timestamps are microseconds of wall-clock time, so spans from
    different processes (pool workers) interleave correctly on the
    shared timeline; each distinct pid additionally gets a
    ``process_name`` metadata event so Perfetto labels the tracks.
    """
    import os

    events: List[Dict[str, object]] = []
    own_pid = os.getpid()
    for pid in sorted({record.pid for record in records}):
        label = "main" if pid == own_pid else f"worker-{pid}"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for record in records:
        events.append({
            "name": record.name,
            "cat": _CATEGORY,
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": dict(record.attributes),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: object) -> List[Dict[str, object]]:
    """Check ``payload`` against the trace-event schema we emit.

    Accepts either the full export object or a bare event list;
    returns the event list on success and raises :class:`ValueError`
    describing the first violation otherwise.  This is the CI smoke
    gate for ``--trace`` output.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    else:
        events = payload
    if not isinstance(events, list) or not events:
        raise ValueError("trace must contain a non-empty traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for field in ("name", "ph", "pid"):
            if field not in event:
                raise ValueError(f"event {index} lacks {field!r}")
        phase = event["ph"]
        if phase not in ("X", "M"):
            raise ValueError(
                f"event {index} has unsupported phase {phase!r}"
            )
        if phase == "X":
            for field in ("ts", "dur", "tid", "args"):
                if field not in event:
                    raise ValueError(f"event {index} lacks {field!r}")
            if event["dur"] < 0:
                raise ValueError(f"event {index} has negative duration")
    if not any(event["ph"] == "X" for event in events):
        raise ValueError("trace contains no complete (ph=X) span events")
    return events


# ----------------------------------------------------------------------
# Span-tree rendering
# ----------------------------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _format_attributes(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    rendered = " ".join(
        f"{key}={value}" for key, value in sorted(attributes.items())
    )
    return f"  [{rendered}]"


def render_span_tree(records: Sequence[SpanRecord]) -> str:
    """``records`` as an indented tree, one line per span.

    Children sort by start time under their parent; spans from worker
    processes are flagged with their pid.  Orphans (parents not in
    ``records``) render as roots.
    """
    import os

    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    known = {record.span_id for record in records}
    for record in records:
        parent = (record.parent_id
                  if record.parent_id in known else None)
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda record: (record.start, record.span_id))

    own_pid = os.getpid()
    lines: List[str] = []

    def render(record: SpanRecord, depth: int) -> None:
        indent = "  " * depth
        origin = f" (pid {record.pid})" if record.pid != own_pid else ""
        lines.append(
            f"{indent}{record.name:<{max(1, 24 - len(indent))}} "
            f"{_format_duration(record.duration):>9}{origin}"
            f"{_format_attributes(record.attributes)}"
        )
        for child in by_parent.get(record.span_id, ()):
            render(child, depth + 1)

    for root in by_parent.get(None, ()):
        render(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A legal Prometheus metric name (dots become underscores)."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_value(value: object) -> str:
    """A label value escaped per the text exposition format: backslash,
    double quote and newline are the three characters that must be
    escaped inside ``label="..."``."""
    return (str(value)
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n"))


def _prom_labels(labels: Dict[str, object],
                 extra: Optional[Dict[str, object]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    rendered = ",".join(
        f'{_prom_name(str(key))}="{_prom_label_value(merged[key])}"'
        for key in sorted(merged)
    )
    return f"{{{rendered}}}"


def to_prometheus(metrics: Metrics) -> str:
    """``metrics`` in the Prometheus text exposition format.

    Counters and gauges emit one sample each; histograms emit the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Instruments sharing a name (label variants) share one
    ``# TYPE`` header.
    """
    by_name: Dict[str, List[object]] = {}
    kinds: Dict[str, str] = {}
    for instrument in metrics.instruments():
        name = _prom_name(instrument.name)
        by_name.setdefault(name, []).append(instrument)
        kinds[name] = ("counter" if isinstance(instrument, Counter)
                       else "gauge" if isinstance(instrument, Gauge)
                       else "histogram")
    lines: List[str] = []
    for name in sorted(by_name):
        lines.append(f"# TYPE {name} {kinds[name]}")
        for instrument in by_name[name]:
            if isinstance(instrument, Histogram):
                cumulative = 0
                for index, bound in enumerate(instrument.buckets):
                    cumulative += instrument.counts[index]
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(instrument.labels, {'le': bound})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(instrument.labels, {'le': '+Inf'})}"
                    f" {instrument.count}"
                )
                labels = _prom_labels(instrument.labels)
                lines.append(f"{name}_sum{labels} {instrument.sum}")
                lines.append(f"{name}_count{labels} {instrument.count}")
            else:
                lines.append(
                    f"{name}{_prom_labels(instrument.labels)} "
                    f"{instrument.value}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
