"""Regex formulas: regular expressions with capture variables (Sec 4.1).

The grammar follows the paper::

    alpha ::= ! | ~ | sigma | (alpha|alpha) | alpha alpha | alpha* | x{alpha}

with the surface conventions of :mod:`repro.automata.regex` (``!`` the
empty language, ``~`` the empty word, ``.`` any letter, ``+``/``?``
postfix sugar) extended with the capture form ``x{...}`` where ``x`` is
an identifier.  The variable name is the *maximal* identifier run
directly before ``{``: ``ax{b}`` is a capture named ``ax``, not the
letter ``a`` followed by ``x{b}`` — write ``(a)x{b}`` or ``\\ax{b}``
for the latter.

A regex formula is *functional* when every generated ref-word is valid;
following the paper, the class ``RGX`` contains exactly the functional
formulas and :func:`compile_regex_formula` enforces this by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Tuple, Union

from repro.automata.nfa import EPSILON, NFA
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexNode,
    RegexParseError,
    Star,
    Union_,
)
from repro.spanners.refwords import Close, Open, gamma
from repro.spanners.vset_automaton import VSetAutomaton

Symbol = Hashable
Variable = Hashable

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


@dataclass(frozen=True, repr=False)
class Capture(RegexNode):
    """The capture form ``x{alpha}``."""

    variable: Variable
    inner: RegexNode

    def to_string(self) -> str:
        return f"{self.variable}{{{self.inner.to_string()}}}"


def svars(node: RegexNode) -> FrozenSet[Variable]:
    """``SVars(alpha)``: the set of capture variables occurring."""
    if isinstance(node, Capture):
        return svars(node.inner) | {node.variable}
    if isinstance(node, (Union_, Concat)):
        return svars(node.left) | svars(node.right)
    if isinstance(node, Star):
        return svars(node.inner)
    return frozenset()


def formula_size(node: RegexNode) -> int:
    """``|alpha|``: number of AST symbols."""
    if isinstance(node, Capture):
        return 1 + formula_size(node.inner)
    if isinstance(node, (Union_, Concat)):
        return 1 + formula_size(node.left) + formula_size(node.right)
    if isinstance(node, Star):
        return 1 + formula_size(node.inner)
    return 1


class _FormulaParser:
    """Recursive-descent parser with capture-variable lookahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self):
        return self.text[self.pos] if self.pos < len(self.text) else None

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def parse(self) -> RegexNode:
        node = self.parse_union()
        if self.pos != len(self.text):
            raise RegexParseError(
                f"unexpected {self.text[self.pos]!r} at position {self.pos}"
            )
        return node

    def parse_union(self) -> RegexNode:
        node = self.parse_concat()
        while self.peek() == "|":
            self.advance()
            node = Union_(node, self.parse_concat())
        return node

    def parse_concat(self) -> RegexNode:
        parts = []
        while True:
            char = self.peek()
            if char is None or char in ")|}":
                break
            parts.append(self.parse_postfix())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def parse_postfix(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.advance()
                node = Star(node)
            elif char == "+":
                self.advance()
                node = Concat(node, Star(node))
            elif char == "?":
                self.advance()
                node = Union_(node, Epsilon())
            else:
                return node

    def _try_capture(self):
        """Parse ``ident{...}`` if present, else return ``None``."""
        saved = self.pos
        if self.peek() not in _IDENT_START:
            return None
        name = [self.advance()]
        while self.peek() in _IDENT_CONT:
            name.append(self.advance())
        if self.peek() != "{":
            self.pos = saved
            return None
        self.advance()
        inner = self.parse_union()
        if self.peek() != "}":
            raise RegexParseError("unterminated capture group")
        self.advance()
        return Capture("".join(name), inner)

    def parse_atom(self) -> RegexNode:
        char = self.peek()
        if char is None:
            raise RegexParseError("unexpected end of pattern")
        capture = self._try_capture()
        if capture is not None:
            return capture
        if char == "(":
            self.advance()
            node = self.parse_union()
            if self.peek() != ")":
                raise RegexParseError("unbalanced parenthesis")
            self.advance()
            return node
        if char == "\\":
            self.advance()
            nxt = self.peek()
            if nxt is None:
                raise RegexParseError("dangling escape")
            self.advance()
            return Literal(nxt)
        if char == ".":
            self.advance()
            return AnySymbol()
        if char == "~":
            self.advance()
            return Epsilon()
        if char == "!":
            self.advance()
            return Empty()
        if char in "()|*+?{}":
            raise RegexParseError(f"unexpected metacharacter {char!r}")
        self.advance()
        return Literal(char)


def parse_regex_formula(pattern: str) -> RegexNode:
    """Parse a regex-formula string into its AST."""
    return _FormulaParser(pattern).parse()


def _compile(node: RegexNode, alphabet: FrozenSet[Symbol],
             variables: FrozenSet[Variable], counter: list) -> Tuple:
    """Thompson construction over the extended alphabet."""

    def fresh() -> int:
        counter[0] += 1
        return counter[0]

    if isinstance(node, Capture):
        states, initial, finals, transitions = _compile(
            node.inner, alphabet, variables, counter
        )
        q0, q1 = fresh(), fresh()
        transitions = list(transitions)
        transitions.append((q0, Open(node.variable), initial))
        for final in finals:
            transitions.append((final, Close(node.variable), q1))
        return states | {q0, q1}, q0, {q1}, transitions
    if isinstance(node, Empty):
        q = fresh()
        return {q}, q, set(), []
    if isinstance(node, Epsilon):
        q = fresh()
        return {q}, q, {q}, []
    if isinstance(node, Literal):
        if node.symbol not in alphabet:
            raise ValueError(f"literal {node.symbol!r} not in alphabet")
        q0, q1 = fresh(), fresh()
        return {q0, q1}, q0, {q1}, [(q0, node.symbol, q1)]
    if isinstance(node, AnySymbol):
        q0, q1 = fresh(), fresh()
        return {q0, q1}, q0, {q1}, [(q0, symbol, q1) for symbol in alphabet]
    if isinstance(node, Union_):
        ls, li, lf, lt = _compile(node.left, alphabet, variables, counter)
        rs, ri, rf, rt = _compile(node.right, alphabet, variables, counter)
        q0 = fresh()
        transitions = list(lt) + list(rt)
        transitions += [(q0, EPSILON, li), (q0, EPSILON, ri)]
        return ls | rs | {q0}, q0, lf | rf, transitions
    if isinstance(node, Concat):
        ls, li, lf, lt = _compile(node.left, alphabet, variables, counter)
        rs, ri, rf, rt = _compile(node.right, alphabet, variables, counter)
        transitions = list(lt) + list(rt) + [(f, EPSILON, ri) for f in lf]
        return ls | rs, li, rf, transitions
    if isinstance(node, Star):
        s, i, f, t = _compile(node.inner, alphabet, variables, counter)
        q0 = fresh()
        transitions = list(t) + [(q0, EPSILON, i)]
        transitions += [(x, EPSILON, q0) for x in f]
        return s | {q0}, q0, {q0}, transitions
    raise TypeError(f"unknown node {node!r}")


def compile_regex_formula(
    pattern: Union[str, RegexNode],
    alphabet: Iterable[Symbol],
    require_functional: bool = True,
) -> VSetAutomaton:
    """Compile a regex formula to a VSet-automaton.

    With ``require_functional=True`` (the paper's standing assumption
    for the class RGX) a :class:`ValueError` is raised when some
    generated ref-word is invalid, e.g. for ``(x{a})*``.
    """
    node = parse_regex_formula(pattern) if isinstance(pattern, str) else pattern
    alphabet = frozenset(alphabet)
    variables = svars(node)
    counter = [0]
    states, initial, finals, transitions = _compile(
        node, alphabet, variables, counter
    )
    extended = alphabet | gamma(variables)
    nfa = NFA(extended, states, initial, finals, transitions)
    automaton = VSetAutomaton(alphabet, variables, nfa)
    # Remember the source AST: the index subsystem harvests candidate
    # literal factors from it (repro.index.factors); automata built any
    # other way simply analyse their NFA paths instead.
    automaton.formula = node
    if require_functional and not automaton.is_functional():
        from repro.errors import NotFunctionalError

        raise NotFunctionalError(
            f"regex formula {node.to_string()!r} is not functional"
        )
    return automaton


def boolean_spanner(pattern: str, alphabet: Iterable[Symbol]) -> VSetAutomaton:
    """A 0-ary spanner testing membership in a classical regex language."""
    automaton = compile_regex_formula(pattern, alphabet)
    if automaton.variables:
        raise ValueError("boolean spanner must not contain captures")
    return automaton
