"""Determinism of VSet-automata (Sections 4.2 and 4.3).

The paper distinguishes *weakly deterministic* VSet-automata (no
epsilon transitions, at most one successor per symbol — the notion of
Maturana et al. [25]) from *deterministic* ones, which additionally
perform adjacent variable operations in a fixed total order.  Weak
determinism leaves enough nondeterminism to make containment
PSPACE-hard (Theorem 4.2); the stronger notion yields an NL containment
test (Theorem 4.3) and underlies all tractability results of Section 5.

:func:`determinize` implements Proposition 4.4: every VSet-automaton
has an equivalent deterministic *and functional* one.  The construction
goes through the canonical extended form (block symbols), applies the
subset construction there, and expands blocks back into sorted
operation chains.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Set

from repro.automata.nfa import EPSILON, NFA
from repro.spanners.refwords import VarOp
from repro.spanners.vset_automaton import (
    VSetAutomaton,
    from_extended_nfa,
)


def is_weakly_deterministic(automaton: VSetAutomaton) -> bool:
    """Maturana et al.'s determinism: no epsilon moves, and at most one
    successor for every (state, symbol) pair."""
    nfa = automaton.nfa
    for state in nfa.states:
        for symbol in nfa.symbols_from(state):
            if symbol is EPSILON:
                return False
            if len(nfa.successors(state, symbol)) > 1:
                return False
    return True


def is_deterministic(automaton: VSetAutomaton) -> bool:
    """The paper's stronger determinism (conditions (1) and (2)).

    Besides weak determinism, consecutive variable operations must
    respect the fixed total order: whenever ``q1 --v--> q2 --v'--> q3``
    with both labels in ``Gamma_V``, ``v < v'`` must hold.
    """
    if not is_weakly_deterministic(automaton):
        return False
    nfa = automaton.nfa
    for q1 in nfa.states:
        for v in nfa.symbols_from(q1):
            if not isinstance(v, VarOp):
                continue
            for q2 in nfa.successors(q1, v):
                for v2 in nfa.symbols_from(q2):
                    if isinstance(v2, VarOp) and not v < v2:
                        return False
    return True


def is_dfvsa(automaton: VSetAutomaton) -> bool:
    """Deterministic *and* functional — the class dfVSA of the paper."""
    return is_deterministic(automaton) and automaton.is_functional()


def _determinize_extended(extended: NFA) -> NFA:
    """Subset construction over the block alphabet.

    Only symbols actually present are considered; missing symbols lead
    to rejection anyway.  The result has at most one successor per
    block symbol.
    """
    start = extended.epsilon_closure({extended.initial})
    seen: Set[FrozenSet] = {start}
    queue = deque([start])
    transitions = []
    finals = set()
    while queue:
        subset = queue.popleft()
        if subset & extended.finals:
            finals.add(subset)
        symbols = set()
        for state in subset:
            symbols.update(
                s for s in extended.symbols_from(state) if s is not EPSILON
            )
        for symbol in symbols:
            target = extended.step(subset, symbol)
            if not target:
                continue
            transitions.append((subset, symbol, target))
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return NFA(extended.alphabet, seen, start, finals, transitions)


def determinize(automaton: VSetAutomaton) -> VSetAutomaton:
    """Proposition 4.4: an equivalent deterministic functional VSA.

    The output satisfies :func:`is_deterministic` and
    :func:`VSetAutomaton.is_functional`; semantics are preserved
    exactly (``A(d) == determinize(A)(d)`` for every document).
    """
    extended = automaton.extended_nfa()
    det = _determinize_extended(extended)
    result = from_extended_nfa(det, automaton.doc_alphabet,
                               automaton.variables)
    return result.relabel()


def lexicographic_normalize(automaton: VSetAutomaton) -> VSetAutomaton:
    """Equivalent functional VSA whose ref-words are operation-ordered.

    This is the normalization of Fagin et al.'s Lemma 4.9 (used inside
    the proof of Proposition 4.4) *without* the subset construction, so
    the result stays polynomial in the input but is generally still
    nondeterministic.
    """
    extended = automaton.extended_nfa()
    return from_extended_nfa(extended, automaton.doc_alphabet,
                             automaton.variables)


def dfvsa_contains(left: VSetAutomaton, right: VSetAutomaton,
                   check: bool = True) -> bool:
    """Theorem 4.3: containment of dfVSA in polynomial time (NL).

    For deterministic functional VSet-automata every output tuple has a
    unique, operation-ordered ref-word (Observation B.1), so spanner
    containment coincides with containment of the automata read as
    plain deterministic automata over ``Sigma + Gamma_V`` — decided by
    product-graph reachability.  With ``check=True`` the preconditions
    are verified first.
    """
    if left.variables != right.variables:
        raise ValueError("containment requires identical variable sets")
    if check:
        for name, automaton in (("left", left), ("right", right)):
            if not is_deterministic(automaton):
                raise ValueError(f"{name} operand is not deterministic")
            if not automaton.is_functional():
                raise ValueError(f"{name} operand is not functional")
    # Both automata are deterministic, so the generic subset-based
    # containment check degenerates to the product reachability of the
    # NL procedure: every subset it explores is a singleton (or empty).
    from repro.automata.containment import nfa_contains

    return nfa_contains(left.nfa, right.nfa)


def dfvsa_equivalent(left: VSetAutomaton, right: VSetAutomaton,
                     check: bool = True) -> bool:
    """Equivalence of dfVSA via two NL containment tests."""
    return dfvsa_contains(left, right, check) and dfvsa_contains(
        right, left, check
    )
