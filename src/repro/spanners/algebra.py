"""The regular spanner algebra (Appendix A, Fagin et al. [7]).

Regular spanners are the closure of regex formulas under union,
projection, and natural join; adding difference stays within the class
(Fagin et al., Theorem 4.12).  This module implements all four, plus
the concatenation of a spanner with a regular language (Lemma A.3),
which the proofs of Theorems 5.1 and 7.6 use to build
``Sigma* . x{P_S} . Sigma*``.

Union and concatenation operate directly on the underlying NFAs.  Join
and difference go through the canonical extended (block) form where a
position's variable operations are a single set-valued symbol; this
sidesteps the pitfalls of interleaving individual operation orders.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Set

from repro.automata.nfa import EPSILON, NFA
from repro.spanners.refwords import VarOp, gamma
from repro.spanners.vset_automaton import (
    END_MARKER,
    VSetAutomaton,
    from_extended_nfa,
)

Variable = Hashable
Symbol = Hashable


def union(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """``(P1 u P2)(d) = P1(d) u P2(d)``; requires union compatibility."""
    if left.variables != right.variables:
        raise ValueError("union requires identical variable sets")
    doc_alphabet = left.doc_alphabet | right.doc_alphabet
    lifted_left = _widen(left, doc_alphabet)
    lifted_right = _widen(right, doc_alphabet)
    return VSetAutomaton(
        doc_alphabet, left.variables, lifted_left.nfa.union(lifted_right.nfa)
    )


def _widen(
    automaton: VSetAutomaton, doc_alphabet: Iterable[Symbol]
) -> VSetAutomaton:
    """Re-type an automaton over a larger document alphabet."""
    doc_alphabet = frozenset(doc_alphabet)
    if doc_alphabet == automaton.doc_alphabet:
        return automaton
    alphabet = doc_alphabet | gamma(automaton.variables)
    nfa = NFA(
        alphabet,
        automaton.nfa.states,
        automaton.nfa.initial,
        automaton.nfa.finals,
        automaton.nfa.transitions(),
    )
    return VSetAutomaton(doc_alphabet, automaton.variables, nfa)


def project(
    automaton: VSetAutomaton, keep: Iterable[Variable]
) -> VSetAutomaton:
    """``pi_Y P``: restrict every output tuple to the variables ``Y``.

    Operations of dropped variables become epsilon moves — but only
    after filtering to valid ref-words, since a run that is invalid for
    the full variable set must not become accepting by erasure.
    """
    keep = frozenset(keep)
    if not keep <= automaton.variables:
        raise ValueError("projection variables must be a subset of SVars")
    base = automaton.valid_ref_nfa()
    transitions = []
    for source, symbol, target in base.transitions():
        if isinstance(symbol, VarOp) and symbol.variable not in keep:
            transitions.append((source, EPSILON, target))
        else:
            transitions.append((source, symbol, target))
    alphabet = automaton.doc_alphabet | gamma(keep)
    nfa = NFA(alphabet, base.states, base.initial, base.finals, transitions)
    return VSetAutomaton(automaton.doc_alphabet, keep, nfa)


def natural_join(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """``P1 |><| P2``: tuples over ``V1 u V2`` agreeing with both sides.

    Built as a product of the canonical extended forms: a joint block
    is consistent when the two operands' blocks agree on the operations
    of shared variables; the joint operation set is their union.
    """
    doc_alphabet = left.doc_alphabet | right.doc_alphabet
    shared = left.variables & right.variables
    shared_ops = gamma(shared)
    ext_left = _widen(left, doc_alphabet).extended_nfa()
    ext_right = _widen(right, doc_alphabet).extended_nfa()
    initial = (ext_left.initial, ext_right.initial)
    transitions = []
    finals: Set = set()
    seen = {initial}
    queue = deque([initial])
    alphabet: Set = set()
    while queue:
        p, q = queue.popleft()
        left_moves = _extended_moves(ext_left, p)
        right_moves = _extended_moves(ext_right, q)
        for (ops1, letter1), targets1 in left_moves.items():
            for (ops2, letter2), targets2 in right_moves.items():
                if letter1 != letter2:
                    continue
                if (ops1 & shared_ops) != (ops2 & shared_ops):
                    continue
                label = (ops1 | ops2, letter1)
                alphabet.add(label)
                for t1 in targets1:
                    for t2 in targets2:
                        target = (t1, t2)
                        transitions.append(((p, q), label, target))
                        if letter1 == END_MARKER:
                            finals.add(target)
                        if target not in seen:
                            seen.add(target)
                            queue.append(target)
    if not alphabet:
        alphabet = {(frozenset(), END_MARKER)}
    joined = NFA(alphabet, seen | finals, initial, finals, transitions)
    return from_extended_nfa(
        joined, doc_alphabet, left.variables | right.variables
    )


def _extended_moves(extended: NFA, state: Hashable):
    """Outgoing extended transitions of ``state`` grouped by label."""
    moves = {}
    for symbol in extended.symbols_from(state):
        if symbol is EPSILON:
            continue
        moves[symbol] = extended.successors(state, symbol)
    return moves


def intersect(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """Intersection of spanners with identical variable sets."""
    if left.variables != right.variables:
        raise ValueError("intersection requires identical variable sets")
    return natural_join(left, right)


def difference(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """``(P1 - P2)(d) = P1(d) - P2(d)``; requires union compatibility.

    Computed in the extended form as ``L1 /\\ complement(L2)``.  Plain
    complementation over the joint block alphabet is sound because
    ``L1`` contains only well-formed encodings.
    """
    if left.variables != right.variables:
        raise ValueError("difference requires identical variable sets")
    doc_alphabet = left.doc_alphabet | right.doc_alphabet
    ext_left = _widen(left, doc_alphabet).extended_nfa()
    ext_right = _widen(right, doc_alphabet).extended_nfa()
    alphabet = frozenset(ext_left.alphabet | ext_right.alphabet)
    widened_right = NFA(
        alphabet,
        ext_right.states,
        ext_right.initial,
        ext_right.finals,
        ext_right.transitions(),
    )
    complement = widened_right.to_dfa().complement().to_nfa()
    widened_left = NFA(
        alphabet,
        ext_left.states,
        ext_left.initial,
        ext_left.finals,
        ext_left.transitions(),
    )
    result = widened_left.product(complement).trim()
    return from_extended_nfa(result, doc_alphabet, left.variables)


def concat_language_left(
    language: NFA, automaton: VSetAutomaton
) -> VSetAutomaton:
    """The spanner ``L . P`` of Lemma A.3 (language prefix)."""
    doc_alphabet = automaton.doc_alphabet | language.alphabet
    widened = _widen(automaton, doc_alphabet)
    lifted = NFA(
        widened.nfa.alphabet,
        language.states,
        language.initial,
        language.finals,
        language.transitions(),
    )
    return VSetAutomaton(
        doc_alphabet, automaton.variables, lifted.concatenate(widened.nfa)
    )


def concat_language_right(
    automaton: VSetAutomaton, language: NFA
) -> VSetAutomaton:
    """The spanner ``P . L`` of Lemma A.3 (language suffix)."""
    doc_alphabet = automaton.doc_alphabet | language.alphabet
    widened = _widen(automaton, doc_alphabet)
    lifted = NFA(
        widened.nfa.alphabet,
        language.states,
        language.initial,
        language.finals,
        language.transitions(),
    )
    return VSetAutomaton(
        doc_alphabet, automaton.variables, widened.nfa.concatenate(lifted)
    )


def embed_in_context(
    automaton: VSetAutomaton,
    capture: Variable,
) -> VSetAutomaton:
    """The spanner ``Sigma* . x{P} . Sigma*`` used in Lemma C.1.

    Wraps ``P`` so that the whole match of ``P`` is additionally
    captured in the fresh variable ``capture`` while arbitrary context
    surrounds it.
    """
    if capture in automaton.variables:
        raise ValueError(f"variable {capture!r} already used by the spanner")
    wrapped = open_close_wrap(automaton, capture)
    sigma_star = _sigma_star_nfa(automaton.doc_alphabet)
    return concat_language_left(
        sigma_star, concat_language_right(wrapped, sigma_star)
    )


def _sigma_star_nfa(doc_alphabet: Iterable[Symbol]) -> NFA:
    from repro.automata.nfa import universal_nfa

    return universal_nfa(doc_alphabet)


def restrict_to_language(
    automaton: VSetAutomaton, language: NFA
) -> VSetAutomaton:
    """The spanner that agrees with ``P`` on ``L`` and is empty outside.

    Used for the "w.r.t. a regular language R" variants of Section 6
    and for splitters with filter (Section 7.2): the language automaton
    advances on document letters while variable operations and epsilon
    moves of the spanner leave it in place.
    """
    transitions = []
    for source, symbol, target in automaton.nfa.transitions():
        if symbol is EPSILON or isinstance(symbol, VarOp):
            for r in language.states:
                transitions.append(((source, r), symbol, (target, r)))
        else:
            for r_source, r_symbol, r_target in language.transitions():
                if r_symbol is EPSILON:
                    continue
                if r_symbol == symbol:
                    transitions.append(
                        ((source, r_source), symbol, (target, r_target))
                    )
    # Epsilon moves of the language automaton.
    for r_source, r_symbol, r_target in language.transitions():
        if r_symbol is EPSILON:
            for q in automaton.nfa.states:
                transitions.append(((q, r_source), EPSILON, (q, r_target)))
    initial = (automaton.nfa.initial, language.initial)
    finals = {
        (q, r)
        for q in automaton.nfa.finals
        for r in language.finals
    }
    nfa = NFA(automaton.nfa.alphabet, {initial} | finals, initial, finals,
              transitions).trim()
    return VSetAutomaton(automaton.doc_alphabet, automaton.variables, nfa)


def open_close_wrap(
    automaton: VSetAutomaton, capture: Variable
) -> VSetAutomaton:
    """The spanner ``x{P}``: additionally capture the whole match.

    A fresh initial state opens ``capture`` before ``P`` starts and a
    fresh final state closes it after ``P`` accepts (the construction
    ``P^x`` from the proof of Lemma C.1).
    """
    from repro.spanners.refwords import Close, Open

    if capture in automaton.variables:
        raise ValueError(f"variable {capture!r} already used by the spanner")
    variables = automaton.variables | {capture}
    alphabet = automaton.doc_alphabet | gamma(variables)
    new_initial = ("wrap-init",)
    new_final = ("wrap-final",)
    transitions = list(automaton.nfa.transitions())
    transitions.append((new_initial, Open(capture), automaton.nfa.initial))
    for final in automaton.nfa.finals:
        transitions.append((final, Close(capture), new_final))
    states = set(automaton.nfa.states) | {new_initial, new_final}
    nfa = NFA(alphabet, states, new_initial, {new_final}, transitions)
    return VSetAutomaton(automaton.doc_alphabet, variables, nfa)
