"""Variable-set automata (VSet-automata, Section 4.2).

A VSet-automaton is an epsilon-NFA over the extended alphabet
``Sigma + Gamma_V`` whose runs produce ref-words; the spanner it
represents maps a document ``d`` to the tuples of all *valid* accepted
ref-words that ``clr`` maps to ``d``.

The class below wraps an :class:`repro.automata.nfa.NFA` together with
the variable set and the document alphabet and provides:

* exact evaluation on documents (:meth:`VSetAutomaton.evaluate`), with
  the all-variables-closed collapse so runs whose remaining suffix is
  pure language acceptance cost a table lookup instead of a search;
* the validity filter and functionality test (Section 4.2);
* the *canonical extended form* used for spanner containment
  (Theorem 4.1): an NFA over block symbols ``(op-set, letter)`` in which
  two ref-words denoting the same (document, tuple) pair collapse to
  the same word.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.automata.nfa import EPSILON, NFA
from repro.core.spans import Span, SpanTuple
from repro.spanners.refwords import Close, Open, VarOp, gamma

Variable = Hashable
Symbol = Hashable

#: Sentinel letter closing the block encoding of a ref-word.
END_MARKER = ("end-of-document",)


class VSetAutomaton:
    """A document spanner represented as a VSet-automaton.

    ``nfa`` must be an NFA whose alphabet is exactly
    ``doc_alphabet | gamma(variables)``.
    """

    def __init__(
        self,
        doc_alphabet: Iterable[Symbol],
        variables: Iterable[Variable],
        nfa: NFA,
    ) -> None:
        self.doc_alphabet: FrozenSet[Symbol] = frozenset(doc_alphabet)
        self.variables: FrozenSet[Variable] = frozenset(variables)
        expected = self.doc_alphabet | gamma(self.variables)
        if nfa.alphabet != expected:
            raise ValueError(
                "underlying NFA alphabet must be doc alphabet plus "
                f"variable operations (got {set(nfa.alphabet) ^ set(expected)} "
                "as symmetric difference)"
            )
        self.nfa = nfa
        self._var_order: Optional[Tuple[Tuple, Dict]] = None
        self._compiled = None
        self._compiled_version: Optional[int] = None
        #: How many times this spanner was actually lowered (the
        #: runtime's artifact accounting reads the delta).
        self.lowerings = 0

    @property
    def variable_order(self) -> Tuple[Tuple, Dict]:
        """``(sorted variables, variable -> index)``, computed once.

        Every evaluation and the validity tracker consume the same
        fixed order; hoisting it here removes the per-call sort and
        index rebuild from the hot path.
        """
        if self._var_order is None:
            variables = tuple(sorted(self.variables, key=str))
            self._var_order = (
                variables, {var: k for k, var in enumerate(variables)}
            )
        return self._var_order

    def compiled(self):
        """The compiled evaluation artifact (integer/bitset kernel).

        Lowered at most once per underlying-NFA mutation epoch and
        shared by every evaluation of this spanner — the runtime's
        certified plans pin this artifact so pool workers never
        re-lower.  See :mod:`repro.automata.compiled`.
        """
        version = self.nfa._version
        if self._compiled is None or self._compiled_version != version:
            from repro.automata.compiled import compile_vset_automaton

            self._compiled = compile_vset_automaton(self)
            self._compiled_version = version
            self.lowerings += 1
        return self._compiled

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_language_nfa(
        cls, doc_alphabet: Iterable[Symbol], nfa: NFA
    ) -> "VSetAutomaton":
        """A Boolean (0-ary) spanner from a plain language NFA."""
        doc_alphabet = frozenset(doc_alphabet)
        lifted = NFA(doc_alphabet, nfa.states, nfa.initial, nfa.finals,
                     nfa.transitions())
        return cls(doc_alphabet, frozenset(), lifted)

    @classmethod
    def universal_spanner(
        cls,
        doc_alphabet: Iterable[Symbol],
        variables: Iterable[Variable],
    ) -> "VSetAutomaton":
        """The spanner ``P_V`` of Lemma 5.4: every tuple on every document.

        One state with self-loops on every letter and every variable
        operation, intersected with validity at use sites.
        """
        doc_alphabet = frozenset(doc_alphabet)
        variables = frozenset(variables)
        alphabet = doc_alphabet | gamma(variables)
        transitions = [(0, symbol, 0) for symbol in alphabet]
        return cls(doc_alphabet, variables,
                   NFA(alphabet, [0], 0, [0], transitions))

    def svars(self) -> FrozenSet[Variable]:
        """``SVars(A)``."""
        return self.variables

    @property
    def arity(self) -> int:
        return len(self.variables)

    def state_count(self) -> int:
        return len(self.nfa.states)

    def __repr__(self) -> str:
        return (
            f"VSetAutomaton(vars={sorted(map(str, self.variables))}, "
            f"states={len(self.nfa.states)})"
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, document: Sequence[Symbol]) -> Set[SpanTuple]:
        """The span relation ``A(d)``: exact enumeration of all tuples.

        Runs configurations ``(position, state_id, status)`` against
        the compiled kernel (:meth:`compiled`): per-state move tables
        over dense integer ids, with the suffix-acceptance collapse —
        as soon as every variable is closed the remaining run is pure
        language acceptance, answered by a table computed with backward
        bitset sweeps.  Agrees exactly with
        :meth:`evaluate_interpreted`.
        """
        self.check_document(document)
        return self.compiled().evaluate(document)

    def check_document(self, document: Sequence[Symbol]) -> None:
        """Reject documents with symbols outside the doc alphabet (the
        shared guard of every evaluation entry point)."""
        unknown = set(document) - self.doc_alphabet
        if unknown:
            symbol = next(iter(unknown))
            raise ValueError(f"document symbol {symbol!r} not in alphabet")

    def evaluate_interpreted(
        self, document: Sequence[Symbol]
    ) -> Set[SpanTuple]:
        """Reference evaluation over the dict-of-sets NFA tables.

        Configurations are ``(position, state, status)`` where status
        tracks, per variable, whether it is unopened, open since some
        position, or closed over a span.  Kept as the ground truth the
        compiled path is validated against (``tests/test_compiled.py``)
        and as the baseline the kernel benchmark measures.
        """
        variables, var_index = self.variable_order
        n = len(document)
        self.check_document(document)
        finishable = self._suffix_acceptance(document)
        initial_status: Tuple = tuple(None for _ in variables)

        def all_closed(status: Tuple) -> bool:
            return all(isinstance(part, Span) for part in status)

        results: Set[SpanTuple] = set()
        start = (0, self.nfa.initial, initial_status)
        seen = {start}
        queue = deque([start])
        while queue:
            pos, state, status = queue.popleft()
            if all_closed(status):
                if state in finishable[pos]:
                    results.add(
                        SpanTuple(dict(zip(variables, status)))
                    )
                continue
            for symbol in self.nfa.symbols_from(state):
                if symbol is EPSILON:
                    for target in self.nfa.successors(state, EPSILON):
                        config = (pos, target, status)
                        if config not in seen:
                            seen.add(config)
                            queue.append(config)
                elif isinstance(symbol, VarOp):
                    k = var_index.get(symbol.variable)
                    if k is None:
                        continue
                    part = status[k]
                    if symbol.is_close:
                        if not isinstance(part, int):
                            continue
                        new_part: object = Span(part, pos + 1)
                    else:
                        if part is not None:
                            continue
                        new_part = pos + 1
                    new_status = status[:k] + (new_part,) + status[k + 1 :]
                    for target in self.nfa.successors(state, symbol):
                        config = (pos, target, new_status)
                        if config not in seen:
                            seen.add(config)
                            queue.append(config)
                elif pos < n and symbol == document[pos]:
                    for target in self.nfa.successors(state, symbol):
                        config = (pos + 1, target, status)
                        if config not in seen:
                            seen.add(config)
                            queue.append(config)
        return results

    def _suffix_acceptance(
        self, document: Sequence[Symbol]
    ) -> List[FrozenSet]:
        """``finishable[p]``: states that can accept ``document[p:]``
        using only letters and epsilon moves (no variable operations)."""
        n = len(document)
        reverse_eps: Dict = {}
        for source, symbol, target in self.nfa.transitions():
            if symbol is EPSILON:
                reverse_eps.setdefault(target, []).append(source)

        def backward_eps_closure(states: Set) -> FrozenSet:
            closure = set(states)
            stack = list(states)
            while stack:
                state = stack.pop()
                for prev in reverse_eps.get(state, ()):
                    if prev not in closure:
                        closure.add(prev)
                        stack.append(prev)
            return frozenset(closure)

        tables: List[FrozenSet] = [frozenset()] * (n + 1)
        tables[n] = backward_eps_closure(set(self.nfa.finals))
        for pos in range(n - 1, -1, -1):
            symbol = document[pos]
            direct = {
                state
                for state in self.nfa.states
                if self.nfa.successors(state, symbol) & tables[pos + 1]
            }
            tables[pos] = backward_eps_closure(direct)
        return tables

    def match_language(self) -> NFA:
        """The NFA for ``L_P = {d : P(d) != {}}`` over the doc alphabet.

        Variable operations are projected to epsilon after filtering to
        valid ref-words, so acceptance coincides with non-empty output
        (Section 7.2's minimal filter language, Lemma 7.5).
        """
        valid = self.valid_ref_nfa()
        transitions = []
        for source, symbol, target in valid.transitions():
            if isinstance(symbol, VarOp):
                transitions.append((source, EPSILON, target))
            else:
                transitions.append((source, symbol, target))
        return NFA(
            self.doc_alphabet, valid.states, valid.initial, valid.finals,
            transitions,
        ).trim()

    # ------------------------------------------------------------------
    # Validity and functionality (Section 4.2)
    # ------------------------------------------------------------------

    def _validity_tracker(self) -> "NFA":
        """Deterministic tracker of per-variable status over ``Gamma_V``.

        States are tuples of statuses in {0: unopened, 1: open,
        2: closed}; illegal operations have no transition, and the
        accepting state is all-closed.  Size ``3^|V|`` — the variable
        sets in the framework are tiny.
        """
        variables, _ = self.variable_order
        alphabet = self.doc_alphabet | gamma(self.variables)
        initial = tuple(0 for _ in variables)
        transitions = []
        states = set()
        queue = deque([initial])
        states.add(initial)
        while queue:
            status = queue.popleft()
            for symbol in self.doc_alphabet:
                transitions.append((status, symbol, status))
            for k, var in enumerate(variables):
                if status[k] == 0:
                    nxt = status[:k] + (1,) + status[k + 1 :]
                    transitions.append((status, Open(var), nxt))
                elif status[k] == 1:
                    nxt = status[:k] + (2,) + status[k + 1 :]
                    transitions.append((status, Close(var), nxt))
                else:
                    continue
                if nxt not in states:
                    states.add(nxt)
                    queue.append(nxt)
        finals = {tuple(2 for _ in variables)}
        return NFA(alphabet, states, initial, finals, transitions)

    def valid_ref_nfa(self) -> NFA:
        """The NFA accepting ``Ref(A)``: valid accepted ref-words only."""
        return self.nfa.product(self._validity_tracker()).trim()

    def is_functional(self) -> bool:
        """Whether every accepted ref-word is valid (``R(A) = Ref(A)``)."""
        tracker = self._validity_tracker()
        # Make the tracker total, flip finals, and look for an accepted
        # invalid ref-word.
        sink = ("invalid-sink",)
        alphabet = tracker.alphabet
        transitions = list(tracker.transitions())
        states = set(tracker.states) | {sink}
        for state in tracker.states:
            present = {
                symbol
                for symbol in tracker.symbols_from(state)
                if symbol is not EPSILON
            }
            for symbol in alphabet - present:
                transitions.append((state, symbol, sink))
        for symbol in alphabet:
            transitions.append((sink, symbol, sink))
        complement_finals = (states - tracker.finals) | {sink}
        invalid = NFA(alphabet, states, tracker.initial, complement_finals,
                      transitions)
        return self.nfa.product_is_empty(invalid)

    def to_functional(self) -> "VSetAutomaton":
        """An equivalent functional VSet-automaton (validity filter)."""
        return VSetAutomaton(self.doc_alphabet, self.variables,
                             self.valid_ref_nfa())

    # ------------------------------------------------------------------
    # Canonical extended form (Theorem 4.1 machinery)
    # ------------------------------------------------------------------

    def _gamma_reach(
        self, base: NFA
    ) -> Dict[Tuple[Hashable, FrozenSet[VarOp]], Set[Hashable]]:
        """For each state ``p``: which states are reachable via variable
        operations and epsilon moves, grouped by the exact op-set used.

        ``base`` must already be validity-filtered, so no operation can
        repeat along a path and the op-sets stay small.
        """
        reach: Dict[Tuple[Hashable, FrozenSet[VarOp]], Set[Hashable]] = {}
        for origin in base.states:
            seen = {(origin, frozenset())}
            queue = deque(seen)
            while queue:
                state, ops = queue.popleft()
                reach.setdefault((origin, ops), set()).add(state)
                for symbol in base.symbols_from(state):
                    if symbol is EPSILON:
                        item = (state, ops)
                        for target in base.successors(state, EPSILON):
                            item = (target, ops)
                            if item not in seen:
                                seen.add(item)
                                queue.append(item)
                    elif isinstance(symbol, VarOp):
                        if symbol in ops:
                            continue
                        new_ops = ops | {symbol}
                        for target in base.successors(state, symbol):
                            item = (target, new_ops)
                            if item not in seen:
                                seen.add(item)
                                queue.append(item)
        return reach

    def extended_nfa(self) -> NFA:
        """The canonical block-form NFA of the spanner.

        Words are sequences ``(O_0, s_1)(O_1, s_2)...(O_{n-1}, s_n)
        (O_n, END)`` where ``O_k`` is the set of variable operations
        performed between letters.  Two valid ref-words denote the same
        (document, tuple) pair iff their block encodings coincide, so
        spanner containment is language containment of these NFAs.
        """
        base = self.valid_ref_nfa().trim()
        reach = self._gamma_reach(base)
        accept = ("ext-accept",)
        transitions = []
        alphabet = set()
        for (origin, ops), mids in reach.items():
            for mid in mids:
                for symbol in base.symbols_from(mid):
                    if symbol is EPSILON or isinstance(symbol, VarOp):
                        continue
                    label = (ops, symbol)
                    alphabet.add(label)
                    for target in base.successors(mid, symbol):
                        transitions.append((origin, label, target))
                if mid in base.finals:
                    label = (ops, END_MARKER)
                    alphabet.add(label)
                    transitions.append((origin, label, accept))
        states = set(base.states) | {accept}
        return NFA(alphabet, states, base.initial, {accept}, transitions).trim()

    # ------------------------------------------------------------------

    def rename_variables(
        self, mapping: Mapping[Variable, Variable]
    ) -> "VSetAutomaton":
        """Rename variables; ``mapping`` must be injective on ``V``."""
        new_vars = {mapping.get(v, v) for v in self.variables}
        if len(new_vars) != len(self.variables):
            raise ValueError("variable renaming must be injective")

        def rename(symbol: Symbol) -> Symbol:
            if isinstance(symbol, VarOp) and symbol.variable in mapping:
                return VarOp(mapping[symbol.variable], symbol.is_close)
            return symbol

        alphabet = self.doc_alphabet | gamma(new_vars)
        transitions = [
            (source, rename(symbol) if symbol is not EPSILON else EPSILON, target)
            for source, symbol, target in self.nfa.transitions()
        ]
        nfa = NFA(alphabet, self.nfa.states, self.nfa.initial,
                  self.nfa.finals, transitions)
        return VSetAutomaton(self.doc_alphabet, new_vars, nfa)

    def relabel(self) -> "VSetAutomaton":
        """Rename states to small integers (see :meth:`NFA.relabel`)."""
        return VSetAutomaton(self.doc_alphabet, self.variables,
                             self.nfa.relabel())

    def trim(self) -> "VSetAutomaton":
        return VSetAutomaton(self.doc_alphabet, self.variables,
                             self.nfa.trim())


def from_extended_nfa(
    extended: NFA,
    doc_alphabet: Iterable[Symbol],
    variables: Iterable[Variable],
) -> VSetAutomaton:
    """Rebuild a VSet-automaton from a block-form (extended) NFA.

    Each block symbol ``(O, s)`` is expanded into a chain that performs
    the operations of ``O`` in the fixed total order and then reads
    ``s``; chains leaving the same state share prefixes (a trie), which
    preserves determinism of the extended automaton and guarantees the
    ordered-operations property of Section 4.2.
    """
    doc_alphabet = frozenset(doc_alphabet)
    variables = frozenset(variables)
    alphabet = doc_alphabet | gamma(variables)
    transitions: List[Tuple] = []
    finals: Set = set()
    states: Set = set()

    def node(state: Hashable, prefix: Tuple[VarOp, ...]) -> Hashable:
        return state if not prefix else ("chain", state, prefix)

    for source, label, target in extended.transitions():
        if label is EPSILON:
            transitions.append((node(source, ()), EPSILON, node(target, ())))
            continue
        ops, letter = label
        sorted_ops = tuple(sorted(ops))
        prefix: Tuple[VarOp, ...] = ()
        for op in sorted_ops:
            here = node(source, prefix)
            nxt = node(source, prefix + (op,))
            transitions.append((here, op, nxt))
            states.update((here, nxt))
            prefix = prefix + (op,)
        tail = node(source, sorted_ops)
        states.add(tail)
        if letter == END_MARKER:
            finals.add(tail)
        else:
            transitions.append((tail, letter, node(target, ())))
            states.add(node(target, ()))
    states.add(extended.initial)
    nfa = NFA(alphabet, states, extended.initial, finals, transitions)
    return VSetAutomaton(doc_alphabet, variables, nfa).trim()
