"""Spanner containment and equivalence (Theorem 4.1).

Containment asks whether ``A(d) <= A'(d)`` for every document.  Two
valid ref-words denote the same (document, tuple) pair exactly when
their block decompositions agree, so the decision reduces to language
containment of the canonical extended NFAs
(:meth:`repro.spanners.vset_automaton.VSetAutomaton.extended_nfa`),
decided by the on-the-fly subset search of
:mod:`repro.automata.containment` — the PSPACE procedure.  The
automata are *not* required to be functional: the extended form filters
to valid ref-words first, matching the paper's semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.automata.containment import (
    containment_counterexample,
    nfa_contains,
)
from repro.spanners.refwords import VarOp
from repro.spanners.vset_automaton import END_MARKER, VSetAutomaton


def spanner_contains(left: VSetAutomaton, right: VSetAutomaton) -> bool:
    """Decide ``left(d) <= right(d)`` for all documents ``d``."""
    if left.variables != right.variables:
        raise ValueError(
            "containment requires identical variable sets "
            f"({sorted(map(str, left.variables))} vs "
            f"{sorted(map(str, right.variables))})"
        )
    return nfa_contains(left.extended_nfa(), right.extended_nfa())


def spanner_equivalent(left: VSetAutomaton, right: VSetAutomaton) -> bool:
    """Decide ``left(d) == right(d)`` for all documents ``d``."""
    return spanner_contains(left, right) and spanner_contains(right, left)


def containment_witness(
    left: VSetAutomaton, right: VSetAutomaton
) -> Optional[Tuple[Tuple, "object"]]:
    """A ``(document, tuple)`` pair in ``left`` but not ``right``.

    Returns ``None`` when the containment holds.  The witness document
    is returned as a tuple of symbols; the tuple as a
    :class:`repro.core.spans.SpanTuple`.
    """
    word = containment_counterexample(left.extended_nfa(),
                                      right.extended_nfa())
    if word is None:
        return None
    return decode_extended_word(word)


def equivalence_witness(
    left: VSetAutomaton, right: VSetAutomaton
) -> Optional[Tuple[Tuple, "object"]]:
    """A ``(document, tuple)`` pair on which the spanners differ."""
    witness = containment_witness(left, right)
    if witness is not None:
        return witness
    return containment_witness(right, left)


def decode_extended_word(word: Sequence) -> Tuple[Tuple, "object"]:
    """Convert a block-form word back to ``(document, SpanTuple)``.

    Inverse of the encoding produced by
    :meth:`VSetAutomaton.extended_nfa`; used to turn containment
    counterexamples into human-readable witnesses.
    """
    from repro.spanners.refwords import tuple_of

    refword = []
    variables = set()
    for ops, letter in word:
        for op in sorted(ops):
            refword.append(op)
            variables.add(op.variable)
        if letter != END_MARKER:
            refword.append(letter)
    document = tuple(s for s in refword if not isinstance(s, VarOp))
    return document, tuple_of(refword, variables)
