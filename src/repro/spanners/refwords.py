"""Ref-words: documents extended with variable operations (Section 4).

A ref-word over variables ``V`` is a word over ``Sigma + Gamma_V`` where
``Gamma_V = {x|- , -|x : x in V}`` encodes the opening and closing of
capture variables.  A ref-word is *valid* when every variable is opened
exactly once and closed exactly once, after its opening.  Valid
ref-words are in correspondence with (document, tuple) pairs via the
``clr`` morphism and the factorization of Section 4; this module
implements that correspondence plus the fixed total order on variable
operations that the paper's notion of determinism relies on
(Section 4.2: ``v|- < -|v`` for every variable ``v``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Tuple,
)

from repro.core.spans import Span, SpanTuple

Variable = Hashable
Symbol = Hashable


@dataclass(frozen=True, order=False)
class VarOp:
    """A variable operation: ``Open(x)`` is ``x|-``, ``Close(x)`` is ``-|x``."""

    variable: Variable
    is_close: bool

    def __repr__(self) -> str:
        return f"-|{self.variable}" if self.is_close else f"{self.variable}|-"

    @property
    def order_key(self) -> Tuple[str, int]:
        """Key realizing the paper's fixed total order on ``Gamma``.

        Operations are ordered primarily by variable name and then open
        before close, so ``v|- < -|v`` holds for every variable as
        required by determinism condition (2).
        """
        return (str(self.variable), int(self.is_close))

    def __lt__(self, other: "VarOp") -> bool:
        return self.order_key < other.order_key

    def __le__(self, other: "VarOp") -> bool:
        return self.order_key <= other.order_key


def Open(variable: Variable) -> VarOp:
    """The opening operation ``x|-``."""
    return VarOp(variable, False)


def Close(variable: Variable) -> VarOp:
    """The closing operation ``-|x``."""
    return VarOp(variable, True)


def gamma(variables: Iterable[Variable]) -> FrozenSet[VarOp]:
    """The operation alphabet ``Gamma_V``."""
    ops = set()
    for variable in variables:
        ops.add(Open(variable))
        ops.add(Close(variable))
    return frozenset(ops)


def clr(refword: Sequence[Symbol]) -> Tuple[Symbol, ...]:
    """The ``clr`` morphism: erase all variable operations.

    >>> clr(("a", Open("x"), "b", Close("x")))
    ('a', 'b')
    """
    return tuple(symbol for symbol in refword if not isinstance(symbol, VarOp))


def clr_string(refword: Sequence[Symbol]) -> str:
    """Like :func:`clr` but joining single-character symbols to a string."""
    return "".join(str(s) for s in refword if not isinstance(s, VarOp))


def is_valid(refword: Sequence[Symbol], variables: Iterable[Variable]) -> bool:
    """Whether the ref-word is valid for ``variables``.

    Every variable must be opened exactly once and closed exactly once,
    with the close after the open.
    """
    expected = set(variables)
    opened: Dict[Variable, int] = {}
    closed: Dict[Variable, int] = {}
    for index, symbol in enumerate(refword):
        if not isinstance(symbol, VarOp):
            continue
        var = symbol.variable
        if var not in expected:
            return False
        if symbol.is_close:
            if var in closed or var not in opened:
                return False
            closed[var] = index
        else:
            if var in opened:
                return False
            opened[var] = index
    return set(opened) == expected and set(closed) == expected


def tuple_of(
    refword: Sequence[Symbol], variables: Iterable[Variable]
) -> SpanTuple:
    """The ``(V, d)``-tuple ``t_r`` encoded by a valid ref-word.

    Implements the factorization of Section 4: ``t_r(x) = [i, j>`` with
    ``i = |clr(r_pre)| + 1`` and ``j = i + |clr(r_x)|``.

    >>> tuple_of(("a", Open("x"), "b", Close("x")), {"x"})
    SpanTuple({'x': Span(2, 3)})
    """
    variables = set(variables)
    if not is_valid(refword, variables):
        raise ValueError(f"ref-word {refword!r} is not valid for {variables!r}")
    assignment: Dict[Variable, Span] = {}
    position = 1
    open_positions: Dict[Variable, int] = {}
    for symbol in refword:
        if isinstance(symbol, VarOp):
            if symbol.is_close:
                assignment[symbol.variable] = Span(
                    open_positions[symbol.variable], position
                )
            else:
                open_positions[symbol.variable] = position
        else:
            position += 1
    return SpanTuple(assignment)


def canonical_refword(
    document: Sequence[Symbol], span_tuple: SpanTuple
) -> Tuple[Symbol, ...]:
    """The unique *ordered* ref-word for ``(document, span_tuple)``.

    At every document gap the variable operations are sorted by the
    fixed total order; this is the ref-word a deterministic
    VSet-automaton (Section 4.2) would produce (cf. Observation B.1).

    >>> canonical_refword("ab", SpanTuple({"x": Span(2, 3)}))
    ('a', x|-, 'b', -|x)
    """
    n = len(document)
    ops_at: Dict[int, List[VarOp]] = {}
    for variable in span_tuple:
        span = span_tuple[variable]
        if span.end > n + 1:
            raise ValueError(f"{span!r} is not a span of the document")
        ops_at.setdefault(span.begin, []).append(Open(variable))
        ops_at.setdefault(span.end, []).append(Close(variable))
    result: List[Symbol] = []
    for gap in range(1, n + 2):
        result.extend(sorted(ops_at.get(gap, [])))
        if gap <= n:
            result.append(document[gap - 1])
    return tuple(result)


def block_decomposition(
    refword: Sequence[Symbol],
) -> Tuple[Tuple[FrozenSet[VarOp], ...], Tuple[Symbol, ...]]:
    """Split a ref-word into operation blocks around document letters.

    Returns ``(blocks, letters)`` where ``len(blocks) == len(letters)+1``
    and block ``k`` holds the set of operations performed between
    letters ``k`` and ``k+1``.  Two valid ref-words denote the same
    (document, tuple) pair iff they have identical decompositions; this
    is the canonical form behind the containment procedure of
    Theorem 4.1.
    """
    blocks: List[FrozenSet[VarOp]] = []
    letters: List[Symbol] = []
    current: List[VarOp] = []
    for symbol in refword:
        if isinstance(symbol, VarOp):
            current.append(symbol)
        else:
            blocks.append(frozenset(current))
            current = []
            letters.append(symbol)
    blocks.append(frozenset(current))
    return tuple(blocks), tuple(letters)


def enumerate_valid_refwords(
    document: Sequence[Symbol], variables: Sequence[Variable]
) -> Iterable[Tuple[Symbol, ...]]:
    """All canonical valid ref-words over ``document`` (one per tuple).

    This realizes ``Ref(d)`` up to operation reordering; it is the
    brute-force ground truth the test-suite uses on bounded documents.
    """
    from itertools import product as iproduct

    from repro.core.spans import all_spans

    variables = sorted(set(variables), key=str)
    spans = list(all_spans("".join(str(s) for s in document)))
    for combo in iproduct(spans, repeat=len(variables)):
        assignment = dict(zip(variables, combo))
        yield canonical_refword(document, SpanTuple(assignment))
