"""Non-recursive spanner Datalog (the paper's third formalism, [8]).

Section 1 recalls that regular spanners are equally expressible as
non-recursive Datalog over regex formulas (Fagin et al. [8]); systems
such as Xlog expose exactly this interface.  This module provides it
as a thin declarative layer over the algebra:

* *base* (EDB) predicates are regex formulas or VSet-automata with an
  ordered schema of span attributes;
* *rules* derive IDB predicates: the body is a join of atoms
  (optionally negated, with safe negation), the head projects onto the
  head attributes;
* several rules with the same head predicate are a union;
* programs must be non-recursive; compilation proceeds bottom-up along
  the dependency order and yields one VSet-automaton per predicate, so
  every decision procedure of the framework (split-correctness,
  splittability, ...) applies to entire Datalog programs.

Example::

    program = DatalogProgram(alphabet)
    program.base("token", ["t"], token_spanner)
    program.base("caps",  ["c"], caps_spanner)
    program.rule("name", ["c"], [atom("caps", ["c"]), atom("token", ["c"])])
    name_spanner = program.compile("name")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.spanners.algebra import difference, natural_join, project, union
from repro.spanners.vset_automaton import VSetAutomaton

Variable = Hashable


@dataclass(frozen=True)
class Atom:
    """An occurrence of a predicate with positional variable bindings.

    ``variables[i]`` binds the ``i``-th attribute of the predicate's
    schema; repeating a variable joins the attributes (equality).
    ``negated`` atoms subtract matching tuples (safe negation: their
    variables must also occur positively in the rule body).
    """

    predicate: str
    variables: Tuple[Variable, ...]
    negated: bool = False


def atom(predicate: str, variables: Sequence[Variable],
         negated: bool = False) -> Atom:
    """Convenience constructor for :class:`Atom`."""
    return Atom(predicate, tuple(variables), negated)


@dataclass(frozen=True)
class Rule:
    head: str
    head_variables: Tuple[Variable, ...]
    body: Tuple[Atom, ...]


class DatalogError(ValueError):
    """Malformed programs: recursion, unsafe rules, schema mismatches."""


class DatalogProgram:
    """A non-recursive spanner Datalog program."""

    def __init__(self, alphabet: Iterable[str]) -> None:
        self.alphabet = frozenset(alphabet)
        self._base: Dict[str, Tuple[Tuple[Variable, ...], VSetAutomaton]] = {}
        self._rules: Dict[str, List[Rule]] = {}
        self._compiled: Dict[str, VSetAutomaton] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------

    def base(
        self,
        name: str,
        schema: Sequence[Variable],
        spanner: VSetAutomaton,
    ) -> None:
        """Register an EDB predicate with an ordered schema.

        ``schema`` must name exactly the spanner's variables; it fixes
        the positional meaning of atoms over the predicate.
        """
        if name in self._base or name in self._rules:
            raise DatalogError(f"predicate {name!r} already defined")
        if frozenset(schema) != spanner.variables:
            raise DatalogError(
                f"schema {list(schema)} does not match the spanner's "
                f"variables {sorted(map(str, spanner.variables))}"
            )
        if len(set(schema)) != len(tuple(schema)):
            raise DatalogError("schema attributes must be distinct")
        self._base[name] = (tuple(schema), spanner)
        self._compiled.pop(name, None)

    def rule(
        self,
        head: str,
        head_variables: Sequence[Variable],
        body: Sequence[Atom],
    ) -> None:
        """Add a rule ``head(head_variables) :- body``."""
        if head in self._base:
            raise DatalogError(f"{head!r} is a base predicate")
        if not body:
            raise DatalogError("rules need a non-empty body")
        positive = [a for a in body if not a.negated]
        if not positive:
            raise DatalogError("rules need at least one positive atom")
        positive_vars = {v for a in positive for v in a.variables}
        for negated_atom in (a for a in body if a.negated):
            if not set(negated_atom.variables) <= positive_vars:
                raise DatalogError(
                    "unsafe negation: variables of a negated atom must "
                    "occur in a positive atom"
                )
        if not set(head_variables) <= positive_vars:
            raise DatalogError("head variables must occur in the body")
        if len(set(head_variables)) != len(tuple(head_variables)):
            raise DatalogError("head attributes must be distinct")
        new_rule = Rule(head, tuple(head_variables), tuple(body))
        self._rules.setdefault(head, []).append(new_rule)
        self._compiled.clear()

    def schema(self, predicate: str) -> Tuple[Variable, ...]:
        if predicate in self._base:
            return self._base[predicate][0]
        if predicate in self._rules:
            return self._rules[predicate][0].head_variables
        raise DatalogError(f"unknown predicate {predicate!r}")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def compile(self, predicate: str) -> VSetAutomaton:
        """The VSet-automaton for ``predicate`` (bottom-up, memoized)."""
        return self._compile(predicate, stack=())

    def evaluate(self, predicate: str, document: str):
        """Evaluate ``predicate`` on a document."""
        return self.compile(predicate).evaluate(document)

    def _compile(self, predicate: str, stack: Tuple[str, ...]):
        if predicate in self._compiled:
            return self._compiled[predicate]
        if predicate in stack:
            cycle = " -> ".join(stack + (predicate,))
            raise DatalogError(f"recursive program: {cycle}")
        if predicate in self._base:
            result = self._base[predicate][1]
        elif predicate in self._rules:
            rules = self._rules[predicate]
            head_schema = rules[0].head_variables
            compiled: Optional[VSetAutomaton] = None
            for r in rules:
                if len(r.head_variables) != len(head_schema):
                    raise DatalogError(
                        f"rules for {predicate!r} disagree on arity"
                    )
                body_spanner = self._compile_rule(r, stack + (predicate,))
                aligned = body_spanner.rename_variables(
                    dict(zip(r.head_variables, head_schema))
                )
                compiled = (aligned if compiled is None
                            else union(compiled, aligned))
            result = compiled
        else:
            raise DatalogError(f"unknown predicate {predicate!r}")
        self._compiled[predicate] = result
        return result

    def _atom_spanner(self, a: Atom, stack) -> VSetAutomaton:
        base = self._compile(a.predicate, stack)
        schema = self.schema(a.predicate)
        if len(a.variables) != len(schema):
            raise DatalogError(
                f"atom {a.predicate!r} expects {len(schema)} variables, "
                f"got {len(a.variables)}"
            )
        # Repeated variables in an atom mean equality of attributes:
        # realized by renaming both schema positions to the same rule
        # variable — but renaming must be injective, so route through
        # fresh intermediates and join.
        binding: Dict[Variable, Variable] = {}
        duplicates: List[Tuple[Variable, Variable]] = []
        for position, rule_var in zip(schema, a.variables):
            if rule_var in binding.values():
                fresh = ("dup", a.predicate, position)
                binding[position] = fresh
                duplicates.append((fresh, rule_var))
            else:
                binding[position] = rule_var
        spanner = base.rename_variables(binding)
        for fresh, rule_var in duplicates:
            # Equality via join with itself on the shared variable.
            spanner = _equate(spanner, fresh, rule_var)
        return spanner

    def _compile_rule(self, r: Rule, stack) -> VSetAutomaton:
        positive = [a for a in r.body if not a.negated]
        negative = [a for a in r.body if a.negated]
        joined: Optional[VSetAutomaton] = None
        for a in positive:
            spanner = self._atom_spanner(a, stack)
            joined = spanner if joined is None else natural_join(joined,
                                                                 spanner)
        assert joined is not None
        for a in negative:
            negated_spanner = self._atom_spanner(a, stack)
            # Safety makes the join's variable set equal to the
            # positive part's, so the difference is union-compatible:
            # remove every tuple that agrees with some negated match.
            matching = natural_join(joined, negated_spanner)
            joined = difference(joined, matching)
        return project(joined, frozenset(r.head_variables))


def _equate(spanner: VSetAutomaton, duplicate: Variable,
            original: Variable) -> VSetAutomaton:
    """Keep tuples where ``duplicate`` and ``original`` mark the same
    span; drop the duplicate attribute.

    Span equality is itself a regular spanner — nested captures select
    identical spans — so equality is a join with
    ``Sigma* original{duplicate{Sigma*}} Sigma*`` followed by a
    projection.
    """
    from repro.automata.regex import Star
    from repro.splitters.builders import char_class, seq
    from repro.spanners.regex_formulas import Capture, compile_regex_formula

    any_char = char_class(spanner.doc_alphabet)
    equal_spans = compile_regex_formula(
        seq(Star(any_char),
            Capture(original, Capture(duplicate, Star(any_char))),
            Star(any_char)),
        spanner.doc_alphabet,
    )
    joined = natural_join(spanner, equal_spans)
    return project(joined, spanner.variables - {duplicate})
