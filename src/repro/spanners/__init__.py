"""Document spanners: ref-words, regex formulas, VSet-automata, algebra.

This subpackage is the substrate of Section 4 of the paper — the
representation formalisms for regular spanners and their decision
procedures (evaluation, functionality, determinism, containment).
"""

from repro.spanners.refwords import (
    Close,
    Open,
    VarOp,
    canonical_refword,
    clr,
    clr_string,
    gamma,
    is_valid,
    tuple_of,
)
from repro.spanners.vset_automaton import (
    END_MARKER,
    VSetAutomaton,
    from_extended_nfa,
)
from repro.spanners.regex_formulas import (
    Capture,
    boolean_spanner,
    compile_regex_formula,
    formula_size,
    parse_regex_formula,
    svars,
)
from repro.spanners.determinism import (
    determinize,
    dfvsa_contains,
    dfvsa_equivalent,
    is_deterministic,
    is_dfvsa,
    is_weakly_deterministic,
    lexicographic_normalize,
)
from repro.spanners.containment import (
    containment_witness,
    equivalence_witness,
    spanner_contains,
    spanner_equivalent,
)
from repro.spanners.datalog import (
    Atom,
    DatalogError,
    DatalogProgram,
    atom,
)
from repro.spanners.algebra import (
    concat_language_left,
    concat_language_right,
    difference,
    embed_in_context,
    intersect,
    natural_join,
    open_close_wrap,
    project,
    union,
)

__all__ = [
    "Atom",
    "DatalogError",
    "DatalogProgram",
    "atom",
    "Close",
    "Open",
    "VarOp",
    "canonical_refword",
    "clr",
    "clr_string",
    "gamma",
    "is_valid",
    "tuple_of",
    "END_MARKER",
    "VSetAutomaton",
    "from_extended_nfa",
    "Capture",
    "boolean_spanner",
    "compile_regex_formula",
    "formula_size",
    "parse_regex_formula",
    "svars",
    "determinize",
    "dfvsa_contains",
    "dfvsa_equivalent",
    "is_deterministic",
    "is_dfvsa",
    "is_weakly_deterministic",
    "lexicographic_normalize",
    "containment_witness",
    "equivalence_witness",
    "spanner_contains",
    "spanner_equivalent",
    "concat_language_left",
    "concat_language_right",
    "difference",
    "embed_in_context",
    "intersect",
    "natural_join",
    "open_close_wrap",
    "project",
    "union",
]
