"""Language containment, equivalence, and universality for NFAs.

These are the PSPACE primitives underlying Theorem 4.1 (spanner
containment), Theorem 5.1 (split-correctness), and the Section 6
reasoning problems.  The implementation is the standard on-the-fly
product with a determinized right-hand side: to decide ``L(A) <= L(B)``
we search for a state of ``A`` reachable together with a ``B``-subset
containing no final state while ``A`` accepts.  Only the reachable part
of the subset lattice is materialized, which is exactly the polynomial-
space strategy (and fast in practice on the instances the framework
produces).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Optional, Sequence, Tuple

from repro.automata.nfa import NFA

Symbol = Hashable


def nfa_contains(
    left: NFA, right: NFA, alphabet: Optional[frozenset] = None
) -> bool:
    """Decide ``L(left) <= L(right)``.

    ``alphabet`` defaults to the union of both alphabets; words over
    symbols missing from ``right``'s alphabet simply cannot be accepted
    by ``right``.
    """
    return containment_counterexample(left, right, alphabet) is None


def containment_counterexample(
    left: NFA, right: NFA, alphabet: Optional[frozenset] = None
) -> Optional[Tuple[Symbol, ...]]:
    """A shortest word in ``L(left) - L(right)``, or ``None``.

    Runs a BFS over pairs ``(P, Q)`` where ``P`` is the subset of
    ``left``-states and ``Q`` the subset of ``right``-states reached on
    the same word (both epsilon-closed).  A pair with ``P`` accepting
    and ``Q`` not accepting yields the counterexample.
    """
    if alphabet is None:
        alphabet = left.alphabet | right.alphabet
    start = (
        left.epsilon_closure({left.initial}),
        right.epsilon_closure({right.initial}),
    )
    seen = {start}
    queue: deque = deque([(start, ())])
    while queue:
        (p_set, q_set), word = queue.popleft()
        if (p_set & left.finals) and not (q_set & right.finals):
            return word
        for symbol in alphabet:
            p_next = left.step(p_set, symbol)
            if not p_next:
                continue
            q_next = right.step(q_set, symbol)
            key = (p_next, q_next)
            if key not in seen:
                seen.add(key)
                queue.append((key, word + (symbol,)))
    return None


def nfa_equivalent(left: NFA, right: NFA) -> bool:
    """Decide ``L(left) == L(right)``."""
    return nfa_contains(left, right) and nfa_contains(right, left)


def equivalence_counterexample(
    left: NFA, right: NFA
) -> Optional[Tuple[Symbol, ...]]:
    """A word on which the two languages differ, or ``None``."""
    witness = containment_counterexample(left, right)
    if witness is not None:
        return witness
    return containment_counterexample(right, left)


def nfa_universal(nfa: NFA, alphabet: Optional[frozenset] = None) -> bool:
    """Decide ``L(nfa) == alphabet*`` (the PSPACE-complete problem [17]).

    This is the source problem of the paper's hardness reductions
    (Theorems 4.2, 5.1, 6.2, Lemma 5.4); having a direct decision
    procedure lets the tests validate the reductions end to end.
    """
    if alphabet is None:
        alphabet = nfa.alphabet
    start = nfa.epsilon_closure({nfa.initial})
    if not (start & nfa.finals):
        return False
    seen = {start}
    queue: deque = deque([start])
    while queue:
        current = queue.popleft()
        for symbol in alphabet:
            nxt = nfa.step(current, symbol)
            if not (nxt & nfa.finals):
                return False
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return True


def union_universal(dfas: Sequence, alphabet: frozenset) -> bool:
    """Decide whether the union of the given DFAs/NFAs covers ``alphabet*``.

    DFA union universality is the PSPACE-complete problem of Kozen [17]
    that the paper reduces *from*; the tests use this direct decider to
    label reduction instances with their ground truth.
    """
    union: Optional[NFA] = None
    for automaton in dfas:
        nfa = automaton.to_nfa() if hasattr(automaton, "to_nfa") else automaton
        union = nfa if union is None else union.union(nfa)
    if union is None:
        return False
    return nfa_universal(union, alphabet)
