"""Compiled automaton kernel: an integer/bitset IR shared by all layers.

Every procedure in the reproduction — NFA membership and emptiness, the
decision procedures of Sections 4–6, VSet-automaton evaluation, and the
corpus engine's chunk runners — ultimately executes automaton steps.
Interpreting those steps over dict-of-sets transition tables with
arbitrary hashable states dominates every benchmark, so this module
lowers an :class:`repro.automata.nfa.NFA` **once** into a dense form:

* states are relabeled to integers ``0..n-1`` (breadth-first order from
  the initial state, deterministic), symbols to integers ``0..m-1``;
* state sets are Python-int **bitsets**, so set union is ``|`` and
  membership is a shift-and-mask;
* epsilon closures are precomputed per state, and the closed transition
  table ``closed_next[state][symbol]`` maps directly to the
  epsilon-closed successor bitset — one subset-simulation step is a
  handful of table lookups OR-ed together;
* a :class:`LazyDFA` memoizes subset-construction states *on demand*
  with an LRU bound, so repeated membership queries against the same
  automaton amortize to one dict lookup per input symbol without ever
  paying the full exponential subset construction.

Lowering happens at most once per automaton (``NFA.compiled()`` caches
the artifact and invalidates it on mutation) and at most once per
certified plan in the runtime (:meth:`repro.runtime.planner.Planner.
certify` lowers at certify time, so the engine's plan cache replays
compiled artifacts and workers never re-lower).

:class:`CompiledVSetAutomaton` extends the kernel to spanner
evaluation: configurations run as ``(position, state_id, status)``
tuples against precomputed per-state move tables, and the
suffix-acceptance table of :meth:`repro.spanners.vset_automaton.
VSetAutomaton._suffix_acceptance` is computed by backward bitset
sweeps instead of per-position frozenset scans.

**Kernel v2 — byte-table sweeps.**  When every document letter is a
single latin-1 character (which covers UTF-8's ASCII range one byte
per character, positions preserved), the transition structure is
lowered *again*, to flat ``bytes`` tables keyed by raw byte values:

* :class:`ByteDFA` — forward acceptance as row-chained table lookups
  over the encoded word (one list index + one bytes index per byte);
* :class:`ByteSuffixSweeper` — the suffix-acceptance recurrence as a
  *reverse* deterministic sweep, one table step per byte instead of a
  per-position scan over all states.

Both carry batch entry points (:meth:`CompiledNFA.accepts_batch`,
:meth:`CompiledVSetAutomaton.evaluate_batch`) that sweep many chunk
texts through one table in a single call, amortizing Python dispatch
— what the corpus scheduler feeds whole missing-chunk batches into.
Wide or non-character alphabets, non-latin-1 documents, and automata
whose byte-subset construction exceeds the 256-row cap all fall back
to the v1 integer/bitset path; results are byte-identical either way
(``tests/test_compiled.py`` checks all three tiers differentially).
The tier in effect is reported as :attr:`CompiledVSetAutomaton.
kernel_tier` (``"v2-bytes"``/``"v1-int"``) and surfaces in
``explain()``; sweep volume and table sizes land in the process-global
registry as ``kernel.bytes_swept`` / ``kernel.table_bytes``.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:  # pragma: no cover - exercised indirectly on every 3.8+ runtime
    from pickle import PickleBuffer
except ImportError:  # pragma: no cover - pre-3.8 fallback, tables inline
    PickleBuffer = None

from repro.automata.nfa import EPSILON, NFA
from repro.core.spans import Span, SpanTuple
from repro.obs.metrics import kernel_metrics

State = Hashable
Symbol = Hashable


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _epsilon_closures(eps_edges: List[int], n: int) -> List[int]:
    """Per-state epsilon-closure bitsets in one linear pass.

    Iterative Tarjan SCC condensation over the epsilon graph: SCCs
    finish in reverse topological order, so every epsilon edge leaving
    a component points at states whose closure is already complete and
    a component's closure is its member bits OR-ed with those finished
    closures.  Graph work is O(states + edges) — epsilon-heavy chains
    and cycles (one-shot product automata, Thompson constructions) no
    longer pay one BFS per state.
    """
    closure = [0] * n
    index = [0] * n          # 1-based visit order; 0 = unvisited
    low = [0] * n
    on_stack = [False] * n
    scc_stack: List[int] = []
    counter = 1
    for root in range(n):
        if index[root]:
            continue
        index[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = True
        work = [(root, bits(eps_edges[root]))]
        while work:
            state, edges = work[-1]
            advanced = False
            for target in edges:
                if not index[target]:
                    index[target] = low[target] = counter
                    counter += 1
                    scc_stack.append(target)
                    on_stack[target] = True
                    work.append((target, bits(eps_edges[target])))
                    advanced = True
                    break
                if on_stack[target] and index[target] < low[state]:
                    low[state] = index[target]
            if advanced:
                continue
            work.pop()
            if work and low[state] < low[work[-1][0]]:
                low[work[-1][0]] = low[state]
            if low[state] == index[state]:
                # ``state`` roots an SCC; everything above it on the
                # stack is the component, and all epsilon edges leaving
                # it reach components that are already finished.
                members = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == state:
                        break
                mask = 0
                for member in members:
                    mask |= 1 << member
                for member in members:
                    for target in bits(eps_edges[member] & ~mask):
                        mask |= closure[target]
                for member in members:
                    closure[member] = mask
    return closure


# ----------------------------------------------------------------------
# Kernel v2: byte-table lowering
# ----------------------------------------------------------------------

#: Row ids are stored as single bytes inside 256-wide rows, so a byte
#: machine holds at most 256 rows (row 0 is the dead sink).  Exceeding
#: the cap aborts the byte lowering; callers fall back to the v1 path.
MAX_BYTE_ROWS = 256


def _letter_byte(symbol: Symbol) -> Optional[int]:
    """The byte value of a letter symbol, or ``None`` when the symbol
    is not a single latin-1 character (byte lowering unavailable)."""
    if isinstance(symbol, str) and len(symbol) == 1:
        code = ord(symbol)
        if code < 256:
            return code
    return None


class _ByteRowsExhausted(Exception):
    """Raised internally when a byte-subset construction passes
    :data:`MAX_BYTE_ROWS`; the builder abandons the byte tier."""


class _ByteRowInterner:
    """Assign dense row ids to subset bitsets during construction.

    Row 0 is always the empty subset (the dead sink, whose all-zero
    row self-loops); fresh subsets are queued for row construction.
    """

    def __init__(self) -> None:
        self.ids: Dict[int, int] = {0: 0}
        self.masks: List[int] = [0]
        self.queue: deque = deque()

    def intern(self, mask: int) -> int:
        rid = self.ids.get(mask)
        if rid is None:
            rid = len(self.masks)
            if rid >= MAX_BYTE_ROWS:
                raise _ByteRowsExhausted
            self.ids[mask] = rid
            self.masks.append(mask)
            self.queue.append(mask)
        return rid


class ByteDFA:
    """Forward acceptance as row-chained byte-table lookups.

    ``blob`` concatenates 256-byte rows (``blob[rid * 256 + byte]`` is
    the successor row id); ``flags`` marks accepting rows; ``start``
    is the row of the epsilon-closed initial subset.  Bytes outside
    the alphabet lead to row 0, the dead sink — exactly the v1
    semantics of an unknown symbol rejecting the word.

    The hot loop is ``rid = rows[rid][b]``: one list index plus one
    bytes index per input byte, no dict lookups, no bitset arithmetic.
    """

    def __init__(self, blob: bytes, flags: bytes, start: int) -> None:
        blob = bytes(blob)
        self.blob = blob
        self.flags = bytes(flags)
        self.start = start
        self.n_rows = len(blob) // 256
        self.rows: List[bytes] = [
            blob[i * 256:(i + 1) * 256] for i in range(self.n_rows)
        ]
        self._swept = kernel_metrics().counter("kernel.bytes_swept")

    def table_bytes(self) -> int:
        return len(self.blob) + len(self.flags)

    def accepts_bytes(self, data) -> bool:
        """Membership of one encoded word."""
        rows = self.rows
        rid = self.start
        for b in data:
            rid = rows[rid][b]
        self._swept.inc(len(data))
        return self.flags[rid] == 1

    def __reduce_ex__(self, protocol):
        blob = self.blob
        if protocol >= 5 and PickleBuffer is not None:
            blob = PickleBuffer(blob)
        return (_rebuild_byte_dfa, (blob, self.flags, self.start))


def _rebuild_byte_dfa(blob, flags, start) -> ByteDFA:
    return ByteDFA(blob, flags, start)


class ByteSuffixSweeper:
    """The suffix-acceptance recurrence as a reverse byte-table sweep.

    Rows are deterministic *reverse* subset states: backward-closed
    bitsets of NFA states, with ``masks[rid]`` the bitset a row stands
    for.  One sweep walks the encoded document back to front, one
    table step per byte, and emits the per-position ``finishable``
    bitsets — replacing the v1 per-position scan over all states.
    """

    def __init__(self, blob: bytes, masks: Sequence[int],
                 start: int) -> None:
        blob = bytes(blob)
        self.blob = blob
        self.masks: Tuple[int, ...] = tuple(masks)
        self.start = start
        self.n_rows = len(blob) // 256
        self.rows: List[bytes] = [
            blob[i * 256:(i + 1) * 256] for i in range(self.n_rows)
        ]
        self._swept = kernel_metrics().counter("kernel.bytes_swept")

    def table_bytes(self) -> int:
        return len(self.blob)

    def sweep_bytes(self, data) -> List[int]:
        """``finishable`` bitsets for one encoded document."""
        rows = self.rows
        masks = self.masks
        rid = self.start
        out = [masks[rid]]
        append = out.append
        for b in data[::-1]:
            rid = rows[rid][b]
            append(masks[rid])
        self._swept.inc(len(data))
        out.reverse()
        return out

    def __reduce_ex__(self, protocol):
        blob = self.blob
        if protocol >= 5 and PickleBuffer is not None:
            blob = PickleBuffer(blob)
        return (_rebuild_byte_sweeper, (blob, self.masks, self.start))


def _rebuild_byte_sweeper(blob, masks, start) -> ByteSuffixSweeper:
    return ByteSuffixSweeper(blob, masks, start)


def _build_byte_tables(
    start_mask: int,
    steps: Dict[int, "callable"],
) -> Optional[Tuple[bytes, List[int], int]]:
    """Shared byte-subset construction for both sweep directions.

    ``steps`` maps byte values to ``subset -> subset`` transition
    functions (only alphabet bytes appear; all others dead-end at row
    0).  Returns ``(blob, row masks, start row id)``, or ``None`` when
    the construction exceeds :data:`MAX_BYTE_ROWS`.
    """
    interner = _ByteRowInterner()
    try:
        start = interner.intern(start_mask)
        rows: Dict[int, bytearray] = {0: bytearray(256)}
        while interner.queue:
            mask = interner.queue.popleft()
            row = bytearray(256)
            for byte, step in steps.items():
                row[byte] = interner.intern(step(mask))
            rows[interner.ids[mask]] = row
    except _ByteRowsExhausted:
        return None
    blob = b"".join(bytes(rows[rid]) for rid in range(len(interner.masks)))
    return blob, interner.masks, start


class CompiledNFA:
    """The dense integer/bitset lowering of one NFA.

    Only states reachable from the initial state are materialized
    (unreachable states cannot influence acceptance, emptiness, or any
    configuration search started at the initial state).  All artifacts
    are plain ints/lists/dicts, so compiled automata pickle cheaply —
    the engine ships them to pool workers inside certified plans.
    """

    def __init__(self, nfa: NFA) -> None:
        lowering_started = time.perf_counter()
        # ---- state numbering: BFS from the initial state, visiting
        # transitions in sorted-repr order so the numbering (and hence
        # every derived table) is deterministic for a given automaton.
        order: Dict[State, int] = {nfa.initial: 0}
        queue = deque([nfa.initial])
        while queue:
            state = queue.popleft()
            by_symbol = nfa._delta.get(state, {})
            for symbol in sorted(by_symbol, key=repr):
                for target in sorted(by_symbol[symbol], key=repr):
                    if target not in order:
                        order[target] = len(order)
                        queue.append(target)
        self.states: List[State] = [None] * len(order)
        for state, index in order.items():
            self.states[index] = state
        self.state_id: Dict[State, int] = order
        n = len(self.states)
        self.n_states = n

        # ---- symbol numbering (EPSILON handled out of band).
        self.symbols: List[Symbol] = sorted(nfa.alphabet, key=repr)
        self.symbol_id: Dict[Symbol, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }

        # ---- raw transition tables as bitsets.
        eps_edges = [0] * n
        direct: List[Dict[int, int]] = [dict() for _ in range(n)]
        for state, index in order.items():
            for symbol, targets in nfa._delta.get(state, {}).items():
                mask = 0
                for target in targets:
                    mask |= 1 << order[target]
                if symbol is EPSILON:
                    eps_edges[index] = mask
                else:
                    direct[index][self.symbol_id[symbol]] = mask
        self.direct_next: List[Dict[int, int]] = direct

        closure = _epsilon_closures(eps_edges, n)
        self.closure: List[int] = closure

        # ---- closed step table: closed_next[s][a] is the epsilon
        # closure of the direct successors of s on symbol a, so a full
        # subset step is the OR of closed_next rows over the current
        # bitset (closure distributes over union).
        closed: List[Dict[int, int]] = [dict() for _ in range(n)]
        for s in range(n):
            for a, mask in direct[s].items():
                out = 0
                for t in bits(mask):
                    out |= closure[t]
                closed[s][a] = out
        self.closed_next: List[Dict[int, int]] = closed

        self.initial_id = 0
        self.start_mask: int = closure[0]
        finals_mask = 0
        for state in nfa.finals:
            index = order.get(state)
            if index is not None:
                finals_mask |= 1 << index
        self.finals_mask: int = finals_mask
        self._lazy: Optional[LazyDFA] = None
        self._byte_dfa: Optional[ByteDFA] = None
        self._byte_dfa_built = False

        # Transition-fill and construction accounting: how dense the
        # lowered tables are and what lowering cost, reported into the
        # process-global kernel registry (:mod:`repro.obs.metrics`).
        metrics = kernel_metrics()
        metrics.counter("kernel.lowerings").inc()
        metrics.counter("kernel.states_lowered").inc(n)
        metrics.counter("kernel.transitions_filled").inc(
            sum(len(row) for row in closed)
        )
        metrics.histogram("kernel.lowering_seconds").observe(
            time.perf_counter() - lowering_started
        )

    # ------------------------------------------------------------------
    # Core bitset semantics
    # ------------------------------------------------------------------

    def step(self, mask: int, symbol_index: int) -> int:
        """One closed subset step on a symbol index."""
        out = 0
        for s in bits(mask):
            out |= self.closed_next[s].get(symbol_index, 0)
        return out

    def lazy_dfa(self, max_states: int = 4096) -> "LazyDFA":
        """The memoizing subset-construction view.

        Cached per bound: asking for a different ``max_states`` than
        the cached instance was built with replaces the cache (the old
        memo is a pure cache, so dropping it is always safe).
        """
        if self._lazy is None or self._lazy.max_states != max_states:
            self._lazy = LazyDFA(self, max_states=max_states)
        return self._lazy

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership; byte-table sweep when the word is a latin-1
        string and the byte lowering exists, lazy DFA otherwise."""
        if type(word) is str:
            dfa = self.byte_dfa()
            if dfa is not None:
                try:
                    data = word.encode("latin-1")
                except UnicodeEncodeError:
                    pass
                else:
                    return dfa.accepts_bytes(data)
        return self.accepts_v1(word)

    def accepts_v1(self, word: Sequence[Symbol]) -> bool:
        """Membership via the lazy DFA: amortized one lookup/symbol.

        The v1 integer path — always available, used directly by the
        differential tests and as the fallback for words the byte
        tier cannot encode.
        """
        lazy = self.lazy_dfa()
        symbol_id = self.symbol_id
        current = self.start_mask
        for symbol in word:
            index = symbol_id.get(symbol)
            if index is None:
                return False
            current = lazy.next(current, index)
            if not current:
                return False
        return bool(current & self.finals_mask)

    def accepts_batch(self, words: Sequence[Sequence[Symbol]]) -> List[bool]:
        """Membership of many words in one call.

        The byte-table hot loop is inlined here — one encode plus one
        table chase per word, with a single sweep-counter update for
        the whole batch — so large chunk batches pay Python dispatch
        once, not per word.  Words the byte tier cannot handle take
        the v1 path individually; results are identical either way.
        """
        out: List[bool] = []
        append = out.append
        dfa = self.byte_dfa()
        if dfa is None:
            for word in words:
                append(self.accepts_v1(word))
            return out
        rows = dfa.rows
        flags = dfa.flags
        start = dfa.start
        swept = 0
        for word in words:
            if type(word) is str:
                try:
                    data = word.encode("latin-1")
                except UnicodeEncodeError:
                    append(self.accepts_v1(word))
                    continue
                rid = start
                for b in data:
                    rid = rows[rid][b]
                swept += len(data)
                append(flags[rid] == 1)
            else:
                append(self.accepts_v1(word))
        if swept:
            dfa._swept.inc(swept)
        return out

    def byte_dfa(self) -> Optional[ByteDFA]:
        """The forward byte-table machine, built once on first use.

        ``None`` when the eager byte-subset construction exceeds
        :data:`MAX_BYTE_ROWS` — callers then stay on the v1 path.
        Symbols that are not single latin-1 characters simply get no
        byte rows: a latin-1-encodable word cannot contain them, and
        non-encodable words never reach the byte machine.
        """
        if not self._byte_dfa_built:
            self._byte_dfa = self._build_byte_dfa()
            self._byte_dfa_built = True
        return self._byte_dfa

    def _build_byte_dfa(self) -> Optional[ByteDFA]:
        steps = {}
        for symbol, index in self.symbol_id.items():
            byte = _letter_byte(symbol)
            if byte is not None:
                steps[byte] = lambda mask, a=index: self.step(mask, a)
        if not steps and self.symbols:
            # A fully wide/non-character alphabet: a byte machine could
            # only ever reject — stay (and report) the v1 tier.
            return None
        built = _build_byte_tables(self.start_mask, steps)
        if built is None:
            return None
        blob, masks, start = built
        finals = self.finals_mask
        flags = bytes(1 if mask & finals else 0 for mask in masks)
        dfa = ByteDFA(blob, flags, start)
        kernel_metrics().counter("kernel.table_bytes").inc(
            dfa.table_bytes()
        )
        return dfa

    @property
    def kernel_tier(self) -> str:
        """``"v2-bytes"`` when the byte lowering exists, ``"v1-int"``
        otherwise (wide alphabet or >256 byte-subset rows)."""
        return "v2-bytes" if self.byte_dfa() is not None else "v1-int"

    def reachable_mask(self) -> int:
        """Bitset of states reachable from the initial state."""
        reached = self.start_mask
        frontier = reached
        while frontier:
            step = 0
            for s in bits(frontier):
                for mask in self.closed_next[s].values():
                    step |= mask
            frontier = step & ~reached
            reached |= step
        return reached

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_mask() & self.finals_mask)

    def intersection_is_empty(self, other: "CompiledNFA") -> bool:
        """Whether ``L(self) & L(other)`` is empty (product emptiness).

        On-the-fly reachability over pairs of *individual* states (the
        same search space as the materialized product automaton, so
        polynomial — at most ``n_left * n_right`` pairs), executed on
        the closed transition tables; this is what
        :meth:`repro.automata.nfa.NFA.product_is_empty` lowers to.
        """
        shared = [
            (index, other.symbol_id[symbol])
            for symbol, index in self.symbol_id.items()
            if symbol in other.symbol_id
        ]
        left_finals = self.finals_mask
        right_finals = other.finals_mask
        pairs = [
            (p, q)
            for p in bits(self.start_mask)
            for q in bits(other.start_mask)
        ]
        seen = set(pairs)
        queue = deque(pairs)
        while queue:
            p, q = queue.popleft()
            if (left_finals >> p) & 1 and (right_finals >> q) & 1:
                return False
            left_row = self.closed_next[p]
            right_row = other.closed_next[q]
            for a, b in shared:
                left_next = left_row.get(a, 0)
                if not left_next:
                    continue
                right_next = right_row.get(b, 0)
                if not right_next:
                    continue
                for p2 in bits(left_next):
                    for q2 in bits(right_next):
                        pair = (p2, q2)
                        if pair not in seen:
                            seen.add(pair)
                            queue.append(pair)
        return True

    def subset_table(self) -> Dict[int, Dict[int, int]]:
        """The *full* subset construction over bitset states.

        Returns ``{state_mask: {symbol_index: successor_mask}}`` for
        every reachable subset (including the empty sink when it is
        reached); :meth:`repro.automata.nfa.NFA.to_dfa` converts this
        back to frozensets of original states.
        """
        table: Dict[int, Dict[int, int]] = {}
        queue = deque([self.start_mask])
        n_symbols = len(self.symbols)
        while queue:
            mask = queue.popleft()
            if mask in table:
                continue
            row = {a: self.step(mask, a) for a in range(n_symbols)}
            table[mask] = row
            for nxt in row.values():
                if nxt not in table:
                    queue.append(nxt)
        return table

    def mask_to_states(self, mask: int) -> FrozenSet[State]:
        """Translate a bitset back to the original state objects."""
        return frozenset(self.states[s] for s in bits(mask))

    def __repr__(self) -> str:
        return (
            f"CompiledNFA(states={self.n_states}, "
            f"symbols={len(self.symbols)})"
        )


class LazyDFA:
    """Subset-construction states memoized on demand, LRU-bounded.

    Maps ``(subset bitset, symbol index) -> subset bitset`` through a
    per-subset row cache.  Rows are evicted least-recently-used once
    ``max_states`` subsets are live, which bounds memory on adversarial
    automata (the exponential subset lattice) while keeping the common
    case — a handful of hot subsets per workload — fully cached.
    """

    def __init__(self, compiled: CompiledNFA, max_states: int = 4096) -> None:
        if max_states < 1:
            raise ValueError("max_states must be positive")
        self.compiled = compiled
        self.max_states = max_states
        self._rows: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Row creation/eviction is rare (bounded by max_states between
        # evictions), so the global counters live off the hot
        # ``next()`` path; the per-step hit/miss tallies stay plain
        # attributes.
        metrics = kernel_metrics()
        self._states_built = metrics.counter("kernel.lazy_dfa.states_built")
        self._states_evicted = metrics.counter(
            "kernel.lazy_dfa.states_evicted"
        )

    def __len__(self) -> int:
        return len(self._rows)

    def next(self, mask: int, symbol_index: int) -> int:
        """The closed successor subset, memoized."""
        row = self._rows.get(mask)
        if row is None:
            while len(self._rows) >= self.max_states:
                self._rows.popitem(last=False)
                self.evictions += 1
                self._states_evicted.inc()
            row = {}
            self._rows[mask] = row
            self._states_built.inc()
        else:
            self._rows.move_to_end(mask)
        nxt = row.get(symbol_index)
        if nxt is None:
            nxt = self.compiled.step(mask, symbol_index)
            row[symbol_index] = nxt
            self.misses += 1
        else:
            self.hits += 1
        return nxt

    def __getstate__(self):
        # The memo is a cache, not state: ship compiled artifacts to
        # pool workers without dragging the subset table along.
        return {"compiled": self.compiled, "max_states": self.max_states}

    def __setstate__(self, state):
        self.__init__(state["compiled"], max_states=state["max_states"])


def compile_nfa(nfa: NFA) -> CompiledNFA:
    """Lower ``nfa`` onto the integer/bitset IR.

    Prefer :meth:`repro.automata.nfa.NFA.compiled`, which caches the
    artifact on the automaton and invalidates it on mutation.
    """
    return CompiledNFA(nfa)


# ----------------------------------------------------------------------
# VSet-automaton evaluation on the kernel
# ----------------------------------------------------------------------


class CompiledVSetAutomaton:
    """A VSet-automaton lowered for evaluation.

    Built by :func:`compile_vset_automaton` (cached as
    :meth:`repro.spanners.vset_automaton.VSetAutomaton.compiled`).  The
    per-state move tables are *source-closed*: moves available from a
    configuration ``(pos, state, status)`` are the letter and variable
    moves of every state in the epsilon closure of ``state``, so the
    configuration search never enqueues pure-epsilon configurations.
    """

    def __init__(
        self,
        base: CompiledNFA,
        variables: Tuple[Hashable, ...],
        letter_moves: List[Dict[Symbol, Tuple[int, ...]]],
        var_moves: List[Tuple[Tuple[int, bool, Tuple[int, ...]], ...]],
        letter_sources: Dict[Symbol, List[Tuple[int, int]]],
        rev_closed: Dict[Symbol, List[int]],
        bwd_finals: int,
        byte_sweeper: Optional[ByteSuffixSweeper] = None,
    ) -> None:
        self.base = base
        self.variables = variables
        #: Per state: document letter -> target state ids (source-closed).
        self.letter_moves = letter_moves
        #: Per state: ``(variable index, is_close, target ids)`` triples.
        self.var_moves = var_moves
        #: Per letter: ``(state, direct successor bitset)`` pairs, the
        #: input of the v1 backward suffix sweep (epsilon handled by the
        #: backward closure, so these are *unclosed* direct moves).
        self.letter_sources = letter_sources
        #: Per letter: target-state-indexed backward-closure masks —
        #: ``rev_closed[a][t]`` is the backward closure of the states
        #: that reach ``t`` directly on ``a``, so one suffix-sweep step
        #: is an OR over the set bits of the position's target bitset.
        self.rev_closed = rev_closed
        #: Backward closure of the finals — the sweep's seed table.
        self.bwd_finals = bwd_finals
        #: Byte-table reverse machine, or ``None`` on the int tier.
        self.byte_sweeper = byte_sweeper

    # -- suffix acceptance ---------------------------------------------

    def _backward_closure(self, mask: int) -> int:
        """States whose epsilon closure meets ``mask``."""
        closure = self.base.closure
        out = 0
        bit = 1
        for s in range(self.base.n_states):
            if closure[s] & mask:
                out |= bit
            bit <<= 1
        return out

    def suffix_acceptance(self, document: Sequence[Symbol]) -> List[int]:
        """``finishable[p]``: bitset of states accepting ``document[p:]``
        with letters and epsilon moves only (no variable operations).

        Dispatch: the byte-table reverse sweep when the document is a
        latin-1 string and the byte machine exists, otherwise the
        masked integer path.  All tiers produce identical tables
        (checked differentially in ``tests/test_compiled.py``).
        """
        sweeper = self.byte_sweeper
        if sweeper is not None and type(document) is str:
            try:
                data = document.encode("latin-1")
            except UnicodeEncodeError:
                pass
            else:
                return sweeper.sweep_bytes(data)
        return self.suffix_acceptance_int(document)

    def suffix_acceptance_int(
        self, document: Sequence[Symbol]
    ) -> List[int]:
        """The masked integer sweep: per position, OR the precomputed
        ``rev_closed`` masks of the next table's set bits — work is
        O(popcount) per position instead of a scan over all states."""
        n = len(document)
        tables = [0] * (n + 1)
        tables[n] = self.bwd_finals
        rev = self.rev_closed
        for pos in range(n - 1, -1, -1):
            row = rev.get(document[pos])
            out = 0
            if row is not None:
                target = tables[pos + 1]
                while target:
                    low = target & -target
                    out |= row[low.bit_length() - 1]
                    target ^= low
            tables[pos] = out
        return tables

    def suffix_acceptance_v1(
        self, document: Sequence[Symbol]
    ) -> List[int]:
        """The PR-2 reference sweep, kept verbatim as the differential
        baseline: per position, rescan ``letter_sources`` and take the
        backward closure of the surviving source states."""
        n = len(document)
        tables = [0] * (n + 1)
        tables[n] = self._backward_closure(self.base.finals_mask)
        sources = self.letter_sources
        for pos in range(n - 1, -1, -1):
            target = tables[pos + 1]
            direct = 0
            for state, mask in sources.get(document[pos], ()):
                if mask & target:
                    direct |= 1 << state
            tables[pos] = self._backward_closure(direct)
        return tables

    @property
    def kernel_tier(self) -> str:
        """``"v2-bytes"`` when the reverse byte machine exists,
        ``"v1-int"`` otherwise."""
        return "v2-bytes" if self.byte_sweeper is not None else "v1-int"

    # -- evaluation ----------------------------------------------------

    def evaluate(self, document: Sequence[Symbol]) -> Set:
        """Exact enumeration of ``A(d)``; agrees with the interpreted
        :meth:`repro.spanners.vset_automaton.VSetAutomaton.
        evaluate_interpreted` on every document.

        Configurations carry the count of not-yet-closed variables so
        the all-closed collapse (answered by the suffix table) costs an
        integer comparison, not a status scan.
        """
        n = len(document)
        finishable = self.suffix_acceptance(document)
        variables = self.variables
        initial_status: Tuple = (None,) * len(variables)
        letter_moves = self.letter_moves
        var_moves = self.var_moves

        results: Set = set()
        start = (0, self.base.initial_id, initial_status, len(variables))
        seen = {start}
        add_seen = seen.add
        queue = deque([start])
        push = queue.append
        pop = queue.popleft
        while queue:
            config = pop()
            pos, state, status, open_vars = config
            if not open_vars:
                if (finishable[pos] >> state) & 1:
                    results.add(SpanTuple(dict(zip(variables, status))))
                continue
            for k, is_close, targets in var_moves[state]:
                part = status[k]
                if is_close:
                    if type(part) is not int:
                        continue
                    new_part: object = Span(part, pos + 1)
                    remaining = open_vars - 1
                else:
                    if part is not None:
                        continue
                    new_part = pos + 1
                    remaining = open_vars
                new_status = status[:k] + (new_part,) + status[k + 1 :]
                for target in targets:
                    config = (pos, target, new_status, remaining)
                    if config not in seen:
                        add_seen(config)
                        push(config)
            if pos < n:
                targets = letter_moves[state].get(document[pos])
                if targets:
                    for target in targets:
                        config = (pos + 1, target, status, open_vars)
                        if config not in seen:
                            add_seen(config)
                            push(config)
        return results

    def evaluate_batch(
        self,
        documents: Sequence[Sequence[Symbol]],
        latency=None,
    ) -> List[Set]:
        """Evaluate many chunk texts against one artifact in one call.

        The batch form the scheduler and pool workers feed whole
        missing-chunk batches into; ``latency`` is an optional
        histogram observing per-document seconds (the engine's
        ``engine.chunk_eval_seconds``) without a second dispatch
        layer.
        """
        evaluate = self.evaluate
        if latency is None:
            return [evaluate(document) for document in documents]
        results: List[Set] = []
        append = results.append
        clock = time.perf_counter
        for document in documents:
            started = clock()
            append(evaluate(document))
            latency.observe(clock() - started)
        return results


def compile_vset_automaton(
    vsa, byte_tables: bool = True
) -> CompiledVSetAutomaton:
    """Lower a :class:`repro.spanners.vset_automaton.VSetAutomaton`.

    Reuses the underlying NFA's compiled form (one lowering serves both
    language-level queries and spanner evaluation), then derives the
    source-closed move tables and the suffix-sweep inputs — including
    the precomputed backward-closure masks and, when every document
    letter is a single latin-1 character and the reverse subset
    construction fits :data:`MAX_BYTE_ROWS`, the byte-table sweeper.
    ``byte_tables=False`` pins the v1 integer tier (differential
    tests compare the tiers this way).
    """
    from repro.spanners.refwords import VarOp

    base: CompiledNFA = vsa.nfa.compiled()
    variables, var_index = vsa.variable_order
    n = base.n_states

    # Classify the alphabet once.
    letter_ids: Dict[int, Symbol] = {}
    varop_ids: Dict[int, Tuple[int, bool]] = {}
    for symbol, index in base.symbol_id.items():
        if isinstance(symbol, VarOp):
            k = var_index.get(symbol.variable)
            if k is not None:
                varop_ids[index] = (k, symbol.is_close)
        else:
            letter_ids[index] = symbol

    letter_moves: List[Dict[Symbol, Tuple[int, ...]]] = []
    var_moves: List[Tuple[Tuple[int, bool, Tuple[int, ...]], ...]] = []
    for s in range(n):
        letters: Dict[Symbol, int] = {}
        ops: Dict[Tuple[int, bool], int] = {}
        for mid in bits(base.closure[s]):
            for index, mask in base.direct_next[mid].items():
                letter = letter_ids.get(index)
                if letter is not None:
                    letters[letter] = letters.get(letter, 0) | mask
                else:
                    op = varop_ids.get(index)
                    if op is not None:
                        ops[op] = ops.get(op, 0) | mask
        letter_moves.append(
            {letter: tuple(bits(mask)) for letter, mask in letters.items()}
        )
        var_moves.append(tuple(
            (k, is_close, tuple(bits(mask)))
            for (k, is_close), mask in sorted(ops.items())
        ))

    letter_sources: Dict[Symbol, List[Tuple[int, int]]] = {}
    for s in range(n):
        for index, mask in base.direct_next[s].items():
            letter = letter_ids.get(index)
            if letter is not None:
                letter_sources.setdefault(letter, []).append((s, mask))

    # ---- precomputed backward-closure structure for the suffix sweep.
    # ``bwd_single[t]`` is the transpose of the epsilon closure — the
    # states whose closure contains ``t`` — so any backward closure is
    # an OR of ``bwd_single`` rows over set bits.
    bwd_single = [0] * n
    for s in range(n):
        sbit = 1 << s
        for t in bits(base.closure[s]):
            bwd_single[t] |= sbit

    bwd_finals = 0
    for t in bits(base.finals_mask):
        bwd_finals |= bwd_single[t]

    rev_closed: Dict[Symbol, List[int]] = {}
    for letter, pairs in letter_sources.items():
        row = [0] * n
        for s, mask in pairs:
            sb = bwd_single[s]
            for t in bits(mask):
                row[t] |= sb
        rev_closed[letter] = row

    # ---- reverse byte machine: deterministic subset construction over
    # backward-closed bitsets, seeded at the closed finals.  Letters
    # that are not single latin-1 characters get no byte rows — they
    # cannot occur in a latin-1-encodable document, and any other
    # document falls back to the integer sweep before reaching here.
    byte_sweeper = None
    if byte_tables:
        byte_steps = {}
        for letter, row in rev_closed.items():
            byte = _letter_byte(letter)
            if byte is None:
                continue

            def step(mask: int, row: List[int] = row) -> int:
                out = 0
                while mask:
                    low = mask & -mask
                    out |= row[low.bit_length() - 1]
                    mask ^= low
                return out

            byte_steps[byte] = step
        if not byte_steps and rev_closed:
            # No letter survives the byte lowering (wide alphabet):
            # keep the compiled spanner honestly on the v1 tier.
            return CompiledVSetAutomaton(
                base, variables, letter_moves, var_moves, letter_sources,
                rev_closed, bwd_finals, None,
            )
        built = _build_byte_tables(bwd_finals, byte_steps)
        if built is not None:
            blob, masks, start = built
            byte_sweeper = ByteSuffixSweeper(blob, masks, start)
            kernel_metrics().counter("kernel.table_bytes").inc(
                byte_sweeper.table_bytes()
            )

    return CompiledVSetAutomaton(
        base, variables, letter_moves, var_moves, letter_sources,
        rev_closed, bwd_finals, byte_sweeper,
    )
