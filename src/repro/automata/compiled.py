"""Compiled automaton kernel: an integer/bitset IR shared by all layers.

Every procedure in the reproduction — NFA membership and emptiness, the
decision procedures of Sections 4–6, VSet-automaton evaluation, and the
corpus engine's chunk runners — ultimately executes automaton steps.
Interpreting those steps over dict-of-sets transition tables with
arbitrary hashable states dominates every benchmark, so this module
lowers an :class:`repro.automata.nfa.NFA` **once** into a dense form:

* states are relabeled to integers ``0..n-1`` (breadth-first order from
  the initial state, deterministic), symbols to integers ``0..m-1``;
* state sets are Python-int **bitsets**, so set union is ``|`` and
  membership is a shift-and-mask;
* epsilon closures are precomputed per state, and the closed transition
  table ``closed_next[state][symbol]`` maps directly to the
  epsilon-closed successor bitset — one subset-simulation step is a
  handful of table lookups OR-ed together;
* a :class:`LazyDFA` memoizes subset-construction states *on demand*
  with an LRU bound, so repeated membership queries against the same
  automaton amortize to one dict lookup per input symbol without ever
  paying the full exponential subset construction.

Lowering happens at most once per automaton (``NFA.compiled()`` caches
the artifact and invalidates it on mutation) and at most once per
certified plan in the runtime (:meth:`repro.runtime.planner.Planner.
certify` lowers at certify time, so the engine's plan cache replays
compiled artifacts and workers never re-lower).

:class:`CompiledVSetAutomaton` extends the kernel to spanner
evaluation: configurations run as ``(position, state_id, status)``
tuples against precomputed per-state move tables, and the
suffix-acceptance table of :meth:`repro.spanners.vset_automaton.
VSetAutomaton._suffix_acceptance` is computed by backward bitset
sweeps instead of per-position frozenset scans.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.automata.nfa import EPSILON, NFA
from repro.core.spans import Span, SpanTuple
from repro.obs.metrics import kernel_metrics

State = Hashable
Symbol = Hashable


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _epsilon_closures(eps_edges: List[int], n: int) -> List[int]:
    """Per-state epsilon-closure bitsets in one linear pass.

    Iterative Tarjan SCC condensation over the epsilon graph: SCCs
    finish in reverse topological order, so every epsilon edge leaving
    a component points at states whose closure is already complete and
    a component's closure is its member bits OR-ed with those finished
    closures.  Graph work is O(states + edges) — epsilon-heavy chains
    and cycles (one-shot product automata, Thompson constructions) no
    longer pay one BFS per state.
    """
    closure = [0] * n
    index = [0] * n          # 1-based visit order; 0 = unvisited
    low = [0] * n
    on_stack = [False] * n
    scc_stack: List[int] = []
    counter = 1
    for root in range(n):
        if index[root]:
            continue
        index[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = True
        work = [(root, bits(eps_edges[root]))]
        while work:
            state, edges = work[-1]
            advanced = False
            for target in edges:
                if not index[target]:
                    index[target] = low[target] = counter
                    counter += 1
                    scc_stack.append(target)
                    on_stack[target] = True
                    work.append((target, bits(eps_edges[target])))
                    advanced = True
                    break
                if on_stack[target] and index[target] < low[state]:
                    low[state] = index[target]
            if advanced:
                continue
            work.pop()
            if work and low[state] < low[work[-1][0]]:
                low[work[-1][0]] = low[state]
            if low[state] == index[state]:
                # ``state`` roots an SCC; everything above it on the
                # stack is the component, and all epsilon edges leaving
                # it reach components that are already finished.
                members = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == state:
                        break
                mask = 0
                for member in members:
                    mask |= 1 << member
                for member in members:
                    for target in bits(eps_edges[member] & ~mask):
                        mask |= closure[target]
                for member in members:
                    closure[member] = mask
    return closure


class CompiledNFA:
    """The dense integer/bitset lowering of one NFA.

    Only states reachable from the initial state are materialized
    (unreachable states cannot influence acceptance, emptiness, or any
    configuration search started at the initial state).  All artifacts
    are plain ints/lists/dicts, so compiled automata pickle cheaply —
    the engine ships them to pool workers inside certified plans.
    """

    def __init__(self, nfa: NFA) -> None:
        lowering_started = time.perf_counter()
        # ---- state numbering: BFS from the initial state, visiting
        # transitions in sorted-repr order so the numbering (and hence
        # every derived table) is deterministic for a given automaton.
        order: Dict[State, int] = {nfa.initial: 0}
        queue = deque([nfa.initial])
        while queue:
            state = queue.popleft()
            by_symbol = nfa._delta.get(state, {})
            for symbol in sorted(by_symbol, key=repr):
                for target in sorted(by_symbol[symbol], key=repr):
                    if target not in order:
                        order[target] = len(order)
                        queue.append(target)
        self.states: List[State] = [None] * len(order)
        for state, index in order.items():
            self.states[index] = state
        self.state_id: Dict[State, int] = order
        n = len(self.states)
        self.n_states = n

        # ---- symbol numbering (EPSILON handled out of band).
        self.symbols: List[Symbol] = sorted(nfa.alphabet, key=repr)
        self.symbol_id: Dict[Symbol, int] = {
            symbol: index for index, symbol in enumerate(self.symbols)
        }

        # ---- raw transition tables as bitsets.
        eps_edges = [0] * n
        direct: List[Dict[int, int]] = [dict() for _ in range(n)]
        for state, index in order.items():
            for symbol, targets in nfa._delta.get(state, {}).items():
                mask = 0
                for target in targets:
                    mask |= 1 << order[target]
                if symbol is EPSILON:
                    eps_edges[index] = mask
                else:
                    direct[index][self.symbol_id[symbol]] = mask
        self.direct_next: List[Dict[int, int]] = direct

        closure = _epsilon_closures(eps_edges, n)
        self.closure: List[int] = closure

        # ---- closed step table: closed_next[s][a] is the epsilon
        # closure of the direct successors of s on symbol a, so a full
        # subset step is the OR of closed_next rows over the current
        # bitset (closure distributes over union).
        closed: List[Dict[int, int]] = [dict() for _ in range(n)]
        for s in range(n):
            for a, mask in direct[s].items():
                out = 0
                for t in bits(mask):
                    out |= closure[t]
                closed[s][a] = out
        self.closed_next: List[Dict[int, int]] = closed

        self.initial_id = 0
        self.start_mask: int = closure[0]
        finals_mask = 0
        for state in nfa.finals:
            index = order.get(state)
            if index is not None:
                finals_mask |= 1 << index
        self.finals_mask: int = finals_mask
        self._lazy: Optional[LazyDFA] = None

        # Transition-fill and construction accounting: how dense the
        # lowered tables are and what lowering cost, reported into the
        # process-global kernel registry (:mod:`repro.obs.metrics`).
        metrics = kernel_metrics()
        metrics.counter("kernel.lowerings").inc()
        metrics.counter("kernel.states_lowered").inc(n)
        metrics.counter("kernel.transitions_filled").inc(
            sum(len(row) for row in closed)
        )
        metrics.histogram("kernel.lowering_seconds").observe(
            time.perf_counter() - lowering_started
        )

    # ------------------------------------------------------------------
    # Core bitset semantics
    # ------------------------------------------------------------------

    def step(self, mask: int, symbol_index: int) -> int:
        """One closed subset step on a symbol index."""
        out = 0
        for s in bits(mask):
            out |= self.closed_next[s].get(symbol_index, 0)
        return out

    def lazy_dfa(self, max_states: int = 4096) -> "LazyDFA":
        """The memoizing subset-construction view.

        Cached per bound: asking for a different ``max_states`` than
        the cached instance was built with replaces the cache (the old
        memo is a pure cache, so dropping it is always safe).
        """
        if self._lazy is None or self._lazy.max_states != max_states:
            self._lazy = LazyDFA(self, max_states=max_states)
        return self._lazy

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership via the lazy DFA: amortized one lookup/symbol."""
        lazy = self.lazy_dfa()
        symbol_id = self.symbol_id
        current = self.start_mask
        for symbol in word:
            index = symbol_id.get(symbol)
            if index is None:
                return False
            current = lazy.next(current, index)
            if not current:
                return False
        return bool(current & self.finals_mask)

    def reachable_mask(self) -> int:
        """Bitset of states reachable from the initial state."""
        reached = self.start_mask
        frontier = reached
        while frontier:
            step = 0
            for s in bits(frontier):
                for mask in self.closed_next[s].values():
                    step |= mask
            frontier = step & ~reached
            reached |= step
        return reached

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_mask() & self.finals_mask)

    def intersection_is_empty(self, other: "CompiledNFA") -> bool:
        """Whether ``L(self) & L(other)`` is empty (product emptiness).

        On-the-fly reachability over pairs of *individual* states (the
        same search space as the materialized product automaton, so
        polynomial — at most ``n_left * n_right`` pairs), executed on
        the closed transition tables; this is what
        :meth:`repro.automata.nfa.NFA.product_is_empty` lowers to.
        """
        shared = [
            (index, other.symbol_id[symbol])
            for symbol, index in self.symbol_id.items()
            if symbol in other.symbol_id
        ]
        left_finals = self.finals_mask
        right_finals = other.finals_mask
        pairs = [
            (p, q)
            for p in bits(self.start_mask)
            for q in bits(other.start_mask)
        ]
        seen = set(pairs)
        queue = deque(pairs)
        while queue:
            p, q = queue.popleft()
            if (left_finals >> p) & 1 and (right_finals >> q) & 1:
                return False
            left_row = self.closed_next[p]
            right_row = other.closed_next[q]
            for a, b in shared:
                left_next = left_row.get(a, 0)
                if not left_next:
                    continue
                right_next = right_row.get(b, 0)
                if not right_next:
                    continue
                for p2 in bits(left_next):
                    for q2 in bits(right_next):
                        pair = (p2, q2)
                        if pair not in seen:
                            seen.add(pair)
                            queue.append(pair)
        return True

    def subset_table(self) -> Dict[int, Dict[int, int]]:
        """The *full* subset construction over bitset states.

        Returns ``{state_mask: {symbol_index: successor_mask}}`` for
        every reachable subset (including the empty sink when it is
        reached); :meth:`repro.automata.nfa.NFA.to_dfa` converts this
        back to frozensets of original states.
        """
        table: Dict[int, Dict[int, int]] = {}
        queue = deque([self.start_mask])
        n_symbols = len(self.symbols)
        while queue:
            mask = queue.popleft()
            if mask in table:
                continue
            row = {a: self.step(mask, a) for a in range(n_symbols)}
            table[mask] = row
            for nxt in row.values():
                if nxt not in table:
                    queue.append(nxt)
        return table

    def mask_to_states(self, mask: int) -> FrozenSet[State]:
        """Translate a bitset back to the original state objects."""
        return frozenset(self.states[s] for s in bits(mask))

    def __repr__(self) -> str:
        return (
            f"CompiledNFA(states={self.n_states}, "
            f"symbols={len(self.symbols)})"
        )


class LazyDFA:
    """Subset-construction states memoized on demand, LRU-bounded.

    Maps ``(subset bitset, symbol index) -> subset bitset`` through a
    per-subset row cache.  Rows are evicted least-recently-used once
    ``max_states`` subsets are live, which bounds memory on adversarial
    automata (the exponential subset lattice) while keeping the common
    case — a handful of hot subsets per workload — fully cached.
    """

    def __init__(self, compiled: CompiledNFA, max_states: int = 4096) -> None:
        if max_states < 1:
            raise ValueError("max_states must be positive")
        self.compiled = compiled
        self.max_states = max_states
        self._rows: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Row creation/eviction is rare (bounded by max_states between
        # evictions), so the global counters live off the hot
        # ``next()`` path; the per-step hit/miss tallies stay plain
        # attributes.
        metrics = kernel_metrics()
        self._states_built = metrics.counter("kernel.lazy_dfa.states_built")
        self._states_evicted = metrics.counter(
            "kernel.lazy_dfa.states_evicted"
        )

    def __len__(self) -> int:
        return len(self._rows)

    def next(self, mask: int, symbol_index: int) -> int:
        """The closed successor subset, memoized."""
        row = self._rows.get(mask)
        if row is None:
            while len(self._rows) >= self.max_states:
                self._rows.popitem(last=False)
                self.evictions += 1
                self._states_evicted.inc()
            row = {}
            self._rows[mask] = row
            self._states_built.inc()
        else:
            self._rows.move_to_end(mask)
        nxt = row.get(symbol_index)
        if nxt is None:
            nxt = self.compiled.step(mask, symbol_index)
            row[symbol_index] = nxt
            self.misses += 1
        else:
            self.hits += 1
        return nxt

    def __getstate__(self):
        # The memo is a cache, not state: ship compiled artifacts to
        # pool workers without dragging the subset table along.
        return {"compiled": self.compiled, "max_states": self.max_states}

    def __setstate__(self, state):
        self.__init__(state["compiled"], max_states=state["max_states"])


def compile_nfa(nfa: NFA) -> CompiledNFA:
    """Lower ``nfa`` onto the integer/bitset IR.

    Prefer :meth:`repro.automata.nfa.NFA.compiled`, which caches the
    artifact on the automaton and invalidates it on mutation.
    """
    return CompiledNFA(nfa)


# ----------------------------------------------------------------------
# VSet-automaton evaluation on the kernel
# ----------------------------------------------------------------------


class CompiledVSetAutomaton:
    """A VSet-automaton lowered for evaluation.

    Built by :func:`compile_vset_automaton` (cached as
    :meth:`repro.spanners.vset_automaton.VSetAutomaton.compiled`).  The
    per-state move tables are *source-closed*: moves available from a
    configuration ``(pos, state, status)`` are the letter and variable
    moves of every state in the epsilon closure of ``state``, so the
    configuration search never enqueues pure-epsilon configurations.
    """

    def __init__(
        self,
        base: CompiledNFA,
        variables: Tuple[Hashable, ...],
        letter_moves: List[Dict[Symbol, Tuple[int, ...]]],
        var_moves: List[Tuple[Tuple[int, bool, Tuple[int, ...]], ...]],
        letter_sources: Dict[Symbol, List[Tuple[int, int]]],
    ) -> None:
        self.base = base
        self.variables = variables
        #: Per state: document letter -> target state ids (source-closed).
        self.letter_moves = letter_moves
        #: Per state: ``(variable index, is_close, target ids)`` triples.
        self.var_moves = var_moves
        #: Per letter: ``(state, direct successor bitset)`` pairs, the
        #: input of the backward suffix sweep (epsilon handled by the
        #: backward closure, so these are *unclosed* direct moves).
        self.letter_sources = letter_sources

    # -- suffix acceptance ---------------------------------------------

    def _backward_closure(self, mask: int) -> int:
        """States whose epsilon closure meets ``mask``."""
        closure = self.base.closure
        out = 0
        bit = 1
        for s in range(self.base.n_states):
            if closure[s] & mask:
                out |= bit
            bit <<= 1
        return out

    def suffix_acceptance(self, document: Sequence[Symbol]) -> List[int]:
        """``finishable[p]``: bitset of states accepting ``document[p:]``
        with letters and epsilon moves only (no variable operations)."""
        n = len(document)
        tables = [0] * (n + 1)
        tables[n] = self._backward_closure(self.base.finals_mask)
        sources = self.letter_sources
        for pos in range(n - 1, -1, -1):
            target = tables[pos + 1]
            direct = 0
            for state, mask in sources.get(document[pos], ()):
                if mask & target:
                    direct |= 1 << state
            tables[pos] = self._backward_closure(direct)
        return tables

    # -- evaluation ----------------------------------------------------

    def evaluate(self, document: Sequence[Symbol]) -> Set:
        """Exact enumeration of ``A(d)``; agrees with the interpreted
        :meth:`repro.spanners.vset_automaton.VSetAutomaton.
        evaluate_interpreted` on every document.

        Configurations carry the count of not-yet-closed variables so
        the all-closed collapse (answered by the suffix table) costs an
        integer comparison, not a status scan.
        """
        n = len(document)
        finishable = self.suffix_acceptance(document)
        variables = self.variables
        initial_status: Tuple = (None,) * len(variables)
        letter_moves = self.letter_moves
        var_moves = self.var_moves

        results: Set = set()
        start = (0, self.base.initial_id, initial_status, len(variables))
        seen = {start}
        add_seen = seen.add
        queue = deque([start])
        push = queue.append
        pop = queue.popleft
        while queue:
            config = pop()
            pos, state, status, open_vars = config
            if not open_vars:
                if (finishable[pos] >> state) & 1:
                    results.add(SpanTuple(dict(zip(variables, status))))
                continue
            for k, is_close, targets in var_moves[state]:
                part = status[k]
                if is_close:
                    if type(part) is not int:
                        continue
                    new_part: object = Span(part, pos + 1)
                    remaining = open_vars - 1
                else:
                    if part is not None:
                        continue
                    new_part = pos + 1
                    remaining = open_vars
                new_status = status[:k] + (new_part,) + status[k + 1 :]
                for target in targets:
                    config = (pos, target, new_status, remaining)
                    if config not in seen:
                        add_seen(config)
                        push(config)
            if pos < n:
                targets = letter_moves[state].get(document[pos])
                if targets:
                    for target in targets:
                        config = (pos + 1, target, status, open_vars)
                        if config not in seen:
                            add_seen(config)
                            push(config)
        return results


def compile_vset_automaton(vsa) -> CompiledVSetAutomaton:
    """Lower a :class:`repro.spanners.vset_automaton.VSetAutomaton`.

    Reuses the underlying NFA's compiled form (one lowering serves both
    language-level queries and spanner evaluation), then derives the
    source-closed move tables and the suffix-sweep inputs.
    """
    from repro.spanners.refwords import VarOp

    base: CompiledNFA = vsa.nfa.compiled()
    variables, var_index = vsa.variable_order
    n = base.n_states

    # Classify the alphabet once.
    letter_ids: Dict[int, Symbol] = {}
    varop_ids: Dict[int, Tuple[int, bool]] = {}
    for symbol, index in base.symbol_id.items():
        if isinstance(symbol, VarOp):
            k = var_index.get(symbol.variable)
            if k is not None:
                varop_ids[index] = (k, symbol.is_close)
        else:
            letter_ids[index] = symbol

    letter_moves: List[Dict[Symbol, Tuple[int, ...]]] = []
    var_moves: List[Tuple[Tuple[int, bool, Tuple[int, ...]], ...]] = []
    for s in range(n):
        letters: Dict[Symbol, int] = {}
        ops: Dict[Tuple[int, bool], int] = {}
        for mid in bits(base.closure[s]):
            for index, mask in base.direct_next[mid].items():
                letter = letter_ids.get(index)
                if letter is not None:
                    letters[letter] = letters.get(letter, 0) | mask
                else:
                    op = varop_ids.get(index)
                    if op is not None:
                        ops[op] = ops.get(op, 0) | mask
        letter_moves.append(
            {letter: tuple(bits(mask)) for letter, mask in letters.items()}
        )
        var_moves.append(tuple(
            (k, is_close, tuple(bits(mask)))
            for (k, is_close), mask in sorted(ops.items())
        ))

    letter_sources: Dict[Symbol, List[Tuple[int, int]]] = {}
    for s in range(n):
        for index, mask in base.direct_next[s].items():
            letter = letter_ids.get(index)
            if letter is not None:
                letter_sources.setdefault(letter, []).append((s, mask))

    return CompiledVSetAutomaton(
        base, variables, letter_moves, var_moves, letter_sources
    )
