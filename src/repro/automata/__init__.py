"""Classical automata substrate.

Everything in the split-correctness framework ultimately reduces to
questions about regular languages: spanner containment is ref-word
language containment after canonicalization (Theorem 4.1 of the paper),
the tractable cover-condition test is containment of unambiguous finite
automata (Lemma 5.6), and the hardness results are reductions from DFA
union universality.  This subpackage provides the finite-automaton
machinery those procedures are built on:

* :mod:`repro.automata.nfa` -- nondeterministic finite automata with
  epsilon transitions, products, unions, and subset construction;
* :mod:`repro.automata.dfa` -- deterministic automata, minimization and
  complementation;
* :mod:`repro.automata.regex` -- a classical regular-expression parser
  compiling to NFAs (Thompson construction);
* :mod:`repro.automata.containment` -- language containment and
  equivalence via on-the-fly determinization (the PSPACE procedure);
* :mod:`repro.automata.ufa` -- ambiguity testing and the polynomial-time
  containment test for unambiguous automata (Stearns & Hunt [33]);
* :mod:`repro.automata.compiled` -- the **compiled kernel**: every
  automaton lowers once onto a dense integer/bitset IR (states and
  symbols relabeled to ints, state sets as Python-int bitsets, epsilon
  closures precomputed, subset steps as table lookups + bitwise OR)
  with a lazily memoized, LRU-bounded subset construction
  (:class:`repro.automata.compiled.LazyDFA`).  ``NFA.accepts``,
  ``NFA.is_empty``, ``NFA.to_dfa``, ``NFA.product_is_empty`` and
  ``VSetAutomaton.evaluate`` all execute on this shared IR; the
  dict-of-sets interpreter survives as the reference semantics
  (``accepts_interpreted`` / ``evaluate_interpreted``) that the
  property tests validate the kernel against.

Lowering happens when an automaton is first queried (and, in the
runtime, once per certified plan at certify time — never per chunk);
``add_transition`` invalidates the cached artifact.
"""

from repro.automata.nfa import EPSILON, NFA
from repro.automata.compiled import (
    CompiledNFA,
    CompiledVSetAutomaton,
    LazyDFA,
    compile_nfa,
    compile_vset_automaton,
)
from repro.automata.dfa import DFA
from repro.automata.regex import regex_to_nfa, parse_regex
from repro.automata.containment import (
    nfa_contains,
    nfa_equivalent,
    nfa_universal,
)
from repro.automata.ufa import is_unambiguous, ufa_contains, count_words_by_length

__all__ = [
    "EPSILON",
    "NFA",
    "DFA",
    "CompiledNFA",
    "CompiledVSetAutomaton",
    "LazyDFA",
    "compile_nfa",
    "compile_vset_automaton",
    "regex_to_nfa",
    "parse_regex",
    "nfa_contains",
    "nfa_equivalent",
    "nfa_universal",
    "is_unambiguous",
    "ufa_contains",
    "count_words_by_length",
]
