"""Classical automata substrate.

Everything in the split-correctness framework ultimately reduces to
questions about regular languages: spanner containment is ref-word
language containment after canonicalization (Theorem 4.1 of the paper),
the tractable cover-condition test is containment of unambiguous finite
automata (Lemma 5.6), and the hardness results are reductions from DFA
union universality.  This subpackage provides the finite-automaton
machinery those procedures are built on:

* :mod:`repro.automata.nfa` -- nondeterministic finite automata with
  epsilon transitions, products, unions, and subset construction;
* :mod:`repro.automata.dfa` -- deterministic automata, minimization and
  complementation;
* :mod:`repro.automata.regex` -- a classical regular-expression parser
  compiling to NFAs (Thompson construction);
* :mod:`repro.automata.containment` -- language containment and
  equivalence via on-the-fly determinization (the PSPACE procedure);
* :mod:`repro.automata.ufa` -- ambiguity testing and the polynomial-time
  containment test for unambiguous automata (Stearns & Hunt [33]).
"""

from repro.automata.nfa import EPSILON, NFA
from repro.automata.dfa import DFA
from repro.automata.regex import regex_to_nfa, parse_regex
from repro.automata.containment import (
    nfa_contains,
    nfa_equivalent,
    nfa_universal,
)
from repro.automata.ufa import is_unambiguous, ufa_contains, count_words_by_length

__all__ = [
    "EPSILON",
    "NFA",
    "DFA",
    "regex_to_nfa",
    "parse_regex",
    "nfa_contains",
    "nfa_equivalent",
    "nfa_universal",
    "is_unambiguous",
    "ufa_contains",
    "count_words_by_length",
]
