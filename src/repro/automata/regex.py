"""Classical regular expressions compiled to NFAs.

The paper builds splitters and spanners from regular languages (e.g.
``S = x{a^n . A_1} + ...`` in Theorem 5.1, the filters of Section 7.2).
This module provides a small, explicit regex language over single-
character symbols:

* literals: any character except the metacharacters;
* escaping: ``\\`` before any character makes it a literal;
* grouping ``( )``, alternation ``|``, Kleene star ``*``, plus ``+``,
  option ``?``;
* ``.`` matches any symbol of the supplied alphabet;
* ``~`` denotes the empty word (epsilon), ``!`` the empty language.

The abstract syntax tree mirrors the paper's grammar
``a ::= 0 | eps | sigma | (a|a) | (a.a) | a*`` and compiles via the
Thompson construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Tuple, Union

from repro.automata.nfa import EPSILON, NFA

Symbol = Hashable

METACHARACTERS = set("()|*+?.~!\\")


class RegexNode:
    """Base class for regular-expression AST nodes."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_string()

    def to_string(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class Empty(RegexNode):
    """The empty language (``!`` in the surface syntax)."""

    def to_string(self) -> str:
        return "!"


@dataclass(frozen=True, repr=False)
class Epsilon(RegexNode):
    """The empty word (``~`` in the surface syntax)."""

    def to_string(self) -> str:
        return "~"


@dataclass(frozen=True, repr=False)
class Literal(RegexNode):
    symbol: Symbol

    def to_string(self) -> str:
        text = str(self.symbol)
        if text in METACHARACTERS:
            return "\\" + text
        return text


@dataclass(frozen=True, repr=False)
class AnySymbol(RegexNode):
    """Matches any single symbol of the alphabet (``.``)."""

    def to_string(self) -> str:
        return "."


@dataclass(frozen=True, repr=False)
class Union_(RegexNode):
    left: RegexNode
    right: RegexNode

    def to_string(self) -> str:
        return f"({self.left.to_string()}|{self.right.to_string()})"


@dataclass(frozen=True, repr=False)
class Concat(RegexNode):
    left: RegexNode
    right: RegexNode

    def to_string(self) -> str:
        return f"{self.left.to_string()}{self.right.to_string()}"


@dataclass(frozen=True, repr=False)
class Star(RegexNode):
    inner: RegexNode

    def to_string(self) -> str:
        return f"({self.inner.to_string()})*"


class RegexParseError(ValueError):
    """Raised on malformed regular expressions."""


class _Parser:
    """Recursive-descent parser for the surface syntax above."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> Union[str, None]:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def parse(self) -> RegexNode:
        node = self.parse_union()
        if self.pos != len(self.text):
            raise RegexParseError(
                f"unexpected {self.text[self.pos]!r} at position {self.pos}"
            )
        return node

    def parse_union(self) -> RegexNode:
        node = self.parse_concat()
        while self.peek() == "|":
            self.advance()
            node = Union_(node, self.parse_concat())
        return node

    def parse_concat(self) -> RegexNode:
        parts = []
        while True:
            char = self.peek()
            if char is None or char in ")|":
                break
            parts.append(self.parse_postfix())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def parse_postfix(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.advance()
                node = Star(node)
            elif char == "+":
                self.advance()
                node = Concat(node, Star(node))
            elif char == "?":
                self.advance()
                node = Union_(node, Epsilon())
            else:
                return node

    def parse_atom(self) -> RegexNode:
        char = self.peek()
        if char is None:
            raise RegexParseError("unexpected end of pattern")
        if char == "(":
            self.advance()
            node = self.parse_union()
            if self.peek() != ")":
                raise RegexParseError("unbalanced parenthesis")
            self.advance()
            return node
        if char == "\\":
            self.advance()
            nxt = self.peek()
            if nxt is None:
                raise RegexParseError("dangling escape")
            self.advance()
            return Literal(nxt)
        if char == ".":
            self.advance()
            return AnySymbol()
        if char == "~":
            self.advance()
            return Epsilon()
        if char == "!":
            self.advance()
            return Empty()
        if char in METACHARACTERS:
            raise RegexParseError(f"unexpected metacharacter {char!r}")
        self.advance()
        return Literal(char)


def parse_regex(pattern: str) -> RegexNode:
    """Parse ``pattern`` into a :class:`RegexNode` tree."""
    return _Parser(pattern).parse()


def _thompson(node: RegexNode, alphabet: FrozenSet[Symbol], counter: list) -> Tuple:
    """Return (states, initial, finals, transitions) for ``node``."""

    def fresh() -> int:
        counter[0] += 1
        return counter[0]

    if isinstance(node, Empty):
        q = fresh()
        return {q}, q, set(), []
    if isinstance(node, Epsilon):
        q = fresh()
        return {q}, q, {q}, []
    if isinstance(node, Literal):
        if node.symbol not in alphabet:
            raise ValueError(f"literal {node.symbol!r} not in alphabet")
        q0, q1 = fresh(), fresh()
        return {q0, q1}, q0, {q1}, [(q0, node.symbol, q1)]
    if isinstance(node, AnySymbol):
        q0, q1 = fresh(), fresh()
        return {q0, q1}, q0, {q1}, [(q0, symbol, q1) for symbol in alphabet]
    if isinstance(node, Union_):
        ls, li, lf, lt = _thompson(node.left, alphabet, counter)
        rs, ri, rf, rt = _thompson(node.right, alphabet, counter)
        q0 = fresh()
        transitions = lt + rt + [(q0, EPSILON, li), (q0, EPSILON, ri)]
        return ls | rs | {q0}, q0, lf | rf, transitions
    if isinstance(node, Concat):
        ls, li, lf, lt = _thompson(node.left, alphabet, counter)
        rs, ri, rf, rt = _thompson(node.right, alphabet, counter)
        transitions = lt + rt + [(f, EPSILON, ri) for f in lf]
        return ls | rs, li, rf, transitions
    if isinstance(node, Star):
        s, i, f, t = _thompson(node.inner, alphabet, counter)
        q0 = fresh()
        transitions = t + [(q0, EPSILON, i)] + [(x, EPSILON, q0) for x in f]
        return s | {q0}, q0, {q0}, transitions
    raise TypeError(f"unknown node {node!r}")


def regex_to_nfa(pattern: Union[str, RegexNode], alphabet: Iterable[Symbol]) -> NFA:
    """Compile ``pattern`` (text or AST) to an NFA over ``alphabet``."""
    node = parse_regex(pattern) if isinstance(pattern, str) else pattern
    alphabet = frozenset(alphabet)
    counter = [0]
    states, initial, finals, transitions = _thompson(node, alphabet, counter)
    return NFA(alphabet, states, initial, finals, transitions)
