"""Nondeterministic finite automata with epsilon transitions.

The NFA here is the workhorse for the whole reproduction: VSet-automata
are NFAs over the extended alphabet ``Sigma + Gamma_V`` (Section 4.2 of
the paper), and every decision procedure eventually bottoms out in NFA
reachability, products, or subset constructions.

States can be arbitrary hashable objects; the constructions in
:mod:`repro.core` exploit this by using structured tuples as states so
that the resulting automata remain debuggable.
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class _Epsilon:
    """Singleton sentinel for the empty-word transition label."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EPSILON"

    def __reduce__(self):
        return (_Epsilon, ())


#: The label used for epsilon transitions.  Never a member of any alphabet.
EPSILON = _Epsilon()

State = Hashable
Symbol = Hashable


class NFA:
    """A nondeterministic finite automaton with a single initial state.

    Transitions are stored as ``{state: {symbol: {successor, ...}}}``.
    The symbol :data:`EPSILON` labels spontaneous moves and is not part
    of :attr:`alphabet`.

    **Mutation contract:** the only supported post-construction
    mutation is :meth:`add_transition`, which invalidates the memoized
    closures and the compiled form.  ``states``/``finals`` are exposed
    as plain sets for cheap reading, but mutating them directly after
    a query (``accepts``/``is_empty``/``to_dfa``) would leave the
    cached compiled artifact stale — build a new NFA instead.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        finals: Iterable[State],
        transitions: Iterable[Tuple[State, Symbol, State]],
    ) -> None:
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        if EPSILON in self.alphabet:
            raise ValueError("EPSILON cannot be an alphabet symbol")
        self.states: Set[State] = set(states)
        self.initial: State = initial
        self.finals: Set[State] = set(finals)
        self._delta: Dict[State, Dict[Symbol, Set[State]]] = {}
        # Memoized per-state views and the compiled (integer/bitset)
        # form; all invalidated together by add_transition.
        self._closure_cache: Dict[State, FrozenSet[State]] = {}
        self._symbols_cache: Dict[State, FrozenSet[Symbol]] = {}
        self._compiled = None
        self._version = 0
        self.states.add(initial)
        self.states.update(self.finals)
        for source, symbol, target in transitions:
            self.add_transition(source, symbol, target)
        if not self.finals <= self.states:
            raise ValueError("final states must be states")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_transition(self, source: State, symbol: Symbol, target: State) -> None:
        """Add a transition; states are created on demand."""
        if symbol is not EPSILON and symbol not in self.alphabet:
            raise ValueError(f"symbol {symbol!r} not in alphabet")
        self.states.add(source)
        self.states.add(target)
        self._delta.setdefault(source, {}).setdefault(symbol, set()).add(target)
        if self._closure_cache:
            self._closure_cache.clear()
        if self._symbols_cache:
            self._symbols_cache.clear()
        self._compiled = None
        self._version += 1

    def compiled(self):
        """The integer/bitset lowering of this automaton (cached).

        Lowered at most once per mutation epoch; ``accepts``,
        ``is_empty``, ``to_dfa`` and ``product_is_empty`` all execute
        against this shared artifact.  See
        :mod:`repro.automata.compiled`.
        """
        if self._compiled is None:
            from repro.automata.compiled import compile_nfa

            self._compiled = compile_nfa(self)
        return self._compiled

    def transitions(self) -> Iterator[Tuple[State, Symbol, State]]:
        """Iterate over all transitions as (source, symbol, target)."""
        for source, by_symbol in self._delta.items():
            for symbol, targets in by_symbol.items():
                for target in targets:
                    yield source, symbol, target

    def successors(self, state: State, symbol: Symbol) -> FrozenSet[State]:
        """Direct successors of ``state`` on ``symbol`` (no closure)."""
        return frozenset(self._delta.get(state, {}).get(symbol, ()))

    def symbols_from(self, state: State) -> FrozenSet[Symbol]:
        """All labels (possibly EPSILON) on transitions leaving ``state``.

        Memoized per state (the decision procedures call this once per
        configuration); invalidated by :meth:`add_transition`.
        """
        cached = self._symbols_cache.get(state)
        if cached is None:
            cached = frozenset(self._delta.get(state, {}))
            self._symbols_cache[state] = cached
        return cached

    def copy(self) -> "NFA":
        return NFA(
            self.alphabet, self.states, self.initial, self.finals, self.transitions()
        )

    # ------------------------------------------------------------------
    # Core semantics
    # ------------------------------------------------------------------

    def _closure_of(self, state: State) -> FrozenSet[State]:
        """Memoized epsilon closure of a single state."""
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        closure = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for nxt in self._delta.get(current, {}).get(EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        cached = frozenset(closure)
        self._closure_cache[state] = cached
        return cached

    def epsilon_closure(self, states: Iterable[State]) -> FrozenSet[State]:
        """The set of states reachable via epsilon moves only.

        Built from per-state closures memoized on the automaton, so
        un-compiled callers (the on-the-fly containment procedures)
        stop recomputing closures on every subset step.
        """
        states = list(states)
        if len(states) == 1:
            return self._closure_of(states[0])
        closure: Set[State] = set()
        for state in states:
            closure |= self._closure_of(state)
        return frozenset(closure)

    def step(self, states: AbstractSet[State], symbol: Symbol) -> FrozenSet[State]:
        """One closed step: epsilon-closure after reading ``symbol``."""
        moved: Set[State] = set()
        for state in states:
            moved.update(self._delta.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership test on the compiled form (lazy-DFA memoized)."""
        return self.compiled().accepts(word)

    def accepts_interpreted(self, word: Sequence[Symbol]) -> bool:
        """Membership by on-the-fly subset simulation over the
        dict-of-sets tables (the reference semantics the compiled
        kernel is validated against; see ``tests/test_compiled.py``)."""
        current = self.epsilon_closure({self.initial})
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.finals)

    # ------------------------------------------------------------------
    # Reachability and trimming
    # ------------------------------------------------------------------

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial state."""
        seen = {self.initial}
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for targets in self._delta.get(state, {}).values():
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        return frozenset(seen)

    def coreachable_states(self) -> FrozenSet[State]:
        """States from which some final state is reachable."""
        backward: Dict[State, Set[State]] = {}
        for source, _symbol, target in self.transitions():
            backward.setdefault(target, set()).add(source)
        seen = set(self.finals)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for prev in backward.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    queue.append(prev)
        return frozenset(seen)

    def trim(self) -> "NFA":
        """Restrict to useful (reachable and co-reachable) states.

        If the language is empty the result is a single non-final
        initial state with no transitions.
        """
        useful = self.reachable_states() & self.coreachable_states()
        if self.initial not in useful:
            return NFA(self.alphabet, [self.initial], self.initial, [], [])
        transitions = [
            (s, a, t) for (s, a, t) in self.transitions() if s in useful and t in useful
        ]
        return NFA(
            self.alphabet, useful, self.initial, self.finals & useful, transitions
        )

    def is_empty(self) -> bool:
        """Whether the accepted language is empty (compiled form)."""
        return self.compiled().is_empty()

    def product_is_empty(self, other: "NFA") -> bool:
        """Whether ``L(self) & L(other)`` is empty.

        Equivalent to ``self.product(other).is_empty()`` but runs the
        on-the-fly pair search over the two compiled forms without ever
        materializing the product automaton.
        """
        return self.compiled().intersection_is_empty(other.compiled())

    def shortest_word(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word, or ``None`` if the language is empty.

        Useful for producing witnesses/counterexamples in the decision
        procedures (e.g. a document on which two spanners disagree).
        """
        start = self.epsilon_closure({self.initial})
        if start & self.finals:
            return ()
        seen = {frozenset(start)}
        queue: deque = deque([(frozenset(start), ())])
        while queue:
            current, word = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.step(current, symbol)
                if not nxt:
                    continue
                key = frozenset(nxt)
                if key in seen:
                    continue
                new_word = word + (symbol,)
                if nxt & self.finals:
                    return new_word
                seen.add(key)
                queue.append((key, new_word))
        return None

    # ------------------------------------------------------------------
    # Rational operations
    # ------------------------------------------------------------------

    def remove_epsilon(self) -> "NFA":
        """An equivalent NFA without epsilon transitions."""
        transitions = []
        finals: Set[State] = set()
        for state in self.states:
            closure = self.epsilon_closure({state})
            if closure & self.finals:
                finals.add(state)
            for mid in closure:
                for symbol, targets in self._delta.get(mid, {}).items():
                    if symbol is EPSILON:
                        continue
                    for target in targets:
                        transitions.append((state, symbol, target))
        return NFA(self.alphabet, self.states, self.initial, finals, transitions)

    def product(self, other: "NFA") -> "NFA":
        """Intersection automaton (synchronized product).

        Epsilon moves of either side are interleaved asynchronously, so
        both operands may contain epsilon transitions.  States are pairs
        ``(p, q)``.
        """
        alphabet = self.alphabet & other.alphabet
        initial = (self.initial, other.initial)
        transitions = []
        seen = {initial}
        queue = deque([initial])
        finals = set()
        while queue:
            p, q = queue.popleft()
            if p in self.finals and q in other.finals:
                finals.add((p, q))
            moves = []
            for symbol in self.symbols_from(p):
                if symbol is EPSILON:
                    for p2 in self.successors(p, EPSILON):
                        moves.append((EPSILON, (p2, q)))
                elif symbol in alphabet:
                    for p2 in self.successors(p, symbol):
                        for q2 in other.successors(q, symbol):
                            moves.append((symbol, (p2, q2)))
            for q2 in other.successors(q, EPSILON):
                moves.append((EPSILON, (p, q2)))
            for symbol, target in moves:
                transitions.append(((p, q), symbol, target))
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return NFA(alphabet, seen, initial, finals, transitions)

    def union(self, other: "NFA") -> "NFA":
        """Union automaton via a fresh initial state."""
        alphabet = self.alphabet | other.alphabet
        initial = ("union-init",)
        states: Set[State] = {initial}
        transitions = []
        finals: Set[State] = set()
        for tag, nfa in (("L", self), ("R", other)):
            for state in nfa.states:
                states.add((tag, state))
            for source, symbol, target in nfa.transitions():
                transitions.append(((tag, source), symbol, (tag, target)))
            for final in nfa.finals:
                finals.add((tag, final))
            transitions.append((initial, EPSILON, (tag, nfa.initial)))
        return NFA(alphabet, states, initial, finals, transitions)

    def concatenate(self, other: "NFA") -> "NFA":
        """Concatenation: every final of ``self`` feeds ``other``."""
        alphabet = self.alphabet | other.alphabet
        states: Set[State] = set()
        transitions = []
        for tag, nfa in (("L", self), ("R", other)):
            for state in nfa.states:
                states.add((tag, state))
            for source, symbol, target in nfa.transitions():
                transitions.append(((tag, source), symbol, (tag, target)))
        for final in self.finals:
            transitions.append((("L", final), EPSILON, ("R", other.initial)))
        finals = {("R", f) for f in other.finals}
        return NFA(alphabet, states, ("L", self.initial), finals, transitions)

    def star(self) -> "NFA":
        """Kleene star with a fresh (final) initial state."""
        initial = ("star-init",)
        states: Set[State] = {initial}
        transitions = []
        for state in self.states:
            states.add(("S", state))
        for source, symbol, target in self.transitions():
            transitions.append((("S", source), symbol, ("S", target)))
        transitions.append((initial, EPSILON, ("S", self.initial)))
        for final in self.finals:
            transitions.append((("S", final), EPSILON, initial))
        return NFA(self.alphabet, states, initial, {initial}, transitions)

    def relabel(self) -> "NFA":
        """Rename states to consecutive integers (canonical BFS order).

        The constructions in :mod:`repro.core` nest products inside
        products; relabeling keeps the state objects small.
        """
        order: Dict[State, int] = {}

        def number(state: State) -> int:
            if state not in order:
                order[state] = len(order)
            return order[state]

        number(self.initial)
        queue = deque([self.initial])
        transitions = []
        seen = {self.initial}
        while queue:
            state = queue.popleft()
            by_symbol = self._delta.get(state, {})
            for symbol in sorted(by_symbol, key=repr):
                for target in sorted(by_symbol[symbol], key=repr):
                    transitions.append((number(state), symbol, number(target)))
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        finals = {order[f] for f in self.finals if f in order}
        states = set(order.values())
        return NFA(self.alphabet, states, 0, finals, transitions)

    # ------------------------------------------------------------------
    # Determinization
    # ------------------------------------------------------------------

    def to_dfa(self) -> "DFA":
        """Full subset construction (the classical exponential step).

        Runs over the compiled bitset IR and translates the subset
        states back to frozensets of original states, so the resulting
        DFA is indistinguishable from the interpreted construction.
        """
        from repro.automata.dfa import DFA

        compiled = self.compiled()
        table = compiled.subset_table()
        as_states = {mask: compiled.mask_to_states(mask) for mask in table}
        transitions: Dict[FrozenSet[State], Dict[Symbol, FrozenSet[State]]] = {
            as_states[mask]: {
                compiled.symbols[index]: as_states[nxt]
                for index, nxt in row.items()
            }
            for mask, row in table.items()
        }
        states = set(as_states.values())
        finals = {
            as_states[mask]
            for mask in table
            if mask & compiled.finals_mask
        }
        return DFA(
            self.alphabet, states, as_states[compiled.start_mask], finals,
            transitions,
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"NFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )


def literal_nfa(alphabet: Iterable[Symbol], word: Sequence[Symbol]) -> NFA:
    """An NFA accepting exactly ``word``."""
    alphabet = frozenset(alphabet)
    transitions = [(i, symbol, i + 1) for i, symbol in enumerate(word)]
    return NFA(alphabet, range(len(word) + 1), 0, [len(word)], transitions)


def empty_language_nfa(alphabet: Iterable[Symbol]) -> NFA:
    """An NFA accepting the empty language."""
    return NFA(alphabet, [0], 0, [], [])


def universal_nfa(alphabet: Iterable[Symbol]) -> NFA:
    """An NFA accepting all words over ``alphabet``."""
    alphabet = frozenset(alphabet)
    transitions = [(0, symbol, 0) for symbol in alphabet]
    return NFA(alphabet, [0], 0, [0], transitions)
