"""Deterministic finite automata: complementation and minimization.

DFAs appear in the reproduction in two roles: as the targets of the
subset construction used by the PSPACE containment procedures, and as
the *inputs* of the hardness reductions (DFA union universality, Kozen
[17]) that the paper uses for Theorems 4.2, 5.1, and Lemma 5.4.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Sequence, Set, Tuple

from repro.automata.nfa import NFA

State = Hashable
Symbol = Hashable


class DFA:
    """A complete deterministic finite automaton.

    Completeness (a transition for every state/symbol pair) is enforced
    at construction time by adding an implicit sink when needed; this
    makes complementation a final-state flip.
    """

    _SINK = ("dfa-sink",)

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        finals: Iterable[State],
        transitions: Dict[State, Dict[Symbol, State]],
    ) -> None:
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.states: Set[State] = set(states)
        self.initial = initial
        self.finals: Set[State] = set(finals)
        self._delta: Dict[State, Dict[Symbol, State]] = {
            state: dict(row) for state, row in transitions.items()
        }
        self.states.add(initial)
        self.states.update(self.finals)
        self._complete()

    def _complete(self) -> None:
        """Add a sink state so the transition function is total."""
        need_sink = False
        for state in self.states:
            row = self._delta.setdefault(state, {})
            for symbol in self.alphabet:
                if symbol not in row:
                    row[symbol] = self._SINK
                    need_sink = True
        if need_sink:
            self.states.add(self._SINK)
            self._delta[self._SINK] = {a: self._SINK for a in self.alphabet}

    # ------------------------------------------------------------------

    def delta(self, state: State, symbol: Symbol) -> State:
        return self._delta[state][symbol]

    def run(self, word: Sequence[Symbol]) -> State:
        state = self.initial
        for symbol in word:
            state = self._delta[state][symbol]
        return state

    def accepts(self, word: Sequence[Symbol]) -> bool:
        return self.run(word) in self.finals

    def complement(self) -> "DFA":
        """The DFA for the complement language."""
        return DFA(
            self.alphabet,
            self.states,
            self.initial,
            self.states - self.finals,
            self._delta,
        )

    def to_nfa(self) -> NFA:
        transitions = [
            (state, symbol, target)
            for state, row in self._delta.items()
            for symbol, target in row.items()
        ]
        return NFA(self.alphabet, self.states, self.initial, self.finals, transitions)

    def reachable_states(self) -> FrozenSet[State]:
        seen = {self.initial}
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for target in self._delta[state].values():
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return frozenset(seen)

    def is_empty(self) -> bool:
        return not (self.reachable_states() & self.finals)

    def minimize(self) -> "DFA":
        """Hopcroft partition-refinement minimization.

        Unreachable states are dropped first; the result is the unique
        minimal complete DFA for the language (up to state naming).
        """
        reachable = self.reachable_states()
        finals = self.finals & reachable
        nonfinals = reachable - finals
        partition: Set[FrozenSet[State]] = set()
        if finals:
            partition.add(frozenset(finals))
        if nonfinals:
            partition.add(frozenset(nonfinals))
        worklist: Set[FrozenSet[State]] = set(partition)

        preimage: Dict[Tuple[Symbol, State], Set[State]] = {}
        for state in reachable:
            for symbol, target in self._delta[state].items():
                if target in reachable:
                    preimage.setdefault((symbol, target), set()).add(state)

        while worklist:
            splitter = worklist.pop()
            for symbol in self.alphabet:
                moves_in: Set[State] = set()
                for target in splitter:
                    moves_in |= preimage.get((symbol, target), set())
                if not moves_in:
                    continue
                for block in list(partition):
                    inter = block & moves_in
                    diff = block - moves_in
                    if inter and diff:
                        partition.remove(block)
                        partition.add(frozenset(inter))
                        partition.add(frozenset(diff))
                        if block in worklist:
                            worklist.remove(block)
                            worklist.add(frozenset(inter))
                            worklist.add(frozenset(diff))
                        else:
                            worklist.add(
                                frozenset(inter)
                                if len(inter) <= len(diff)
                                else frozenset(diff)
                            )

        block_of: Dict[State, FrozenSet[State]] = {}
        for block in partition:
            for state in block:
                block_of[state] = block
        new_transitions: Dict[State, Dict[Symbol, State]] = {}
        for block in partition:
            representative = next(iter(block))
            new_transitions[block] = {
                symbol: block_of[self._delta[representative][symbol]]
                for symbol in self.alphabet
            }
        new_finals = {block for block in partition if block <= self.finals}
        return DFA(
            self.alphabet,
            partition,
            block_of[self.initial],
            new_finals,
            new_transitions,
        )

    def __repr__(self) -> str:
        return (
            f"DFA(states={len(self.states)}, alphabet={len(self.alphabet)}, "
            f"finals={len(self.finals)})"
        )


def random_dfa(
    alphabet: Sequence[Symbol],
    n_states: int,
    seed: int,
    final_fraction: float = 0.4,
) -> DFA:
    """A pseudo-random complete DFA (deterministic in ``seed``).

    Used by the benchmark harness and the property tests to sample
    instances for the DFA-union-universality reductions.
    """
    import random as _random

    rng = _random.Random(seed)
    states = list(range(n_states))
    transitions: Dict[State, Dict[Symbol, State]] = {
        s: {a: rng.randrange(n_states) for a in alphabet} for s in states
    }
    finals = {s for s in states if rng.random() < final_fraction}
    if not finals:
        finals = {rng.randrange(n_states)}
    return DFA(alphabet, states, 0, finals, transitions)
