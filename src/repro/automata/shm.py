"""Shared-memory publication of frozen kernel artifacts.

Pool workers need the compiled chunk runner — a frozen artifact whose
bulk is flat table buffers (:class:`repro.automata.compiled.ByteDFA`
rows, suffix-sweeper rows, bitset tables).  Shipping it through pool
initializer pickling serializes the artifact once per pool *into every
worker's pipe*; this module instead publishes it **once** into a
:mod:`multiprocessing.shared_memory` segment, and workers attach by
segment *name* — a short string — then materialize the artifact from
the mapped buffer.

Layout of a segment::

    MAGIC | u64 payload length | u64 buffer count | u64 lengths ... |
    pickle-protocol-5 payload | out-of-band buffers ...

The payload is pickled with ``buffer_callback``, so the large table
blobs (everything that implements ``__reduce_ex__`` with
:class:`pickle.PickleBuffer`) land as raw out-of-band byte ranges
after it, not as copies inside the pickle stream.

Lifecycle rules (tested in ``tests/test_shm.py``):

* every ``publish`` is recorded in the process-wide :func:`registry`;
* the creator unlinks explicitly (scheduler/engine ``close()``) and
  the registry's ``atexit`` hook unlinks anything that remains, so a
  crashed or force-terminated pool never strands ``/dev/shm`` entries
  — the creator owns the segment, workers only ever map it;
* workers *unregister* their attachment from the
  ``multiprocessing.resource_tracker`` (CPython registers shared
  memory on attach, not just create, and would otherwise unlink the
  segment when the first worker exits).

Counters: ``kernel.shm_published`` / ``kernel.shm_bytes`` on the
publishing side, ``kernel.shm_attaches`` in each attaching process,
all in the process-global :func:`repro.obs.metrics.kernel_metrics`
registry.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
from typing import Dict, List, Optional

from repro.obs.metrics import kernel_metrics

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - no shm: publishing disabled
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: Segment names are ``<prefix>_<pid>_<seq>`` — greppable in
#: ``/dev/shm`` (that is what the leak tests and the CI smoke assert
#: on) and collision-free per publishing process.
SEGMENT_PREFIX = "repro_kernel"

_MAGIC = b"RKS1"
_HEADER = struct.Struct("<4sQQ")
_LENGTH = struct.Struct("<Q")
_SEQUENCE = itertools.count()


def available() -> bool:
    """Whether this platform can publish shared-memory artifacts."""
    return shared_memory is not None


def _encode(artifact: object) -> bytes:
    """The segment image for ``artifact`` (header + payload + buffers)."""
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(
        artifact, protocol=5, buffer_callback=buffers.append
    )
    raws = [buffer.raw() for buffer in buffers]
    parts = [_HEADER.pack(_MAGIC, len(payload), len(raws))]
    for raw in raws:
        parts.append(_LENGTH.pack(raw.nbytes))
    parts.append(payload)
    parts.extend(raws)
    return b"".join(parts)


def _decode(view) -> object:
    """Materialize the artifact from a mapped segment buffer.

    Table bytes are copied out of the mapping (they are modest — a few
    hundred KB of rows — and owning them lets the worker close the
    mapping immediately, keeping segment lifetime entirely with the
    creator).
    """
    magic, payload_length, buffer_count = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError("not a repro kernel artifact segment")
    offset = _HEADER.size
    lengths = []
    for _ in range(buffer_count):
        (length,) = _LENGTH.unpack_from(view, offset)
        lengths.append(length)
        offset += _LENGTH.size
    payload = bytes(view[offset:offset + payload_length])
    offset += payload_length
    buffers = []
    for length in lengths:
        buffers.append(bytes(view[offset:offset + length]))
        offset += length
    return pickle.loads(payload, buffers=buffers)


class PublishedArtifact:
    """Creator-side handle on one published segment."""

    def __init__(self, name: str, segment, size: int) -> None:
        self.name = name
        self.size = size
        self._segment = segment

    def unlink(self) -> None:
        """Release the mapping and remove the segment (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        return f"PublishedArtifact({self.name!r}, size={self.size})"


class ShmRegistry:
    """Ledger of every segment this process has published.

    The guarantee the lifecycle tests lean on: whatever happens to the
    pool (clean close, forced terminate, worker crash), unlinking goes
    through here — :meth:`unlink` per segment on scheduler close, and
    :meth:`unlink_all` from the ``atexit`` hook as the last resort.
    """

    def __init__(self) -> None:
        self._published: Dict[str, PublishedArtifact] = {}

    def publish(self, artifact: object) -> PublishedArtifact:
        """Write ``artifact`` into a fresh segment and record it."""
        if shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        image = _encode(artifact)
        while True:
            name = f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_SEQUENCE)}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, len(image))
                )
                break
            except FileExistsError:  # stale name from a dead process
                continue
        segment.buf[: len(image)] = image
        published = PublishedArtifact(name, segment, len(image))
        self._published[name] = published
        metrics = kernel_metrics()
        metrics.counter("kernel.shm_published").inc()
        metrics.counter("kernel.shm_bytes").inc(len(image))
        from repro.obs.log import event_log

        event_log().emit("shm.publish", segment=name, bytes=len(image))
        return published

    def unlink(self, name: str) -> None:
        """Unlink one published segment (idempotent, unknown ok)."""
        published = self._published.pop(name, None)
        if published is not None:
            published.unlink()
            try:
                from repro.obs.log import event_log

                event_log().emit("shm.unlink", segment=name)
            except Exception:  # may run from the atexit sweep
                pass

    def unlink_all(self) -> None:
        """Unlink everything still published (the ``atexit`` sweep)."""
        for name in list(self._published):
            self.unlink(name)

    def published_names(self) -> List[str]:
        return sorted(self._published)

    def __len__(self) -> int:
        return len(self._published)


_REGISTRY = ShmRegistry()
atexit.register(_REGISTRY.unlink_all)

#: Attachments performed by *this* process (workers report this via
#: the scheduler's probe to prove they attached instead of unpickling).
_ATTACHES = 0


def registry() -> ShmRegistry:
    """The process-wide publication ledger."""
    return _REGISTRY


def _open_untracked(name: str):
    """Map an existing segment without ``resource_tracker`` tracking.

    CPython registers shared memory with the tracker on *attach*, not
    just create — under spawn the attaching worker's own tracker would
    then unlink the segment when the worker exits, and under fork the
    registration lands in the creator's tracker set where a later
    unregister clobbers the creator's entry.  Only the creator may own
    the segment's lifetime, so attaches are never tracked: natively
    (``track=False``, 3.13+) or by suppressing the registration call.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13: no ``track`` parameter
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach(name: str) -> object:
    """Materialize the artifact published under segment ``name``.

    The mapping is closed before returning and is never registered
    with the ``resource_tracker`` — attaching must not shorten the
    segment's life; only the creator unlinks.
    """
    global _ATTACHES
    if shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    segment = _open_untracked(name)
    try:
        buf = segment.buf
        try:
            artifact = _decode(buf)
        finally:
            del buf
    finally:
        segment.close()
    _ATTACHES += 1
    kernel_metrics().counter("kernel.shm_attaches").inc()
    return artifact


def attach_count() -> int:
    """How many artifacts this process has attached."""
    return _ATTACHES


def leaked_segments() -> List[str]:
    """Kernel-artifact segments currently visible in ``/dev/shm``.

    Includes *live* publications too — callers compare against
    :meth:`ShmRegistry.published_names` or check after close.  Empty
    on platforms without a ``/dev/shm`` filesystem.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry for entry in os.listdir(root)
        if entry.startswith(SEGMENT_PREFIX)
    )
