"""Unambiguous finite automata: ambiguity testing and containment.

Lemma 5.6 of the paper reduces the cover condition (for deterministic
functional VSet-automata and *disjoint* splitters) to the containment
problem of unambiguous finite automata, which Stearns and Hunt [33]
solved in polynomial time.  This module supplies both ingredients:

* :func:`is_unambiguous` -- decides whether an NFA admits at most one
  accepting run per word (product-squaring criterion);
* :func:`ufa_contains` -- polynomial-time containment for unambiguous
  automata by *counting*: for unambiguous ``A`` and ``B``,
  ``L(A) <= L(B)`` iff ``A`` and the (also unambiguous) product
  ``A x B`` accept the same number of words of every length up to
  ``|A| + |A||B|``.  The counts are accepting-path counts, computed by
  exact integer matrix-vector iteration, and the cut-off is sound
  because both counting sequences obey linear recurrences whose orders
  are bounded by the automaton sizes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Tuple

from repro.automata.nfa import NFA

State = Hashable
Symbol = Hashable


class AmbiguityError(ValueError):
    """Raised when an allegedly unambiguous automaton is ambiguous."""


def _trimmed_epsilon_free(nfa: NFA) -> NFA:
    """Normalize for path counting: remove epsilons, keep useful states."""
    return nfa.remove_epsilon().trim()


def is_unambiguous(nfa: NFA) -> bool:
    """Whether no word has two distinct accepting runs.

    Criterion: in the synchronized self-product of the trimmed,
    epsilon-free automaton, no *useful* off-diagonal pair is reachable
    from the diagonal start.  Useful means the pair can still reach a
    pair of final states; reachable off-diagonal pairs witness two runs
    on the same word that differ in at least one position.
    """
    clean = _trimmed_epsilon_free(nfa)
    start = (clean.initial, clean.initial)
    seen = {start}
    queue = deque([start])
    reachable_offdiag = set()
    forward: Dict[Tuple[State, State], List[Tuple[State, State]]] = {}
    while queue:
        p, q = queue.popleft()
        for symbol in clean.symbols_from(p):
            for p2 in clean.successors(p, symbol):
                for q2 in clean.successors(q, symbol):
                    pair = (p2, q2)
                    forward.setdefault((p, q), []).append(pair)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
                    if p2 != q2:
                        reachable_offdiag.add(pair)
    if not reachable_offdiag:
        return True
    # Check co-reachability to a pair of finals within the product.
    backward: Dict[Tuple[State, State], List[Tuple[State, State]]] = {}
    for source, targets in forward.items():
        for target in targets:
            backward.setdefault(target, []).append(source)
    good = {
        pair
        for pair in seen
        if pair[0] in clean.finals and pair[1] in clean.finals
    }
    queue = deque(good)
    coreachable = set(good)
    while queue:
        pair = queue.popleft()
        for prev in backward.get(pair, ()):
            if prev not in coreachable:
                coreachable.add(prev)
                queue.append(prev)
    return not (reachable_offdiag & coreachable)


def count_words_by_length(nfa: NFA, max_length: int) -> List[int]:
    """Accepting-path counts for lengths ``0..max_length``.

    For an unambiguous automaton this equals the number of accepted
    *words* of each length.  Exact integer arithmetic; no overflow.
    """
    clean = _trimmed_epsilon_free(nfa)
    states = sorted(clean.states, key=repr)
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    # Sparse transfer matrix: entry[i][j] = number of letters a with
    # j in delta(i, a).
    transfer: List[Dict[int, int]] = [dict() for _ in range(n)]
    for source, _symbol, target in clean.transitions():
        row = transfer[index[source]]
        col = index[target]
        row[col] = row.get(col, 0) + 1
    vector = [0] * n
    vector[index[clean.initial]] = 1
    final_indices = [index[f] for f in clean.finals]
    counts = []
    for _length in range(max_length + 1):
        counts.append(sum(vector[i] for i in final_indices))
        nxt = [0] * n
        for i, value in enumerate(vector):
            if not value:
                continue
            for j, multiplicity in transfer[i].items():
                nxt[j] += value * multiplicity
        vector = nxt
    return counts


def _epsilon_free_product(left: NFA, right: NFA) -> NFA:
    """Synchronized product of two epsilon-free automata."""
    alphabet = left.alphabet | right.alphabet
    initial = (left.initial, right.initial)
    transitions = []
    seen = {initial}
    queue = deque([initial])
    finals = set()
    while queue:
        p, q = queue.popleft()
        if p in left.finals and q in right.finals:
            finals.add((p, q))
        for symbol in left.symbols_from(p):
            for p2 in left.successors(p, symbol):
                for q2 in right.successors(q, symbol):
                    target = (p2, q2)
                    transitions.append(((p, q), symbol, target))
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
    return NFA(alphabet, seen, initial, finals, transitions)


def ufa_contains(left: NFA, right: NFA, check: bool = True) -> bool:
    """Polynomial-time containment test for unambiguous automata.

    Decides ``L(left) <= L(right)`` assuming both operands are
    unambiguous.  With ``check=True`` ambiguity is verified first and
    :class:`AmbiguityError` raised on violation (the cover-condition
    algorithm of Lemma 5.6 relies on splitter disjointness to guarantee
    unambiguity, so a failure here indicates a misuse upstream).
    """
    if check:
        if not is_unambiguous(left):
            raise AmbiguityError("left operand is ambiguous")
        if not is_unambiguous(right):
            raise AmbiguityError("right operand is ambiguous")
    a = _trimmed_epsilon_free(left)
    b = _trimmed_epsilon_free(right)
    product = _epsilon_free_product(a, b).trim()
    # Counting sequences of `a` and `product` obey linear recurrences of
    # order at most their state counts; if they agree on that many
    # initial terms they agree everywhere.
    bound = len(a.states) + len(product.states) + 1
    counts_a = count_words_by_length(a, bound)
    counts_ab = count_words_by_length(product, bound)
    return counts_a == counts_ab
