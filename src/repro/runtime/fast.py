"""Fast executable splitters and extractors.

The decision procedures reason over VSet-automata, but a production
system executes splitters and extractors with specialized code (the
paper's SystemT/Xlog primitives).  This module provides such compiled
implementations, each paired with the VSet-automaton *specification*
it implements, so that:

* the planner reasons on the automaton (split-correctness etc.);
* the executor runs the fast implementation;
* the test-suite checks the two agree on sampled documents.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, List, Optional, Set

from repro.core.spans import Span, SpanTuple
from repro.spanners.vset_automaton import VSetAutomaton


class FastSplitter:
    """Base class: a splitter with a compiled ``splits`` method."""

    #: The variable name used by the specification automaton.
    variable = "x"

    def splits(self, document: str) -> List[Span]:
        raise NotImplementedError

    def automaton(self, alphabet: Iterable[str]) -> VSetAutomaton:
        """The VSet-automaton specification over ``alphabet``."""
        raise NotImplementedError

    def chunks(self, document: str) -> List[str]:
        return [span.extract(document) for span in self.splits(document)]


class FastSeparatorSplitter(FastSplitter):
    """Maximal separator-free runs (tokenizer, paragraphs, records)."""

    def __init__(self, separators: str) -> None:
        if not separators:
            raise ValueError("need at least one separator character")
        self.separators = frozenset(separators)

    def splits(self, document: str) -> List[Span]:
        spans = []
        begin = None
        for index, char in enumerate(document, start=1):
            if char in self.separators:
                if begin is not None:
                    spans.append(Span(begin, index))
                    begin = None
            elif begin is None:
                begin = index
        if begin is not None:
            spans.append(Span(begin, len(document) + 1))
        return spans

    def automaton(self, alphabet: Iterable[str]) -> VSetAutomaton:
        from repro.splitters.builders import separator_splitter

        return separator_splitter(alphabet, self.separators, self.variable)


class FastSentenceSplitter(FastSplitter):
    """Sentences per the corpus convention (see splitters.builders)."""

    def splits(self, document: str) -> List[Span]:
        spans = []
        begin = None
        for index, char in enumerate(document, start=1):
            if char == ".":
                if begin is not None:
                    spans.append(Span(begin, index + 1))
                    begin = None
            elif begin is None and char != " ":
                begin = index
        return spans

    def automaton(self, alphabet: Iterable[str]) -> VSetAutomaton:
        from repro.splitters.builders import sentence_splitter

        return sentence_splitter(alphabet, self.variable)


class FastTokenNgramSplitter(FastSplitter):
    """Windows of ``n`` consecutive space-separated tokens."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self._tokens = FastSeparatorSplitter(" ")

    def splits(self, document: str) -> List[Span]:
        tokens = self._tokens.splits(document)
        spans = []
        for i in range(len(tokens) - self.n + 1):
            spans.append(Span(tokens[i].begin, tokens[i + self.n - 1].end))
        return spans

    def automaton(self, alphabet: Iterable[str]) -> VSetAutomaton:
        from repro.splitters.builders import token_ngram_splitter

        return token_ngram_splitter(alphabet, self.n, self.variable)


class FastFixedWindowSplitter(FastSplitter):
    """Disjoint tiling into blocks of ``width`` characters."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width

    def splits(self, document: str) -> List[Span]:
        spans = []
        for begin in range(1, len(document) + 1, self.width):
            end = min(begin + self.width, len(document) + 1)
            spans.append(Span(begin, end))
        return spans

    def automaton(self, alphabet: Iterable[str]) -> VSetAutomaton:
        from repro.splitters.builders import fixed_window_splitter

        return fixed_window_splitter(alphabet, self.width, self.variable)


class RegexSpanner:
    """An extractor executed with Python's ``re`` engine.

    ``pattern`` uses named groups — one per span variable; every match
    (including overlapping ones, found via lookahead scanning) yields a
    tuple of the groups' spans.  ``specification`` optionally carries
    the equivalent VSet-automaton for the reasoning procedures; the
    test-suite validates the pair on sampled documents.
    """

    def __init__(
        self,
        pattern: str,
        specification: Optional[VSetAutomaton] = None,
        cost: Callable[[str], None] = None,
    ) -> None:
        self._regex = re.compile(pattern)
        self.variables = frozenset(self._regex.groupindex)
        if not self.variables:
            raise ValueError("pattern needs at least one named group")
        self.specification = specification
        self._cost = cost

    def svars(self):
        return self.variables

    def evaluate(self, document: str) -> Set[SpanTuple]:
        results: Set[SpanTuple] = set()
        start = 0
        while start <= len(document):
            match = self._regex.search(document, start)
            if match is None:
                break
            assignment = {}
            complete = True
            for name in self.variables:
                begin, end = match.span(name)
                if begin < 0:
                    complete = False
                    break
                assignment[name] = Span(begin + 1, end + 1)
            if complete:
                results.add(SpanTuple(assignment))
            if self._cost is not None:
                self._cost(match.group(0))
            start = match.start() + 1
        return results


class CompiledSpanner:
    """A VSet-automaton pinned to its compiled kernel artifact.

    Produced when a plan is certified (:meth:`repro.runtime.planner.
    Plan.lower`) or when the engine resolves a program's chunk runner:
    the specification is lowered onto the integer/bitset IR of
    :mod:`repro.automata.compiled` exactly once, and every chunk
    evaluation — in-process or on a pool worker that received this
    object by pickling — runs against the same artifact.
    """

    def __init__(self, specification: VSetAutomaton) -> None:
        self.specification = specification
        before = specification.lowerings
        self._kernel = specification.compiled()
        #: Whether constructing this wrapper actually lowered the
        #: specification (vs. reusing its cached artifact) — what the
        #: engine's ``artifacts_compiled`` counter records.
        self.freshly_lowered = specification.lowerings > before

    def svars(self):
        return self.specification.svars()

    def evaluate(self, document: str) -> Set[SpanTuple]:
        self.specification.check_document(document)
        return self._kernel.evaluate(document)

    def evaluate_batch(self, documents, latency=None) -> List[Set[SpanTuple]]:
        """Evaluate many chunk texts through the kernel in one call.

        The batch entry the scheduler (and pool workers) feed whole
        missing-chunk batches into; ``latency`` is an optional
        histogram observing per-document kernel seconds.
        """
        check = self.specification.check_document
        for document in documents:
            check(document)
        return self._kernel.evaluate_batch(documents, latency)

    @property
    def kernel_tier(self) -> str:
        """Which kernel tier evaluates chunks (``"v2-bytes"`` byte
        tables / ``"v1-int"`` integer bitsets)."""
        return self._kernel.kernel_tier

    def __repr__(self) -> str:
        return f"CompiledSpanner({self.specification!r})"


def compiled_evaluator(spanner: VSetAutomaton) -> Callable[[str], Set[SpanTuple]]:
    """The kernel-backed evaluator of a VSet-automaton as a callable."""
    return CompiledSpanner(spanner).evaluate
