"""Executing extraction: whole-document, split, and parallel plans.

This realizes the Introduction's motivation: once the framework has
certified ``P = P_S o S``, the system may evaluate ``P_S`` on the
chunks of ``S`` independently — sequentially, or distributed over a
process pool (our stand-in for the paper's Spark cluster).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.spans import Span, SpanTuple

#: Anything with ``evaluate(document) -> set[SpanTuple]``.
SpannerLike = object
#: Anything producing spans for a document (VSA splitter or FastSplitter).
SplitterLike = object


def splitter_spans(splitter: SplitterLike, document: str) -> List[Span]:
    """Spans of a splitter, whatever its representation."""
    if hasattr(splitter, "splits"):
        return list(splitter.splits(document))
    from repro.core.composition import splits_of

    return sorted(splits_of(splitter, document),
                  key=lambda s: (s.begin, s.end))


def as_runner(spanner: SpannerLike) -> SpannerLike:
    """The chunk runner for ``spanner``.

    VSet-automata are pinned to their compiled kernel artifact
    (:class:`repro.runtime.fast.CompiledSpanner`): the lowering happens
    here, once, and is then reused across every chunk of every document
    — including on pool workers, which receive the prebuilt artifact by
    pickling instead of re-lowering.  Other spanners (regex fast paths,
    black boxes) run as-is.
    """
    from repro.spanners.vset_automaton import VSetAutomaton

    if isinstance(spanner, VSetAutomaton):
        from repro.runtime.fast import CompiledSpanner

        return CompiledSpanner(spanner)
    return spanner


def evaluate_whole(spanner: SpannerLike, document: str) -> Set[SpanTuple]:
    """Baseline plan: evaluate the spanner on the whole document."""
    return set(spanner.evaluate(document))


def split_by(
    spanner: SpannerLike,
    splitter: SplitterLike,
    document: str,
) -> Set[SpanTuple]:
    """The split plan ``(P_S o S)(d)``, executed sequentially.

    Sound (equal to ``evaluate_whole`` of the original spanner) exactly
    when split-correctness holds; use :class:`repro.runtime.planner.
    Planner` to certify that first.
    """
    runner = as_runner(spanner)
    results: Set[SpanTuple] = set()
    for span in splitter_spans(splitter, document):
        for t in runner.evaluate(span.extract(document)):
            results.add(t.shift(span))
    return results


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------

_WORKER_SPANNER: Optional[SpannerLike] = None
#: Worker-local observability collectors (traced pools only): spans
#: and metrics recorded here are drained after every task and shipped
#: back through the pool with the task result.
_WORKER_TRACER = None
_WORKER_METRICS = None


def _init_worker(spanner: SpannerLike) -> None:
    global _WORKER_SPANNER
    _WORKER_SPANNER = spanner
    from repro.obs.profile import set_process_role

    set_process_role("pool-worker")


def _init_worker_shm(segment_name: str) -> None:
    """Pool initializer: attach the chunk runner from shared memory.

    The worker receives a segment *name* instead of a pickled artifact
    (see :mod:`repro.automata.shm`); table buffers come out of the
    mapped segment, and the attachment is counted so
    :func:`_worker_shm_status` can prove no artifact unpickling
    happened on this path.
    """
    global _WORKER_SPANNER
    from repro.automata import shm
    from repro.obs.profile import set_process_role

    _WORKER_SPANNER = shm.attach(segment_name)
    set_process_role("pool-worker")


def _worker_shm_status(_task: object = None) -> Tuple[int, int]:
    """Probe task: ``(pid, shm attaches in this worker process)``."""
    from repro.automata import shm

    return os.getpid(), shm.attach_count()


#: The worker-local segmented index (premapped pools only): opened by
#: *path* in the initializer, so posting payloads reach workers
#: through the page cache — never through pickle.
_WORKER_INDEX = None


def _init_worker_premap(initializer, base_arg, index_path: str) -> None:
    """Pool initializer wrapper: base init, then map the index.

    ``initializer``/``base_arg`` are one of the spanner initializers
    above with its argument (segment name or pickled runner);
    ``index_path`` is a :class:`repro.index.store.SegmentedIndex`
    directory each worker opens itself — the open is counted in the
    worker's process-global kernel metrics (``index.opens``,
    ``index.segments_mapped``), which is how the lifecycle tests prove
    postings were mapped, not shipped.
    """
    global _WORKER_INDEX
    initializer(base_arg)
    from repro.index.store import SegmentedIndex

    _WORKER_INDEX = SegmentedIndex.open(index_path)


def _worker_index_status(_task: object = None) -> Tuple[int, int, int]:
    """Probe task: ``(pid, index opens, segments mapped)`` counted in
    this worker process's kernel-metrics registry."""
    from repro.obs.metrics import kernel_metrics

    metrics = kernel_metrics()
    return (
        os.getpid(),
        int(metrics.counter("index.opens").value),
        int(metrics.counter("index.segments_mapped").value),
    )


def _evaluate_text(text: str) -> Set[SpanTuple]:
    return set(_WORKER_SPANNER.evaluate(text))


def _evaluate_texts_batch(texts: Sequence[str]) -> List[Set[SpanTuple]]:
    """One pool task evaluating a whole batch of chunk texts.

    Runners exposing ``evaluate_batch`` (compiled kernel artifacts)
    sweep the batch through their tables in a single call; others are
    looped over here — either way the pool pays one task dispatch and
    one result pickle per batch instead of per chunk.
    """
    spanner = _WORKER_SPANNER
    batch = getattr(spanner, "evaluate_batch", None)
    if batch is not None:
        return batch(texts)
    return [set(spanner.evaluate(text)) for text in texts]


def _evaluate_texts_batch_metered(texts: Sequence[str]):
    """Like :func:`_evaluate_texts_batch`, plus worker-side timing.

    Returns ``(results, metrics delta)`` where the delta carries the
    per-chunk ``engine.chunk_eval_seconds`` histogram — the untraced
    multiprocess path's way of populating chunk-latency metrics (the
    traced path ships them through
    :func:`_evaluate_text_traced` instead).  Batch-capable runners
    observe per chunk inside their sweep via the histogram handle.
    """
    from repro.obs.metrics import Metrics

    spanner = _WORKER_SPANNER
    metrics = Metrics()
    latency = metrics.histogram("engine.chunk_eval_seconds")
    batch = getattr(spanner, "evaluate_batch", None)
    if batch is not None:
        results = batch(texts, latency)
    else:
        results = []
        for text in texts:
            started = time.perf_counter()
            results.append(set(spanner.evaluate(text)))
            latency.observe(time.perf_counter() - started)
    return results, metrics


def _init_worker_traced(spanner: SpannerLike) -> None:
    """Pool initializer for traced runs: ship the spanner and stand up
    the worker-local span/metric collectors."""
    from repro.obs import Metrics, Tracer

    global _WORKER_TRACER, _WORKER_METRICS
    _init_worker(spanner)
    _WORKER_TRACER = Tracer()
    _WORKER_METRICS = Metrics()


def _init_worker_shm_traced(segment_name: str) -> None:
    """Traced variant of :func:`_init_worker_shm`."""
    from repro.obs import Metrics, Tracer

    global _WORKER_TRACER, _WORKER_METRICS
    _init_worker_shm(segment_name)
    _WORKER_TRACER = Tracer()
    _WORKER_METRICS = Metrics()


def _evaluate_text_traced(text: str):
    """Evaluate one chunk inside a worker-side ``evaluate`` span.

    Returns ``(results, span records, metrics delta)``; the scheduler
    adopts the records into the parent trace (re-parented under its
    ``evaluate`` phase span) and merges the metrics delta, so a traced
    parallel run observes exactly what a single process would have.
    """
    tracer, metrics = _WORKER_TRACER, _WORKER_METRICS
    with tracer.span("evaluate", chunk_chars=len(text)) as span:
        started = time.perf_counter()
        results = set(_WORKER_SPANNER.evaluate(text))
        elapsed = time.perf_counter() - started
        span.set("tuples", len(results))
    metrics.histogram("engine.chunk_eval_seconds").observe(elapsed)
    metrics.counter("engine.worker_busy_seconds",
                    pid=os.getpid()).inc(elapsed)
    metrics.counter("engine.worker_chunks", pid=os.getpid()).inc()
    return results, tracer.drain(), metrics.drain()


def evaluate_texts_parallel(
    spanner: SpannerLike,
    texts: Sequence[str],
    workers: int = 5,
    chunksize: int = 1,
    pool: Optional["multiprocessing.pool.Pool"] = None,
) -> List[Set[SpanTuple]]:
    """Evaluate ``spanner`` on each text over a process pool.

    The reusable primitive under every parallel plan (and under the
    corpus engine's scheduler, :mod:`repro.engine.scheduler`): results
    come back *unshifted*, positioned within each text, in input order.
    The spanner is shipped to each worker once (pool initializer), then
    texts are scheduled dynamically — the fine-granularity scheduling
    effect the Introduction credits for the Spark speedups.

    ``pool`` lets a caller supply a long-lived pool whose initializer
    already shipped ``spanner`` (see :meth:`repro.engine.scheduler.
    Scheduler`); otherwise a pool is created for this call
    (``workers <= 1`` evaluates in-process instead).
    """
    if not texts:
        return []
    if pool is not None:
        return list(pool.imap(_evaluate_text, texts, chunksize=chunksize))
    runner = as_runner(spanner)
    if workers <= 1:
        return [set(runner.evaluate(text)) for text in texts]
    # Publish the runner into shared memory for the pool's lifetime
    # when the platform supports it (workers attach by name); the
    # initializer falls back to pickling the runner otherwise.
    from repro.automata import shm

    segment = None
    if shm.available():
        try:
            segment = shm.registry().publish(runner)
        except Exception:
            segment = None
    try:
        if segment is not None:
            initializer, initargs = _init_worker_shm, (segment.name,)
        else:
            initializer, initargs = _init_worker, (runner,)
        with multiprocessing.Pool(
            processes=workers, initializer=initializer, initargs=initargs
        ) as created:
            return list(created.imap(_evaluate_text, texts,
                                     chunksize=chunksize))
    finally:
        if segment is not None:
            shm.registry().unlink(segment.name)


def split_by_parallel(
    spanner: SpannerLike,
    splitter: SplitterLike,
    document: str,
    workers: int = 5,
    chunksize: int = 1,
) -> Set[SpanTuple]:
    """The split plan distributed over a process pool.

    ``workers=5`` matches the paper's 5-core / 5-node experiments.
    """
    spans = splitter_spans(splitter, document)
    chunk_results = evaluate_texts_parallel(
        spanner, [span.extract(document) for span in spans],
        workers=workers, chunksize=chunksize,
    )
    return {
        t.shift(span)
        for span, partial in zip(spans, chunk_results)
        for t in partial
    }


def map_corpus(
    spanner: SpannerLike,
    documents: Sequence[str],
    workers: int = 5,
    splitter: Optional[SplitterLike] = None,
    chunksize: int = 1,
) -> List[Set[SpanTuple]]:
    """Evaluate a corpus in parallel, optionally splitting first.

    With ``splitter=None`` each document is one task (the paper's
    "text already given as a collection of small documents" baseline);
    with a splitter, every chunk of every document becomes its own
    task, reproducing the finer-granularity plan whose benefit the
    Introduction measures on Reuters/Amazon.

    For corpus-scale runs that should also *deduplicate* repeated
    chunks and reuse certified plans, prefer
    :class:`repro.engine.ExtractionEngine`.
    """
    if splitter is None:
        tasks = [(doc, Span(1, len(doc) + 1)) for doc in documents]
        owners = list(range(len(documents)))
    else:
        tasks = []
        owners = []
        for index, doc in enumerate(documents):
            for span in splitter_spans(splitter, doc):
                tasks.append((span.extract(doc), span))
                owners.append(index)
    results: List[Set[SpanTuple]] = [set() for _ in documents]
    chunk_results = evaluate_texts_parallel(
        spanner, [text for text, _span in tasks],
        workers=workers, chunksize=chunksize,
    )
    for (text, span), owner, partial in zip(tasks, owners, chunk_results):
        results[owner].update(t.shift(span) for t in partial)
    return results


def map_corpus_sequential(
    spanner: SpannerLike,
    documents: Sequence[str],
    splitter: Optional[SplitterLike] = None,
) -> List[Set[SpanTuple]]:
    """Sequential counterpart of :func:`map_corpus` (for baselines)."""
    if splitter is None:
        runner = as_runner(spanner)
        return [evaluate_whole(runner, doc) for doc in documents]
    runner = as_runner(spanner)
    return [split_by(runner, splitter, doc) for doc in documents]
