"""Executing extraction: whole-document, split, and parallel plans.

This realizes the Introduction's motivation: once the framework has
certified ``P = P_S o S``, the system may evaluate ``P_S`` on the
chunks of ``S`` independently — sequentially, or distributed over a
process pool (our stand-in for the paper's Spark cluster).
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.spans import Span, SpanTuple

#: Anything with ``evaluate(document) -> set[SpanTuple]``.
SpannerLike = object
#: Anything producing spans for a document (VSA splitter or FastSplitter).
SplitterLike = object


def splitter_spans(splitter: SplitterLike, document: str) -> List[Span]:
    """Spans of a splitter, whatever its representation."""
    if hasattr(splitter, "splits"):
        return list(splitter.splits(document))
    from repro.core.composition import splits_of

    return sorted(splits_of(splitter, document),
                  key=lambda s: (s.begin, s.end))


def evaluate_whole(spanner: SpannerLike, document: str) -> Set[SpanTuple]:
    """Baseline plan: evaluate the spanner on the whole document."""
    return set(spanner.evaluate(document))


def split_by(
    spanner: SpannerLike,
    splitter: SplitterLike,
    document: str,
) -> Set[SpanTuple]:
    """The split plan ``(P_S o S)(d)``, executed sequentially.

    Sound (equal to ``evaluate_whole`` of the original spanner) exactly
    when split-correctness holds; use :class:`repro.runtime.planner.
    Planner` to certify that first.
    """
    results: Set[SpanTuple] = set()
    for span in splitter_spans(splitter, document):
        for t in spanner.evaluate(span.extract(document)):
            results.add(t.shift(span))
    return results


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------

_WORKER_SPANNER: Optional[SpannerLike] = None


def _init_worker(spanner: SpannerLike) -> None:
    global _WORKER_SPANNER
    _WORKER_SPANNER = spanner


def _evaluate_chunk(task: Tuple[str, Span]) -> Set[SpanTuple]:
    chunk, span = task
    return {t.shift(span) for t in _WORKER_SPANNER.evaluate(chunk)}


def split_by_parallel(
    spanner: SpannerLike,
    splitter: SplitterLike,
    document: str,
    workers: int = 5,
    chunksize: int = 1,
) -> Set[SpanTuple]:
    """The split plan distributed over a process pool.

    ``workers=5`` matches the paper's 5-core / 5-node experiments.  The
    spanner is shipped to each worker once (pool initializer), then
    chunks are scheduled dynamically — the fine-granularity scheduling
    effect the Introduction credits for the Spark speedups.
    """
    tasks = [
        (span.extract(document), span)
        for span in splitter_spans(splitter, document)
    ]
    if not tasks:
        return set()
    results: Set[SpanTuple] = set()
    with multiprocessing.Pool(
        processes=workers, initializer=_init_worker, initargs=(spanner,)
    ) as pool:
        for partial in pool.imap_unordered(_evaluate_chunk, tasks,
                                           chunksize=chunksize):
            results.update(partial)
    return results


def map_corpus(
    spanner: SpannerLike,
    documents: Sequence[str],
    workers: int = 5,
    splitter: Optional[SplitterLike] = None,
    chunksize: int = 1,
) -> List[Set[SpanTuple]]:
    """Evaluate a corpus in parallel, optionally splitting first.

    With ``splitter=None`` each document is one task (the paper's
    "text already given as a collection of small documents" baseline);
    with a splitter, every chunk of every document becomes its own
    task, reproducing the finer-granularity plan whose benefit the
    Introduction measures on Reuters/Amazon.
    """
    if splitter is None:
        tasks = [(doc, Span(1, len(doc) + 1)) for doc in documents]
        owners = list(range(len(documents)))
    else:
        tasks = []
        owners = []
        for index, doc in enumerate(documents):
            for span in splitter_spans(splitter, doc):
                tasks.append((span.extract(doc), span))
                owners.append(index)
    results: List[Set[SpanTuple]] = [set() for _ in documents]
    if not tasks:
        return results
    with multiprocessing.Pool(
        processes=workers, initializer=_init_worker, initargs=(spanner,)
    ) as pool:
        for owner, partial in zip(
            owners, pool.imap(_evaluate_chunk, tasks, chunksize=chunksize)
        ):
            results[owner].update(partial)
    return results


def map_corpus_sequential(
    spanner: SpannerLike,
    documents: Sequence[str],
    splitter: Optional[SplitterLike] = None,
) -> List[Set[SpanTuple]]:
    """Sequential counterpart of :func:`map_corpus` (for baselines)."""
    if splitter is None:
        return [evaluate_whole(spanner, doc) for doc in documents]
    return [split_by(spanner, splitter, doc) for doc in documents]
