"""A simulated worker pool for distribution experiments.

The paper's Introduction experiments measure wall-clock speedups of
split-then-distribute plans over 5 cores / a 5-node Spark cluster.  On
a single-CPU host no real concurrency exists, so the benchmark harness
substitutes a *discrete-event simulation*: per-task costs are measured
from real sequential execution of the extractor, and the simulated
pool replays the dynamic greedy scheduling of a multiprocessing pool
or Spark executor (each task goes to the earliest-free worker, in
arrival order).  The phenomenon under study — finer-grained tasks
balance load and shrink the makespan — is a property of the schedule,
which the simulation reproduces exactly; only the concurrency itself
is virtual.  See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.runtime.executor import SpannerLike, SplitterLike, splitter_spans


@dataclass
class SimulatedPool:
    """A pool of identical workers with greedy dynamic scheduling.

    ``per_task_overhead`` models the scheduling/serialization cost a
    real pool pays per task (seconds).
    """

    workers: int = 5
    per_task_overhead: float = 1e-4

    def makespan(self, costs: Sequence[float]) -> float:
        """Simulated wall-clock time to drain ``costs`` (in order).

        Tasks are assigned, in arrival order, to the worker that frees
        up first — the behaviour of ``Pool.imap`` consumers and Spark's
        dynamic allocation.
        """
        if not costs:
            return 0.0
        free_at = [0.0] * self.workers
        heapq.heapify(free_at)
        finish = 0.0
        for cost in costs:
            start = heapq.heappop(free_at)
            end = start + self.per_task_overhead + cost
            finish = max(finish, end)
            heapq.heappush(free_at, end)
        return finish


def measure_task_costs(
    spanner: SpannerLike, chunks: Sequence[str]
) -> List[float]:
    """Real sequential wall-clock cost of evaluating each chunk."""
    costs = []
    for chunk in chunks:
        start = time.perf_counter()
        spanner.evaluate(chunk)
        costs.append(time.perf_counter() - start)
    return costs


@dataclass
class SpeedupResult:
    baseline_makespan: float
    split_makespan: float
    baseline_tasks: int
    split_tasks: int

    @property
    def speedup(self) -> float:
        if self.split_makespan == 0:
            return float("inf")
        return self.baseline_makespan / self.split_makespan


def simulate_corpus_speedup(
    spanner: SpannerLike,
    documents: Sequence[str],
    splitter: SplitterLike,
    workers: int = 5,
    per_task_overhead: float = 1e-4,
    repeats: int = 3,
    chunksize: int = 1,
) -> SpeedupResult:
    """The Introduction's experiment: distribute whole documents vs.
    distribute the chunks produced by the splitter.

    Costs are measured by really running the extractor on every
    document and every chunk (best of ``repeats``); the two makespans
    come from the same simulated pool.  ``chunksize`` batches
    consecutive chunk tasks into one scheduled unit, the way
    ``Pool.imap`` chunking and Spark partitions amortize per-record
    overhead.
    """
    pool = SimulatedPool(workers=workers, per_task_overhead=per_task_overhead)
    doc_costs = _best_costs(spanner, list(documents), repeats)
    chunks: List[str] = []
    for document in documents:
        for span in splitter_spans(splitter, document):
            chunks.append(span.extract(document))
    chunk_costs = _best_costs(spanner, chunks, repeats)
    batched = [
        sum(chunk_costs[i : i + chunksize])
        for i in range(0, len(chunk_costs), chunksize)
    ]
    return SpeedupResult(
        baseline_makespan=pool.makespan(doc_costs),
        split_makespan=pool.makespan(batched),
        baseline_tasks=len(doc_costs),
        split_tasks=len(chunk_costs),
    )


def _best_costs(spanner: SpannerLike, chunks: Sequence[str],
                repeats: int) -> List[float]:
    best: Optional[List[float]] = None
    for _ in range(max(1, repeats)):
        costs = measure_task_costs(spanner, chunks)
        if best is None:
            best = costs
        else:
            best = [min(a, b) for a, b in zip(best, costs)]
    return best or []
