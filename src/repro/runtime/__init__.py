"""Execution runtime: parallel, incremental, and planned extraction.

The systems layer motivated by the paper's Introduction: once
split-correctness is certified, evaluation distributes over chunks
(:mod:`repro.runtime.executor`), re-evaluation after edits touches
only revised segments (:mod:`repro.runtime.incremental`), and a
planner picks the best certified splitter automatically
(:mod:`repro.runtime.planner`).
"""

from repro.runtime.executor import (
    evaluate_whole,
    map_corpus,
    map_corpus_sequential,
    split_by,
    split_by_parallel,
    splitter_spans,
)
from repro.runtime.fast import (
    FastFixedWindowSplitter,
    FastSentenceSplitter,
    FastSeparatorSplitter,
    FastSplitter,
    FastTokenNgramSplitter,
    RegexSpanner,
)
from repro.runtime.incremental import IncrementalExtractor
from repro.runtime.planner import Plan, Planner, RegisteredSplitter, SplitReport

__all__ = [
    "evaluate_whole",
    "map_corpus",
    "map_corpus_sequential",
    "split_by",
    "split_by_parallel",
    "splitter_spans",
    "FastFixedWindowSplitter",
    "FastSentenceSplitter",
    "FastSeparatorSplitter",
    "FastSplitter",
    "FastTokenNgramSplitter",
    "RegexSpanner",
    "IncrementalExtractor",
    "Plan",
    "Planner",
    "RegisteredSplitter",
    "SplitReport",
]
