"""Execution runtime: parallel, incremental, and planned extraction.

The systems layer motivated by the paper's Introduction: once
split-correctness is certified, evaluation distributes over chunks
(:mod:`repro.runtime.executor`), re-evaluation after edits touches
only revised segments (:mod:`repro.runtime.incremental`), and a
planner picks the best certified splitter automatically
(:mod:`repro.runtime.planner`).

**Compile-then-run.**  Every execution path lowers VSet-automata onto
the compiled kernel of :mod:`repro.automata.compiled` before touching
documents: :func:`repro.runtime.executor.as_runner` pins a spanner to
its integer/bitset artifact, and :meth:`repro.runtime.planner.Planner.
certify` lowers the certified plan's split spanner *at certify time* —
so the lowering happens once per plan (not per chunk, not per worker;
pool workers receive the prebuilt artifact by pickling).  The engine's
plan cache then replays certificates with their artifacts attached.

These primitives operate on one document (or one plain list of
documents) at a time.  For *corpus-scale* extraction — certify once
per program via a plan cache, deduplicate repeated chunks across
documents, shard and batch over a worker pool — use the engine layered
on top of this runtime: :class:`repro.engine.ExtractionEngine` is the
preferred corpus-level entry point.
"""

from repro.runtime.executor import (
    as_runner,
    evaluate_texts_parallel,
    evaluate_whole,
    map_corpus,
    map_corpus_sequential,
    split_by,
    split_by_parallel,
    splitter_spans,
)
from repro.runtime.fast import (
    CompiledSpanner,
    FastFixedWindowSplitter,
    FastSentenceSplitter,
    FastSeparatorSplitter,
    FastSplitter,
    FastTokenNgramSplitter,
    RegexSpanner,
)
from repro.runtime.incremental import IncrementalExtractor
from repro.runtime.planner import (
    CertifiedPlan,
    Plan,
    Planner,
    RegisteredSplitter,
    SplitReport,
)

__all__ = [
    "as_runner",
    "CompiledSpanner",
    "evaluate_texts_parallel",
    "evaluate_whole",
    "map_corpus",
    "map_corpus_sequential",
    "split_by",
    "split_by_parallel",
    "splitter_spans",
    "FastFixedWindowSplitter",
    "FastSentenceSplitter",
    "FastSeparatorSplitter",
    "FastSplitter",
    "FastTokenNgramSplitter",
    "RegexSpanner",
    "IncrementalExtractor",
    "CertifiedPlan",
    "Plan",
    "Planner",
    "RegisteredSplitter",
    "SplitReport",
]
