"""Incremental maintenance of extraction results (Introduction).

When a large document undergoes a minor edit — the paper's Wikipedia
model — a split-correct extractor only needs to re-process the revised
segments.  :class:`IncrementalExtractor` materializes the splitter,
caches per-chunk results keyed by chunk *text*, and recomputes only
chunks it has never seen; unchanged segments cost a dictionary lookup.

Soundness requires split-correctness of the extractor by the splitter
(the extractor passed in plays the role of ``P_S``); the constructor
can verify this when both are given as VSet-automata.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.spans import SpanTuple
from repro.runtime.executor import SpannerLike, SplitterLike, splitter_spans
from repro.spanners.vset_automaton import VSetAutomaton


class IncrementalExtractor:
    """Evaluate, then cheaply re-evaluate after edits.

    ``cache_limit`` bounds the number of distinct chunk texts retained
    (oldest evicted first); ``None`` means unbounded.
    """

    def __init__(
        self,
        spanner: SpannerLike,
        splitter: SplitterLike,
        verify: bool = False,
        cache_limit: Optional[int] = None,
    ) -> None:
        if verify:
            self._verify_split_correct(spanner, splitter)
        self.spanner = spanner
        self.splitter = splitter
        self.cache_limit = cache_limit
        self._cache: Dict[str, Set[SpanTuple]] = {}
        self.chunks_evaluated = 0
        self.chunks_reused = 0

    @staticmethod
    def _verify_split_correct(
        spanner: SpannerLike, splitter: SplitterLike
    ) -> None:
        if not isinstance(spanner, VSetAutomaton):
            raise ValueError(
                "verification requires the spanner as a VSet-automaton"
            )
        automaton = (
            splitter.automaton(spanner.doc_alphabet)
            if hasattr(splitter, "automaton")
            else splitter
        )
        from repro.core.self_splittability import is_self_splittable

        if not is_self_splittable(spanner, automaton):
            raise ValueError(
                "extractor is not self-splittable by the splitter; "
                "incremental evaluation would change its semantics"
            )

    def evaluate(self, document: str) -> Set[SpanTuple]:
        """Evaluate on ``document``, reusing cached chunk results."""
        results: Set[SpanTuple] = set()
        for span in splitter_spans(self.splitter, document):
            chunk = span.extract(document)
            local = self._cache.get(chunk)
            if local is None:
                local = set(self.spanner.evaluate(chunk))
                self._store(chunk, local)
                self.chunks_evaluated += 1
            else:
                self.chunks_reused += 1
            results.update(t.shift(span) for t in local)
        return results

    def _store(self, chunk: str, local: Set[SpanTuple]) -> None:
        if self.cache_limit is not None and len(self._cache) >= self.cache_limit:
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[chunk] = local

    def stats(self) -> Dict[str, int]:
        """Counters for evaluated vs. reused chunks (for benchmarks)."""
        return {
            "evaluated": self.chunks_evaluated,
            "reused": self.chunks_reused,
            "cached_chunks": len(self._cache),
        }
