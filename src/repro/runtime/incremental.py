"""Incremental maintenance of extraction results (Introduction).

When a large document undergoes a minor edit — the paper's Wikipedia
model — a split-correct extractor only needs to re-process the revised
segments.  :class:`IncrementalExtractor` materializes the splitter,
caches per-chunk results keyed by chunk *text*, and recomputes only
chunks it has never seen; unchanged segments cost a dictionary lookup.

The same edit discipline maintains the *index* (:mod:`repro.index`):
construct the extractor with ``index=`` (a :class:`repro.index.store.
SegmentedIndex`, or anything with ``update_document``) and give
:meth:`IncrementalExtractor.evaluate` a ``doc_id``, and every
evaluation diffs the document's chunk set against what the index
remembers — new chunk texts land in the index's staged delta segment,
dropped ones are tombstoned, unchanged ones cost nothing.  Re-indexing
cost, like re-extraction cost, is proportional to the edit.

Soundness requires split-correctness of the extractor by the splitter
(the extractor passed in plays the role of ``P_S``); the constructor
can verify this when both are given as VSet-automata.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.spans import SpanTuple
from repro.runtime.executor import SpannerLike, SplitterLike, splitter_spans
from repro.spanners.vset_automaton import VSetAutomaton


class IncrementalExtractor:
    """Evaluate, then cheaply re-evaluate after edits.

    ``cache_limit`` bounds the number of distinct chunk texts retained
    (least-recently-*used* evicted first — a cache hit refreshes
    recency); ``None`` means unbounded.  ``index`` optionally attaches
    a delta-maintainable corpus index kept in sync per evaluated
    document (see the module docstring).
    """

    def __init__(
        self,
        spanner: SpannerLike,
        splitter: SplitterLike,
        verify: bool = False,
        cache_limit: Optional[int] = None,
        index: Optional[object] = None,
    ) -> None:
        if verify:
            self._verify_split_correct(spanner, splitter)
        if index is not None and not hasattr(index, "update_document"):
            raise ValueError(
                "index must support delta maintenance "
                "(update_document); use repro.index.store.SegmentedIndex"
            )
        self.spanner = spanner
        self.splitter = splitter
        self.cache_limit = cache_limit
        self.index = index
        self._cache: Dict[str, Set[SpanTuple]] = {}
        self.chunks_evaluated = 0
        self.chunks_reused = 0

    @staticmethod
    def _verify_split_correct(
        spanner: SpannerLike, splitter: SplitterLike
    ) -> None:
        if not isinstance(spanner, VSetAutomaton):
            raise ValueError(
                "verification requires the spanner as a VSet-automaton"
            )
        automaton = (
            splitter.automaton(spanner.doc_alphabet)
            if hasattr(splitter, "automaton")
            else splitter
        )
        from repro.core.self_splittability import is_self_splittable

        if not is_self_splittable(spanner, automaton):
            raise ValueError(
                "extractor is not self-splittable by the splitter; "
                "incremental evaluation would change its semantics"
            )

    def evaluate(
        self, document: str, doc_id: Optional[str] = None
    ) -> Set[SpanTuple]:
        """Evaluate on ``document``, reusing cached chunk results.

        With an attached ``index`` and a ``doc_id``, the document's
        chunk set is also diffed into the index (delta segment for new
        texts, tombstones for dropped ones) before returning.
        """
        results: Set[SpanTuple] = set()
        chunk_texts = []
        for span in splitter_spans(self.splitter, document):
            chunk = span.extract(document)
            chunk_texts.append(chunk)
            local = self._cache.get(chunk)
            if local is None:
                local = set(self.spanner.evaluate(chunk))
                self._store(chunk, local)
                self.chunks_evaluated += 1
            else:
                # LRU refresh: a hit moves the chunk to the young end,
                # so bounded caches evict by recency of *use*, not by
                # insertion order (hot chunks survive edit churn).
                self._cache[chunk] = self._cache.pop(chunk)
                self.chunks_reused += 1
            results.update(t.shift(span) for t in local)
        if self.index is not None and doc_id is not None:
            self.index.update_document(doc_id, chunk_texts)
        return results

    def _store(self, chunk: str, local: Set[SpanTuple]) -> None:
        if chunk in self._cache:
            # Overwrite refreshes recency (mirrors ChunkCache.store).
            del self._cache[chunk]
        elif (self.cache_limit is not None
                and len(self._cache) >= self.cache_limit):
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[chunk] = local

    def stats(self) -> Dict[str, int]:
        """Counters for evaluated vs. reused chunks (for benchmarks)."""
        return {
            "evaluated": self.chunks_evaluated,
            "reused": self.chunks_reused,
            "cached_chunks": len(self._cache),
        }


def diff_chunks(
    old: Tuple[str, ...], new: Tuple[str, ...]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(added, removed)`` chunk texts between two chunkings.

    Multiset difference in first-occurrence order — the primitive the
    delta-index path shares with anything else that needs to know what
    an edit actually changed.  Unchanged chunks appear in neither side.
    """
    from collections import Counter

    old_counts = Counter(old)
    new_counts = Counter(new)
    added = []
    for text in new:
        if new_counts[text] > old_counts.get(text, 0):
            added.append(text)
            new_counts[text] -= 1
    removed = []
    old_counts = Counter(old)
    new_counts = Counter(new)
    for text in old:
        if old_counts[text] > new_counts.get(text, 0):
            removed.append(text)
            old_counts[text] -= 1
    return tuple(added), tuple(removed)
