"""A query planner that exploits split-correctness (Introduction).

Given a registry of materialized splitters (sentences, paragraphs,
records, ...) and an extractor, the planner runs the framework's
decision procedures to find the splitters the extractor is
split-correct for, picks the preferred one, and emits an executable
plan.  It also powers the paper's *debugging* scenario: reporting
which common splitters a program is (not) splittable by, so a
developer can spot unintended boundary crossings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.self_splittability import is_self_splittable
from repro.core.splittability import canonical_split_spanner, is_splittable
from repro.core.spans import SpanTuple
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.executor import split_by, split_by_parallel
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters.disjointness import is_disjoint


@dataclass
class RegisteredSplitter:
    """A splitter known to the planner.

    ``priority`` orders candidates (higher = preferred, typically the
    finer granularity); ``executor`` optionally carries a fast
    implementation used at run time instead of the automaton.
    """

    name: str
    automaton: VSetAutomaton
    priority: int = 0
    executor: Optional[object] = None

    def runtime_splitter(self):
        return self.executor if self.executor is not None else self.automaton


@dataclass
class Plan:
    """An executable extraction plan.

    ``compiled_runner`` pins the split spanner's compiled kernel
    artifact; it is produced by :meth:`lower` — called at certify time
    by :meth:`Planner.certify`, so execution (and every pool worker the
    runner is shipped to) replays the lowering instead of repeating it
    per chunk.
    """

    mode: str                      # "split" or "whole"
    splitter: Optional[RegisteredSplitter]
    split_spanner: Optional[VSetAutomaton]
    self_splittable: bool = False
    compiled_runner: Optional[object] = field(default=None, compare=False)
    #: The paper result that justifies this plan (explain metadata,
    #: filled in by :meth:`Planner.plan`), e.g. ``"Theorem 5.17"``.
    theorem: Optional[str] = field(default=None, compare=False)
    #: Human-readable name of the decision procedure that actually ran.
    procedure: Optional[str] = field(default=None, compare=False)

    def lower(self) -> int:
        """Lower the split spanner onto the compiled kernel.

        Idempotent; returns how many artifacts *this call* produced
        (0 or 1), which certification records for the engine's
        statistics.
        """
        if (self.mode != "whole" and self.split_spanner is not None
                and self.compiled_runner is None):
            from repro.runtime.fast import CompiledSpanner

            runner = CompiledSpanner(self.split_spanner)
            self.compiled_runner = runner
            return 1 if runner.freshly_lowered else 0
        return 0

    def execute(
        self, spanner: VSetAutomaton, document: str,
        workers: Optional[int] = None,
    ) -> Set[SpanTuple]:
        if self.mode == "whole" or self.splitter is None:
            return set(spanner.evaluate(document))
        if self.compiled_runner is not None:
            runner: object = self.compiled_runner
        elif self.split_spanner is not None:
            runner = self.split_spanner
        else:
            runner = spanner
        target = self.splitter.runtime_splitter()
        if workers:
            return split_by_parallel(runner, target, document, workers)
        return split_by(runner, target, document)


@dataclass
class CertifiedPlan:
    """A :class:`Plan` together with its certification record.

    This is the reusable artifact the corpus engine caches
    (:mod:`repro.engine.cache`): the decision procedures that produced
    ``plan`` are PSPACE in general, so a corpus run pays
    ``certification_seconds`` once and re-executes the plan on every
    document.  ``fingerprint`` identifies the (spanner, splitter
    registry) pair the certificate is valid for; it is filled in by the
    caching layer, which owns the fingerprinting scheme.
    """

    plan: Plan
    certification_seconds: float
    fingerprint: Optional[str] = None
    #: How many times this certificate has been reused from a cache.
    reuses: int = field(default=0, compare=False)
    #: Compiled kernel artifacts produced while certifying (0 or 1);
    #: replays of the certificate never re-lower.
    artifacts_compiled: int = field(default=0, compare=False)
    #: The specification automaton that was certified (what runs on
    #: chunks under self-splittable and whole-document plans); the
    #: index subsystem derives its skip conditions from here.
    specification: Optional[VSetAutomaton] = field(default=None,
                                                  compare=False, repr=False)

    @property
    def mode(self) -> str:
        return self.plan.mode

    @property
    def splitter_name(self) -> Optional[str]:
        return self.plan.splitter.name if self.plan.splitter else None

    def explain(self) -> Dict[str, object]:
        """The certificate as a flat report (what ``.explain()`` on a
        fluent :class:`repro.query.ResultSet` surfaces).

        Covers the selected plan (mode, splitter, whether rewriting was
        needed), the paper theorem and concrete procedure that
        certified it, the compiled-artifact identity, and the
        certification cost/reuse accounting.
        """
        plan = self.plan
        runner = plan.compiled_runner
        kernel_tier = getattr(runner, "kernel_tier", None)
        if kernel_tier is None and self.specification is not None:
            # Self-splittable and whole-document plans run the program
            # itself on chunks; report its artifact's tier when it has
            # already been lowered (never force a lowering here).
            artifact = getattr(self.specification, "_compiled", None)
            kernel_tier = getattr(artifact, "kernel_tier", None)
        return {
            "mode": plan.mode,
            "splitter": self.splitter_name,
            "self_splittable": plan.self_splittable,
            "split_spanner": ("original program" if plan.self_splittable
                              else "canonical split-spanner"
                              if plan.split_spanner is not None else None),
            "theorem": plan.theorem,
            "procedure": plan.procedure,
            "compiled_artifact": (f"kernel-{id(runner):x}"
                                  if runner is not None else None),
            "kernel_tier": kernel_tier,
            "certification_seconds": self.certification_seconds,
            "certificate": self.fingerprint,
            "reuses": self.reuses,
            "artifacts_compiled": self.artifacts_compiled,
        }

    def factor_source(self) -> Optional[VSetAutomaton]:
        """The automaton whose matching language bounds chunk results.

        What actually evaluates chunks under this certificate: the
        canonical split-spanner for rewritten split plans, otherwise
        the certified specification itself (self-splittable plans run
        the program on chunks; whole-document plans run it on the
        document — one chunk either way).
        """
        plan = self.plan
        if plan.mode != "whole" and plan.split_spanner is not None:
            return plan.split_spanner
        return self.specification

    def factor_set(self):
        """Necessary factors of this plan's chunk evaluation (lazy).

        Computed at most once per certificate — cached certificates
        replayed from a :class:`repro.engine.cache.PlanCache` carry
        the analysis with them — and ``None`` when the analysis does
        not apply (see :func:`repro.index.factors.factors_of`).
        """
        if "_factor_set" not in self.__dict__:
            from repro.index.factors import factors_of

            source = self.factor_source()
            try:
                self.__dict__["_factor_set"] = (
                    factors_of(source) if source is not None else None
                )
            except Exception:
                self.__dict__["_factor_set"] = None
        return self.__dict__["_factor_set"]

    def chunk_runner(self) -> Optional[object]:
        """The chunk evaluator this certificate carries, if any.

        The plan's compiled split-spanner artifact (or the split
        spanner itself if it was never lowered); ``None`` when the
        certificate implies running the program's own executable —
        callers fall back to that themselves.
        """
        plan = self.plan
        if plan.mode != "whole" and plan.split_spanner is not None:
            if plan.compiled_runner is not None:
                return plan.compiled_runner
            return plan.split_spanner
        return None

    def execute(
        self, spanner: VSetAutomaton, document: str,
        workers: Optional[int] = None,
    ) -> Set[SpanTuple]:
        return self.plan.execute(spanner, document, workers=workers)


@dataclass
class SplitReport:
    """Outcome of the analysis of one candidate splitter."""

    name: str
    disjoint: bool
    self_splittable: bool
    splittable: Optional[bool]     # None = not determined (non-disjoint)
    #: For non-disjoint splitters: a shortest document with two
    #: distinct overlapping splits (debugging aid).
    overlap_witness: Optional[str] = None


class Planner:
    """Analyse extractors against a registry of splitters.

    ``method`` selects the self-splittability procedure the planner
    certifies with: ``"general"`` (default) always runs the exact
    PSPACE procedure of Theorem 5.16; ``"auto"`` uses the PTIME dfVSA
    fragment of Theorem 5.17 when its preconditions (deterministic
    functional automata, disjoint splitter) hold — subject to that
    fragment's documented empty-span boundary corner case, see
    :func:`repro.core.api.split_correct`; ``"fast"`` certifies *only*
    within the fragment — candidates outside it (and the PSPACE
    splittability scan) are skipped, so a query that nothing certifies
    in PTIME falls back to whole-document evaluation.

    ``tracer`` (:class:`repro.obs.trace.Tracer`) brackets planning in
    spans: one ``certify.candidate`` span per splitter examined —
    carrying the splitter name, the theorem that decided it, and the
    decision — under the ``certify`` span :meth:`certify` opens, plus
    a ``compile`` span for the kernel lowering.  The default disabled
    tracer makes all of that a no-op.
    """

    def __init__(self, splitters: Sequence[RegisteredSplitter],
                 method: str = "general",
                 tracer: Optional[Tracer] = None) -> None:
        from repro.core.api import check_method

        check_method(method)
        self.splitters = sorted(
            splitters, key=lambda s: -s.priority
        )
        self.method = method
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _certify_self_splittable(
        self, spanner: VSetAutomaton, automaton: VSetAutomaton
    ):
        """Decide ``P = P o S`` per ``self.method``.

        Returns ``(answer, theorem, procedure)`` recording which paper
        result actually ran (explain metadata).
        """
        if self.method != "general":
            from repro.core.api import _fast_applicable
            from repro.core.self_splittability import (
                is_self_splittable_dfvsa,
            )

            if _fast_applicable(automaton, spanner):
                return (is_self_splittable_dfvsa(spanner, automaton,
                                                 check=False),
                        "Theorem 5.17",
                        "dfVSA self-splittability (PTIME)")
            if self.method == "fast":
                # Outside the tractable fragment: 'fast' never runs a
                # PSPACE procedure, so the candidate is skipped rather
                # than certified.
                return (False, None, None)
        return (is_self_splittable(spanner, automaton),
                "Theorem 5.16",
                "general self-splittability (PSPACE)")

    def analyse(self, spanner: VSetAutomaton) -> List[SplitReport]:
        """The debugging report: how ``spanner`` splits by each
        registered splitter (the paper's HTTP-log scenario).

        Honours ``self.method``: under ``"fast"``, candidates outside
        the PTIME fragment report ``self_splittable=False`` and
        ``splittable=None`` (not determined) — consistent with the
        plan the same planner would emit.
        """
        from repro.splitters.disjointness import overlap_witness

        reports = []
        for registered in self.splitters:
            automaton = registered.automaton
            witness = overlap_witness(automaton)
            disjoint = witness is None
            self_split, _theorem, _procedure = \
                self._certify_self_splittable(spanner, automaton)
            splittable: Optional[bool]
            if self_split:
                splittable = True
            elif self.method == "fast":
                # The splittability test is PSPACE; 'fast' leaves it
                # undetermined.
                splittable = None
            elif disjoint:
                splittable = is_splittable(
                    spanner, automaton, require_disjoint=False
                )
            else:
                splittable = None
            reports.append(
                SplitReport(registered.name, disjoint, self_split,
                            splittable, witness)
            )
        return reports

    def plan(self, spanner: VSetAutomaton) -> Plan:
        """The preferred executable plan for ``spanner``.

        Self-splittable candidates win (no rewriting needed); otherwise
        a splittable candidate is used with its canonical split-spanner
        (Lemma 5.14 makes it the minimal valid choice).  Falls back to
        whole-document evaluation.

        Every candidate examined gets its own ``certify.candidate``
        span (splitter, check, theorem, decision) on the planner's
        tracer — the per-theorem timing breakdown of certification.
        """
        tracer = self.tracer
        for registered in self.splitters:
            with tracer.span("certify.candidate",
                             splitter=registered.name,
                             check="self-splittability") as span:
                answer, theorem, procedure = self._certify_self_splittable(
                    spanner, registered.automaton
                )
                span.set("decision", answer)
                if theorem is not None:
                    span.set("theorem", theorem)
                    span.set("procedure", procedure)
            if answer:
                return Plan("split", registered, None, self_splittable=True,
                            theorem=theorem, procedure=procedure)
        for registered in self.splitters:
            if self.method == "fast":
                # The splittability test (and its canonical rewriting)
                # has no PTIME fragment; 'fast' stops at the
                # self-splittability scan above.
                break
            if not is_disjoint(registered.automaton):
                continue
            with tracer.span("certify.candidate",
                             splitter=registered.name,
                             check="splittability",
                             theorem="Theorem 5.15") as span:
                splittable = is_splittable(spanner, registered.automaton,
                                           require_disjoint=False)
                span.set("decision", splittable)
            if splittable:
                with tracer.span("certify.rewrite",
                                 splitter=registered.name):
                    canonical = canonical_split_spanner(
                        spanner, registered.automaton
                    )
                return Plan(
                    "split", registered, canonical,
                    theorem="Theorem 5.15",
                    procedure=("splittability via canonical "
                               "split-spanner (Lemma 5.14)"),
                )
        return Plan("whole", None, None,
                    procedure="whole-document evaluation")

    def certify(
        self, spanner: VSetAutomaton, fingerprint: Optional[str] = None
    ) -> CertifiedPlan:
        """Run the decision procedures once and record the certificate.

        The returned :class:`CertifiedPlan` is safe to reuse for every
        document (and every future corpus) as long as the spanner and
        the splitter registry are unchanged — which is exactly what
        ``fingerprint`` lets a cache check.

        Certification is also when the plan is *lowered*: the split
        spanner compiles onto the integer/bitset kernel here, once, so
        executing the certificate — in-process or on pool workers —
        never re-lowers per chunk.
        """
        start = time.perf_counter()
        plan = self.plan(spanner)
        with self.tracer.span("compile") as span:
            artifacts = plan.lower()
            span.set("artifacts", artifacts)
        elapsed = time.perf_counter() - start
        return CertifiedPlan(plan, elapsed, fingerprint,
                             artifacts_compiled=artifacts,
                             specification=spanner)
