"""The fluent :class:`Splitter` wrapper over the builder registry.

A :class:`Splitter` pairs a splitter's VSet-automaton specification
(what the decision procedures certify against) with an optional fast
executor (what the runtime segments documents with) under a stable
name.  Named construction goes through the single registry of
:func:`repro.splitters.builders.build_named` — the same dispatch the
CLI uses — so ``Splitter.named("tokens", "ab .")`` and
``python -m repro ... --splitters tokens`` can never disagree::

    >>> tokens = Splitter.named("tokens", "ab .")
    >>> [span.extract("aa b.") for span in tokens.splits("aa b.")]
    ['aa', 'b.']
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional

from repro.core.spans import Span
from repro.errors import ReproError
from repro.runtime.planner import RegisteredSplitter
from repro.spanners.vset_automaton import VSetAutomaton


class Splitter:
    """An immutable, named document splitter.

    ``automaton`` is the unary VSet-automaton specification;
    ``executor`` optionally carries a fast implementation (any object
    with ``splits(document) -> [Span]``) used at run time instead of
    evaluating the automaton.
    """

    __slots__ = ("automaton", "name", "executor")

    def __init__(
        self,
        automaton: VSetAutomaton,
        name: str = "splitter",
        executor: Optional[object] = None,
    ) -> None:
        if not isinstance(automaton, VSetAutomaton):
            raise ReproError(
                f"a Splitter wraps a VSetAutomaton specification, got "
                f"{type(automaton).__name__}"
            )
        if automaton.arity != 1:
            raise ReproError(
                f"a splitter must be unary (one span variable), got "
                f"arity {automaton.arity}"
            )
        object.__setattr__(self, "automaton", automaton)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "executor", executor)

    def __setattr__(self, attribute: str, value: object) -> None:
        raise AttributeError("Splitter is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def named(
        cls,
        name: str,
        alphabet: Iterable[str],
        executor: Optional[object] = None,
    ) -> "Splitter":
        """Build a registry splitter by name over ``alphabet``.

        ``name`` is any of :func:`repro.splitters.builders.
        known_splitter_names` — ``tokens``, ``sentences``,
        ``paragraphs``, ``records``, ``whole``, or the parametric
        ``ngram<N>`` / ``window<N>``.  Raises
        :class:`repro.errors.UnknownSplitterError` (listing the known
        names) otherwise.
        """
        from repro.splitters.builders import build_named

        return cls(build_named(name, frozenset(alphabet)), name=name,
                   executor=executor)

    @classmethod
    def from_vsa(
        cls,
        automaton: VSetAutomaton,
        name: str = "splitter",
        executor: Optional[object] = None,
    ) -> "Splitter":
        """Wrap an existing unary VSet-automaton."""
        return cls(automaton, name=name, executor=executor)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> FrozenSet:
        return self.automaton.doc_alphabet

    def splits(self, document: str) -> List[Span]:
        """The chunk spans of ``document`` (sorted by position)."""
        from repro.runtime.executor import splitter_spans

        return splitter_spans(self.executor if self.executor is not None
                              else self.automaton, document)

    def chunks(self, document: str) -> List[str]:
        """The chunk texts of ``document``."""
        return [span.extract(document) for span in self.splits(document)]

    def is_disjoint(self) -> bool:
        """Do the chunks of every document pairwise not overlap?
        (Proposition 5.5; the precondition of Theorems 5.7/5.15/5.17.)
        """
        from repro.splitters.disjointness import is_disjoint

        return is_disjoint(self.automaton)

    def registered(self, priority: int = 0) -> RegisteredSplitter:
        """This splitter as a planner registry entry."""
        return RegisteredSplitter(self.name, self.automaton,
                                  priority=priority, executor=self.executor)

    def __repr__(self) -> str:
        fast = f", executor={type(self.executor).__name__}" \
            if self.executor is not None else ""
        return f"Splitter({self.name!r}{fast})"
