"""Lazy, replayable query results: the :class:`ResultSet`.

``Query.over(corpus)`` returns a :class:`ResultSet` without touching a
single document: extraction happens batch by batch as the result set
is consumed (:meth:`ResultSet.stream`), driven by the engine's lazy
:meth:`repro.engine.ExtractionEngine.run_iter`.  Consumed documents
are retained, so iterating twice — or calling a materializer after a
partial stream — never re-runs the engine on documents it already
produced.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.spans import SpanTuple
from repro.engine.corpus import Corpus
from repro.engine.engine import Program
from repro.engine.stats import EngineStats
from repro.runtime.planner import CertifiedPlan


class ResultSet:
    """Streaming per-document results of one query run.

    Iteration yields ``(doc_id, frozenset_of_span_tuples)`` in corpus
    order.  The engine is only advanced as far as consumption demands;
    ``to_dicts()`` / ``texts()`` / ``materialize()`` drain whatever
    remains.
    """

    def __init__(
        self,
        engine,
        corpus: Corpus,
        program: Program,
        certified: CertifiedPlan,
        stats_before: Optional[EngineStats] = None,
    ) -> None:
        self._engine = engine
        self._corpus = corpus
        self._program = program
        self._certified = certified
        self._stats_before = stats_before
        self._source: Optional[Iterator] = None
        self._order: List[str] = []
        self._results: Dict[str, FrozenSet[SpanTuple]] = {}
        self._complete = False

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def _advance(self) -> Optional[Tuple[str, FrozenSet[SpanTuple]]]:
        """Pull one more document out of the engine (or ``None``)."""
        if self._complete:
            return None
        if self._source is None:
            self._source = self._engine.run_iter(self._corpus, self._program)
        try:
            doc_id, tuples = next(self._source)
        except StopIteration:
            self._complete = True
            self._source = None
            return None
        frozen = frozenset(tuples)
        self._order.append(doc_id)
        self._results[doc_id] = frozen
        return doc_id, frozen

    def stream(self) -> Iterator[Tuple[str, FrozenSet[SpanTuple]]]:
        """Yield ``(doc_id, tuples)`` lazily, in corpus order.

        Safe to call repeatedly: already-produced documents replay
        from the retained results, then the engine resumes where the
        last consumer stopped.  Concurrent streams share one pass over
        the corpus.
        """
        index = 0
        while True:
            while index < len(self._order):
                doc_id = self._order[index]
                index += 1
                yield doc_id, self._results[doc_id]
            if self._advance() is None:
                return

    def __iter__(self) -> Iterator[Tuple[str, FrozenSet[SpanTuple]]]:
        return self.stream()

    def __len__(self) -> int:
        return len(self._corpus)

    def __getitem__(self, doc_id: str) -> FrozenSet[SpanTuple]:
        """The tuples of one document, streaming no further than it."""
        while doc_id not in self._results:
            if self._advance() is None:
                raise KeyError(doc_id)
        return self._results[doc_id]

    # ------------------------------------------------------------------
    # Materializers
    # ------------------------------------------------------------------

    def materialize(self) -> Dict[str, FrozenSet[SpanTuple]]:
        """Drain the stream; every document's tuples by id."""
        for _ in self.stream():
            pass
        return dict(self._results)

    def total_tuples(self) -> int:
        return sum(len(tuples) for tuples in self.materialize().values())

    def to_dicts(self) -> List[Dict[str, object]]:
        """Every result tuple as a flat JSON-friendly dict.

        One dict per (document, tuple): ``{"doc": id, <variable>:
        {"begin": b, "end": e, "text": extracted}}``, sorted by
        document order then span positions — the shape notebooks and
        JSON writers want.
        """
        rows: List[Dict[str, object]] = []
        self.materialize()
        for doc_id in self._order:
            text = self._corpus[doc_id].text
            document_rows = []
            for span_tuple in self._results[doc_id]:
                row: Dict[str, object] = {"doc": doc_id}
                for variable in sorted(span_tuple.variables(), key=str):
                    span = span_tuple[variable]
                    row[str(variable)] = {
                        "begin": span.begin,
                        "end": span.end,
                        "text": span.extract(text),
                    }
                document_rows.append(row)
            document_rows.sort(key=lambda row: [
                (name, value["begin"], value["end"])
                for name, value in sorted(row.items())
                if name != "doc"
            ])
            rows.extend(document_rows)
        return rows

    def texts(self, variable: Optional[object] = None) -> List[str]:
        """The extracted strings (of ``variable``, or of every
        variable when the queries' tuples are unary/unambiguous)."""
        extracted: List[str] = []
        self.materialize()
        for doc_id in self._order:
            text = self._corpus[doc_id].text
            document_texts = []
            for span_tuple in self._results[doc_id]:
                if variable is not None:
                    document_texts.append(span_tuple[variable].extract(text))
                else:
                    for name in sorted(span_tuple.variables(), key=str):
                        document_texts.append(
                            span_tuple[name].extract(text)
                        )
            extracted.extend(sorted(document_texts))
        return extracted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def plan(self) -> CertifiedPlan:
        return self._certified

    @property
    def trace(self):
        """The engine's :class:`repro.obs.trace.Tracer` (the shared
        disabled tracer unless the query was built with
        :meth:`repro.query.Query.traced`)."""
        return self._engine.tracer

    @property
    def metrics(self):
        """The engine's :class:`repro.obs.metrics.Metrics` registry."""
        return self._engine.metrics

    def stats(self) -> EngineStats:
        """What this run contributed to the engine's counters so far
        (grows as the stream is consumed)."""
        current = self._engine.stats()
        if self._stats_before is None:
            return current
        return current.since(self._stats_before)

    def explain(self) -> Dict[str, object]:
        """The full run report: certificate plus execution shape.

        The certificate half (mode, splitter, theorem, procedure,
        compiled artifact, certification cost) comes from
        :meth:`repro.runtime.planner.CertifiedPlan.explain`; the
        execution half records what this result set is running over
        and the engine counters accumulated so far.
        """
        report = self._certified.explain()
        if report.get("compiled_artifact") is None:
            # Self-splittable (and whole-document) plans run the
            # program's own runner; report that artifact instead —
            # resolved through the engine so its lowering accounting
            # (``artifacts_compiled``) sees the first lowering even
            # when explain() runs before any document streams.
            runner = self._engine.runner_for(self._certified,
                                             self._program)
            report["compiled_artifact"] = \
                f"{type(runner).__name__}-{id(runner):x}"
        stats = self.stats()
        report["index"] = self._engine.prefilter_report(self._certified)
        tracer = self._engine.tracer
        trace_report: Dict[str, object] = {"enabled": tracer.enabled}
        if tracer.enabled:
            trace_report["spans"] = len(tracer)
            trace_report["phases"] = tracer.phase_durations()
        report["trace"] = trace_report
        report.update({
            "program": self._program.name,
            "documents": len(self._corpus),
            "documents_streamed": len(self._order),
            "workers": self._engine.scheduler.workers,
            "batch_size": self._engine.scheduler.batch_size,
            "certifications": stats.certifications,
            "stats": stats.snapshot(),
        })
        return report

    def __repr__(self) -> str:
        state = "complete" if self._complete else \
            f"{len(self._order)}/{len(self._corpus)} streamed"
        return (f"ResultSet({self._program.name!r}, "
                f"{len(self._corpus)} documents, {state})")
