"""The fluent query API: the documented front door of ``repro``.

The paper pitches a *declarative* workflow — write a spanner, pick a
splitter, and let the system certify split-correctness and
parallelize.  This package is that surface, layered on the corpus
engine (:mod:`repro.engine`) and the compiled kernel
(:mod:`repro.automata.compiled`)::

    from repro import Q, Spanner

    spanner = Spanner.regex(".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}",
                            alphabet="ab .")
    results = Q(spanner).split_by("tokens").workers(4).over(corpus)
    for doc_id, tuples in results.stream():   # lazy, in corpus order
        ...
    results.explain()   # plan, theorem, compiled artifact, stats

* :class:`Spanner` — immutable wrapper over any ``SpannerLike`` with
  the spanner algebra as operators (``|`` union, ``&`` intersect,
  ``-`` difference, ``.project``, ``.join``);
* :class:`Splitter` — named splitters out of the single builder
  registry the CLI also uses;
* :class:`Query` / :func:`Q` — the chainable builder;
* :class:`ResultSet` — lazy streaming results with materializers and
  ``.explain()``.

Errors raised by this surface derive from
:class:`repro.errors.ReproError`.
"""

from repro.errors import (
    CertificationError,
    NotFunctionalError,
    ReproError,
    UnknownSplitterError,
)
from repro.query.query import Q, Query
from repro.query.results import ResultSet
from repro.query.spanner import Spanner
from repro.query.splitter import Splitter

__all__ = [
    "Q",
    "Query",
    "ResultSet",
    "Spanner",
    "Splitter",
    "ReproError",
    "NotFunctionalError",
    "CertificationError",
    "UnknownSplitterError",
]
