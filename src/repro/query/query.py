"""The chainable :class:`Query` builder (and its ``Q`` entry point).

One fluent chain covers the paper's whole workflow — write a spanner,
pick splitters, certify, execute::

    Q(Spanner.regex(".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", "ab ."))
        .split_by("tokens")
        .workers(4)
        .over(corpus)

Builders are immutable: every configuration method returns a new
:class:`Query`, so partially-configured queries can be shared and
forked safely.  (The one piece of derived state — the lazily built
engine handle of :meth:`Query.engine` — is cached on first use;
queries are not synchronized for concurrent first execution across
threads.)  Execution goes through the corpus engine
(:class:`repro.engine.ExtractionEngine`) — certification runs exactly
once per (program, registry) pair via the plan cache, chunks
deduplicate corpus-wide, and results stream lazily as a
:class:`repro.query.ResultSet`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple, Union

from repro.core.spans import SpanTuple
from repro.errors import ReproError
from repro.query.results import ResultSet
from repro.query.spanner import Spanner
from repro.query.splitter import Splitter

SplitterSpec = Union[str, Splitter]


class Query:
    """An immutable, chainable extraction query.

    Configuration methods (:meth:`split_by`, :meth:`method`,
    :meth:`workers`, :meth:`batch_size`, :meth:`using`) each return a
    new query; :meth:`over` executes against a corpus and returns a
    lazy :class:`ResultSet`; :meth:`on` is the single-document
    shortcut.
    """

    __slots__ = ("_spanner", "_splitters", "_method", "_workers",
                 "_batch_size", "_chunk_cache_limit", "_engine",
                 "_engine_explicit", "_index", "_tracer", "_flight")

    def __init__(self, spanner: object, **settings: object) -> None:
        if not isinstance(spanner, Spanner):
            spanner = Spanner(spanner)
        object.__setattr__(self, "_spanner", spanner)
        object.__setattr__(self, "_splitters",
                           settings.get("splitters", ()))
        object.__setattr__(self, "_method",
                           settings.get("method", "general"))
        object.__setattr__(self, "_workers", settings.get("workers", 0))
        object.__setattr__(self, "_batch_size",
                           settings.get("batch_size", 32))
        object.__setattr__(self, "_chunk_cache_limit",
                           settings.get("chunk_cache_limit"))
        object.__setattr__(self, "_engine", settings.get("engine"))
        object.__setattr__(self, "_engine_explicit",
                           settings.get("engine_explicit", False))
        # None = prefiltering off; True = auto-build on .over();
        # a CorpusIndex = use the prebuilt index.
        object.__setattr__(self, "_index", settings.get("index"))
        # None = untraced; a repro.obs.Tracer = collect phase spans.
        object.__setattr__(self, "_tracer", settings.get("tracer"))
        # None = no flight recording; a repro.obs.FlightRecorder =
        # the service built by .serve() records completed queries.
        object.__setattr__(self, "_flight", settings.get("flight"))

    def __setattr__(self, attribute: str, value: object) -> None:
        raise AttributeError("Query is immutable; chain methods instead")

    def _evolve(self, **overrides: object) -> "Query":
        settings = {
            "splitters": self._splitters,
            "method": self._method,
            "workers": self._workers,
            "batch_size": self._batch_size,
            "chunk_cache_limit": self._chunk_cache_limit,
            # A lazily built engine is derived state and never carries
            # over; an engine pinned with .using() does.
            "engine": self._engine if self._engine_explicit else None,
            "engine_explicit": self._engine_explicit,
            "index": self._index,
            "tracer": self._tracer,
            "flight": self._flight,
        }
        settings.update(overrides)
        return Query(self._spanner, **settings)

    def _reconfigure(self, **overrides: object) -> "Query":
        """Evolve a setting that shapes the engine; rejected once the
        query is pinned to an explicit engine."""
        if self._engine_explicit:
            raise ReproError(
                "this query is pinned to an engine via .using(); "
                "configure splitters/method/workers before .using(...), "
                "or configure the engine itself"
            )
        return self._evolve(**overrides)

    # ------------------------------------------------------------------
    # Configuration (each returns a new Query)
    # ------------------------------------------------------------------

    def split_by(self, *splitters: SplitterSpec) -> "Query":
        """Register candidate splitters, preferred first.

        Each argument is a :class:`Splitter` or a registry name
        (``"tokens"``, ``"ngram3"``, ...) resolved over the spanner's
        alphabet.  The planner certifies against them in the given
        order and falls back to whole-document evaluation when none
        certifies.
        """
        resolved = []
        for splitter in splitters:
            if isinstance(splitter, Splitter):
                resolved.append(splitter)
            elif isinstance(splitter, str):
                resolved.append(
                    Splitter.named(splitter, self._spanner.alphabet)
                )
            else:
                raise ReproError(
                    f"split_by takes Splitter objects or registry "
                    f"names, got {type(splitter).__name__}"
                )
        return self._reconfigure(
            splitters=self._splitters + tuple(resolved)
        )

    def method(self, name: str) -> "Query":
        """Select the certification procedure: ``"general"`` (exact,
        default), ``"auto"`` (tractable fragment when applicable), or
        ``"fast"`` (PTIME fragment only — candidates outside it are
        skipped, falling back to whole-document evaluation)."""
        from repro.core.api import check_method

        check_method(name)
        return self._reconfigure(method=name)

    def workers(self, count: int) -> "Query":
        """Process-pool size for chunk evaluation (0 = in-process)."""
        return self._reconfigure(workers=count)

    def batch_size(self, size: int) -> "Query":
        """Documents per scheduler pass (streaming granularity)."""
        return self._reconfigure(batch_size=size)

    def chunk_cache_limit(self, limit: Optional[int]) -> "Query":
        """Bound the corpus-wide chunk cache (LRU; ``None`` = off)."""
        return self._reconfigure(chunk_cache_limit=limit)

    def indexed(self, index=None) -> "Query":
        """Enable index-backed chunk prefiltering (:mod:`repro.index`).

        With a prebuilt index the query's engine answers "could this
        chunk match?" from posting lists; accepted are a
        :class:`repro.index.CorpusIndex`, a mmap-backed
        :class:`repro.index.store.SegmentedIndex`, or a *path* to a
        persisted index of either format (opened lazily via
        :func:`repro.index.store.open_index` when :meth:`over` runs).
        With no argument an index over the target corpus is built
        automatically when :meth:`over` runs (indexing cost paid once,
        on the first corpus this query sees).  Prefiltering never
        changes results: chunks are skipped only when the certified
        plan provably produces nothing on them, and a spanner with no
        extractable factors falls back to full evaluation.
        """
        from repro.index import CorpusIndex, SegmentedIndex

        if (index is not None
                and not isinstance(index, (str, CorpusIndex,
                                           SegmentedIndex))):
            raise ReproError(
                f"indexed() takes a repro.index.CorpusIndex, a "
                f"repro.index.store.SegmentedIndex, a path to a "
                f"persisted index, or no argument to auto-index on "
                f".over(); got {type(index).__name__}"
            )
        return self._reconfigure(index=index if index is not None else True)

    def traced(self, tracer=None) -> "Query":
        """Collect phase spans and metrics while this query runs.

        With no argument a fresh enabled
        :class:`repro.obs.trace.Tracer` is attached; pass your own to
        aggregate several queries into one trace.  The trace is
        reachable from the results — ``results.trace`` is the tracer,
        ``results.explain()["trace"]`` the per-phase rollup — and
        covers worker processes too (their spans are merged back by
        the scheduler).  Untraced queries pay no tracing cost.
        """
        from repro.obs.trace import Tracer

        if tracer is None:
            tracer = Tracer()
        elif not isinstance(tracer, Tracer):
            raise ReproError(
                f"traced() takes a repro.obs.Tracer (or no argument "
                f"for a fresh one), got {type(tracer).__name__}"
            )
        return self._reconfigure(tracer=tracer)

    def recorded(self, capacity: int = 256,
                 slow_ms: Optional[float] = None,
                 keep_slow: int = 64,
                 capture_spans: bool = True) -> "Query":
        """Attach a query flight recorder to the service this chain
        will build (:meth:`serve`).

        The service then retains the last ``capacity`` completed
        queries as :class:`repro.obs.flight.QueryRecord` objects —
        reachable fluently as ``result.record`` on every
        :class:`repro.serve.ServiceResult` and live over HTTP at
        ``GET /debug/queries`` — and keeps queries slower than
        ``slow_ms`` milliseconds (plus every deadline miss) in a
        separate slow-query log with their full span tree and explain
        payload.  ``capture_spans=False`` records timings and counters
        without enabling tracing (the minimum-overhead mode the CI
        A/B gate measures).
        """
        from repro.obs.flight import FlightRecorder

        return self._evolve(flight=FlightRecorder(
            capacity=capacity,
            slow_threshold=(slow_ms / 1000.0
                            if slow_ms is not None else None),
            keep_slow=keep_slow,
            capture_spans=capture_spans,
        ))

    def using(self, engine) -> "Query":
        """Execute on an existing :class:`repro.engine.
        ExtractionEngine` (its registry, caches, and pool) instead of
        building a dedicated one.

        The engine then owns the execution shape, so further
        :meth:`split_by`/:meth:`method`/:meth:`workers`/... calls on
        the pinned query raise :class:`repro.errors.ReproError` —
        configure first, pin last.
        """
        return self._evolve(engine=engine, engine_explicit=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def spanner(self) -> Spanner:
        return self._spanner

    @property
    def splitters(self) -> Tuple[Splitter, ...]:
        return self._splitters

    def engine(self):
        """The engine this query executes on (built once per query)."""
        if self._engine is None:
            from repro.engine import ExtractionEngine

            registered = [
                splitter.registered(priority=len(self._splitters) - index)
                for index, splitter in enumerate(self._splitters)
            ]
            object.__setattr__(
                self, "_engine",
                ExtractionEngine(
                    registered,
                    workers=self._workers,
                    batch_size=self._batch_size,
                    chunk_cache_limit=self._chunk_cache_limit,
                    method=self._method,
                    corpus_index=(self._index
                                  if self._index not in (None, True)
                                  else None),
                    prefilter=True if self._index is not None else None,
                    tracer=self._tracer,
                ),
            )
        return self._engine

    def program(self):
        """The engine program for this query's spanner."""
        from repro.engine.engine import Program

        return Program.from_query(self._spanner)

    def certify(self):
        """The (cached) :class:`repro.runtime.planner.CertifiedPlan`."""
        return self.engine().certify(self.program())

    def analyse(self):
        """Per-splitter :class:`repro.runtime.planner.SplitReport` rows
        (the paper's debugging scenario)."""
        return self.engine().planner.analyse(self._spanner.vsa())

    def explain(self):
        """The certificate report without executing anything."""
        return self.certify().explain()

    def over(self, corpus) -> ResultSet:
        """Certify (once, cached) and bind to ``corpus``; lazy results.

        Accepts a :class:`repro.engine.Corpus`, a mapping ``id ->
        text``, or a plain sequence of texts.  No document is touched
        until the returned :class:`ResultSet` is consumed — except
        under auto-indexing (:meth:`indexed` with no argument), which
        pays one full chunking-and-indexing pass over the corpus here,
        up front; pass a prebuilt index to keep ``over`` pass-free.
        """
        from repro.engine.engine import _as_corpus

        engine = self.engine()
        program = self.program()
        stats_before = engine.stats()
        certified = engine.certify(program)
        corpus = _as_corpus(corpus)
        if self._index is True and engine.index is None:
            # Auto-indexing: chunk the corpus exactly as the certified
            # plan will and index it once; subsequent .over() calls on
            # this query reuse the attached index.
            engine.attach_index(engine.build_index(corpus, program))
        elif self._index not in (None, True):
            target, current = self._index, engine.index
            if isinstance(target, str):
                # A path: open once; later .over() calls recognize the
                # already-attached index by its recorded source.
                if (getattr(current, "directory", None) != target
                        and getattr(current, "source_path", None)
                        != target):
                    engine.attach_index(target)
            elif current is not target:
                # A prebuilt index also reaches engines pinned via
                # .using().
                engine.attach_index(target)
        return ResultSet(engine, corpus, program, certified,
                         stats_before=stats_before)

    def serve(self, max_queue: int = 64,
              default_deadline: Optional[float] = None,
              name: Optional[str] = None):
        """A resident :class:`repro.serve.ExtractionService` for this
        query: the engine this chain configured (splitters, method,
        workers, index, tracing) becomes service-owned, with the
        query's spanner as the default program.

        The service takes ownership of the engine — submit queries
        through the service from here on, not through this query
        object.  ``max_queue`` bounds the admission queue
        (:class:`repro.errors.ServiceOverloadedError` past it);
        ``default_deadline`` (seconds) applies to submissions without
        their own.  Start it with ``with service:`` (or implicitly on
        first submission)::

            service = Q(spanner).split_by("tokens").workers(4).serve()
            with service:
                result = service.extract(texts, deadline=0.5)
        """
        from repro.serve import ExtractionService

        return ExtractionService(
            self.engine(),
            program=self.program(),
            max_queue=max_queue,
            default_deadline=default_deadline,
            name=name or self._spanner.name or "service",
            flight=self._flight,
        )

    def on(self, document: str) -> Set[SpanTuple]:
        """Single-document shortcut: the span tuples of ``document``."""
        results = self.over([document])
        return set(results["doc-0000"])

    def __repr__(self) -> str:
        names = ",".join(splitter.name for splitter in self._splitters)
        return (f"Q({self._spanner.name!r})"
                f".split_by({names})" if names else
                f"Q({self._spanner.name!r})")


def Q(spanner: object) -> Query:
    """Start a fluent query: ``Q(spanner)`` — the front door.

    ``spanner`` is a :class:`Spanner` (or anything coercible to one:
    a VSet-automaton, a fast executable with a specification).
    """
    return Query(spanner)
