"""The fluent :class:`Spanner` wrapper: algebra as operators.

A :class:`Spanner` is an immutable handle around anything the engine
can run (``SpannerLike``: a VSet-automaton, a
:class:`repro.runtime.fast.RegexSpanner`, a black box with a
specification) that layers the regular-spanner algebra of
:mod:`repro.spanners.algebra` onto Python operators::

    >>> a = Spanner.regex(".*x{a}.*", "ab")
    >>> b = Spanner.regex(".*x{b}.*", "ab")
    >>> sorted((t["x"].begin, t["x"].end) for t in (a | b).evaluate("ab"))
    [(1, 2), (2, 3)]

Wrappers stay thin: every construction delegates to the algebra's free
functions (which implement Appendix A of Fagin et al.), and the
wrapped automaton is what the decision procedures certify and the
compiled kernel executes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Union

from repro.core.spans import SpanTuple
from repro.errors import ReproError
from repro.spanners.vset_automaton import VSetAutomaton

SpannerOperand = Union["Spanner", VSetAutomaton]


class Spanner:
    """An immutable fluent wrapper around a document spanner.

    ``executable`` is what evaluates documents; ``specification`` is
    the VSet-automaton the decision procedures reason over (the
    executable itself when it already is one).  Instances are never
    mutated — every algebraic method returns a new :class:`Spanner`.
    """

    __slots__ = ("executable", "specification", "name")

    def __init__(
        self,
        spanner: object,
        specification: Optional[VSetAutomaton] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(spanner, Spanner):
            specification = specification or spanner.specification
            name = name or spanner.name
            spanner = spanner.executable
        if specification is None:
            if isinstance(spanner, VSetAutomaton):
                specification = spanner
            else:
                candidate = getattr(spanner, "specification", None)
                if isinstance(candidate, VSetAutomaton):
                    specification = candidate
        object.__setattr__(self, "executable", spanner)
        object.__setattr__(self, "specification", specification)
        object.__setattr__(self, "name", name or "spanner")

    def __setattr__(self, attribute: str, value: object) -> None:
        raise AttributeError("Spanner is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def regex(
        cls,
        pattern: str,
        alphabet: Iterable[str],
        name: Optional[str] = None,
    ) -> "Spanner":
        """Compile a regex formula (``x{...}`` captures) over
        ``alphabet``.

        Raises :class:`repro.errors.NotFunctionalError` for formulas
        outside the functional class RGX, e.g. ``(x{a})*``.
        """
        from repro.spanners.regex_formulas import compile_regex_formula

        automaton = compile_regex_formula(pattern, frozenset(alphabet))
        return cls(automaton, name=name or pattern)

    @classmethod
    def from_vsa(
        cls, automaton: VSetAutomaton, name: Optional[str] = None
    ) -> "Spanner":
        """Wrap an existing VSet-automaton."""
        if not isinstance(automaton, VSetAutomaton):
            raise ReproError(
                f"from_vsa needs a VSetAutomaton, got "
                f"{type(automaton).__name__}"
            )
        return cls(automaton, name=name)

    # ------------------------------------------------------------------
    # Introspection and evaluation
    # ------------------------------------------------------------------

    @property
    def automaton(self) -> Optional[VSetAutomaton]:
        """The specification automaton (alias used by unwrapping
        helpers such as :func:`repro.core.api._as_automaton`)."""
        return self.specification

    def vsa(self) -> VSetAutomaton:
        """The specification automaton, or a typed error without one."""
        if self.specification is None:
            raise ReproError(
                f"spanner {self.name!r} has no VSet-automaton "
                "specification; algebra and certification need one"
            )
        return self.specification

    @property
    def variables(self) -> FrozenSet:
        """The span variables (the output schema)."""
        if self.specification is not None:
            return self.specification.svars()
        return frozenset(getattr(self.executable, "variables", frozenset()))

    @property
    def alphabet(self) -> FrozenSet:
        """The document alphabet of the specification."""
        return self.vsa().doc_alphabet

    def evaluate(self, document: str) -> Set[SpanTuple]:
        """All span tuples of ``document`` (compiled-kernel path)."""
        return set(self.executable.evaluate(document))

    def __repr__(self) -> str:
        variables = ",".join(sorted(map(str, self.variables)))
        return f"Spanner({self.name!r}, variables={{{variables}}})"

    # ------------------------------------------------------------------
    # Algebra as operators (delegating to repro.spanners.algebra)
    # ------------------------------------------------------------------

    @classmethod
    def _coerce(cls, operand: SpannerOperand) -> "Spanner":
        if isinstance(operand, Spanner):
            return operand
        if isinstance(operand, VSetAutomaton):
            return cls(operand)
        return NotImplemented

    @classmethod
    def _coerce_strict(cls, operand: SpannerOperand) -> "Spanner":
        coerced = cls._coerce(operand)
        if coerced is NotImplemented:
            raise ReproError(
                f"cannot combine a Spanner with "
                f"{type(operand).__name__}; pass a Spanner or a "
                "VSetAutomaton"
            )
        return coerced

    def _derived(self, automaton: VSetAutomaton, name: str) -> "Spanner":
        return Spanner(automaton, name=name)

    def union(self, other: SpannerOperand) -> "Spanner":
        """``(P1 ∪ P2)(d) = P1(d) ∪ P2(d)`` — also ``p1 | p2``."""
        from repro.spanners.algebra import union

        other = self._coerce_strict(other)
        return self._derived(union(self.vsa(), other.vsa()),
                             f"({self.name} | {other.name})")

    def intersect(self, other: SpannerOperand) -> "Spanner":
        """Tuples produced by both spanners — also ``p1 & p2``."""
        from repro.spanners.algebra import intersect

        other = self._coerce_strict(other)
        return self._derived(intersect(self.vsa(), other.vsa()),
                             f"({self.name} & {other.name})")

    def difference(self, other: SpannerOperand) -> "Spanner":
        """``(P1 - P2)(d) = P1(d) - P2(d)`` — also ``p1 - p2``."""
        from repro.spanners.algebra import difference

        other = self._coerce_strict(other)
        return self._derived(difference(self.vsa(), other.vsa()),
                             f"({self.name} - {other.name})")

    def join(self, other: SpannerOperand) -> "Spanner":
        """Natural join ``P1 ⋈ P2`` over the shared variables."""
        from repro.spanners.algebra import natural_join

        other = self._coerce_strict(other)
        return self._derived(natural_join(self.vsa(), other.vsa()),
                             f"({self.name} |><| {other.name})")

    def project(self, *variables) -> "Spanner":
        """``π_Y P``: keep only the listed span variables.

        >>> pair = Spanner.regex("x{a}y{b}", "ab")
        >>> sorted(pair.project("y").evaluate("ab"))[0].variables()
        ('y',)
        """
        from repro.spanners.algebra import project

        keep = frozenset(variables)
        names = ",".join(sorted(map(str, keep)))
        return self._derived(project(self.vsa(), keep),
                             f"π[{names}]({self.name})")

    def __or__(self, other: SpannerOperand) -> "Spanner":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return self.union(coerced)

    def __and__(self, other: SpannerOperand) -> "Spanner":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return self.intersect(coerced)

    def __sub__(self, other: SpannerOperand) -> "Spanner":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented
        return self.difference(coerced)
