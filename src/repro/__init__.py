"""repro: Split-Correctness in Information Extraction (PODS 2019).

A from-scratch implementation of the document-spanner framework of
Doleschal, Kimelfeld, Martens, Nahshon and Neven: regular spanners
(regex formulas and VSet-automata), splitters, and the decision
procedures for split-correctness, splittability and self-splittability
with their tractable fragments, together with a runtime that exploits
split-correctness for parallel and incremental evaluation.

Quickstart::

    from repro import compile_regex_formula, token_splitter
    from repro import is_self_splittable, split_by

    alphabet = frozenset("ab .")
    extractor = compile_regex_formula(".*( )y{a+}( ).*", alphabet)
    tokens = token_splitter(alphabet)
    if is_self_splittable(extractor, tokens):
        results = split_by(extractor, tokens, "aa ab ba aa.")

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced results.
"""

from repro.core import (
    AnnotatedSplitter,
    BlackBoxSpanner,
    Span,
    SpanTuple,
    SpannerSignature,
    SpannerSymbol,
    SplitConstraint,
    annotated_split_correct,
    annotated_splittable,
    black_box_split_correct,
    canonical_split_spanner,
    compose,
    compose_semantics,
    compose_splitters,
    cover_condition,
    is_self_splittable,
    is_self_splittable_dfvsa,
    is_splittable,
    minimal_filter_language,
    self_splittability_witness,
    split_correct_dfvsa,
    split_correct_general,
    split_correct_witness,
    splits_of,
    splitters_commute,
    subsumes,
)
from repro.spanners import (
    VSetAutomaton,
    boolean_spanner,
    compile_regex_formula,
    determinize,
    dfvsa_contains,
    is_deterministic,
    is_dfvsa,
    is_weakly_deterministic,
    spanner_contains,
    spanner_equivalent,
)
from repro.splitters import (
    char_ngram_splitter,
    consecutive_sentence_pairs,
    fixed_window_splitter,
    is_disjoint,
    paragraph_splitter,
    record_splitter,
    sentence_splitter,
    separator_splitter,
    token_ngram_splitter,
    token_splitter,
    whole_document_splitter,
)
from repro.runtime import (
    IncrementalExtractor,
    Planner,
    evaluate_whole,
    split_by,
    split_by_parallel,
)
from repro.engine import Corpus, ExtractionEngine

__version__ = "1.1.0"

__all__ = [
    "AnnotatedSplitter",
    "BlackBoxSpanner",
    "Span",
    "SpanTuple",
    "SpannerSignature",
    "SpannerSymbol",
    "SplitConstraint",
    "annotated_split_correct",
    "annotated_splittable",
    "black_box_split_correct",
    "canonical_split_spanner",
    "compose",
    "compose_semantics",
    "compose_splitters",
    "cover_condition",
    "is_self_splittable",
    "is_self_splittable_dfvsa",
    "is_splittable",
    "minimal_filter_language",
    "self_splittability_witness",
    "split_correct_dfvsa",
    "split_correct_general",
    "split_correct_witness",
    "splits_of",
    "splitters_commute",
    "subsumes",
    "VSetAutomaton",
    "boolean_spanner",
    "compile_regex_formula",
    "determinize",
    "dfvsa_contains",
    "is_deterministic",
    "is_dfvsa",
    "is_weakly_deterministic",
    "spanner_contains",
    "spanner_equivalent",
    "char_ngram_splitter",
    "consecutive_sentence_pairs",
    "fixed_window_splitter",
    "is_disjoint",
    "paragraph_splitter",
    "record_splitter",
    "sentence_splitter",
    "separator_splitter",
    "token_ngram_splitter",
    "token_splitter",
    "whole_document_splitter",
    "evaluate_whole",
    "split_by",
    "split_by_parallel",
    "IncrementalExtractor",
    "Planner",
    "Corpus",
    "ExtractionEngine",
]
