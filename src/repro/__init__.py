"""repro: Split-Correctness in Information Extraction (PODS 2019).

A from-scratch implementation of the document-spanner framework of
Doleschal, Kimelfeld, Martens, Nahshon and Neven: regular spanners
(regex formulas and VSet-automata), splitters, and the decision
procedures for split-correctness, splittability and self-splittability
with their tractable fragments, together with a runtime and corpus
engine that exploit split-correctness for parallel, incremental and
cached evaluation.

Quickstart — the fluent query API is the front door::

    from repro import Q, Spanner

    spanner = Spanner.regex(".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}",
                            alphabet="ab .")
    results = Q(spanner).split_by("tokens").workers(4).over(corpus)
    for doc_id, tuples in results.stream():    # lazy, certified once
        print(doc_id, results.explain()["theorem"], tuples)

:class:`Spanner` carries the spanner algebra as operators (``|``,
``&``, ``-``, ``.project``, ``.join``); :class:`Splitter` names the
paper's splitter catalogue; :meth:`ResultSet.explain` reports the
certified plan, the selected theorem, and the engine statistics.  The
theorem-level entry points (``is_self_splittable``, ``split_correct``,
...) and the corpus engine remain available below the fluent surface.

Errors raised by the documented surface derive from
:class:`repro.errors.ReproError`.  See DESIGN.md for the
paper-to-module map and EXPERIMENTS.md for the reproduced results.
"""

from repro.errors import (
    CertificationError,
    DeadlineExceededError,
    IndexFormatError,
    NotFunctionalError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownSplitterError,
)
from repro.query import Q, Query, ResultSet, Spanner, Splitter
from repro.core import (
    AnnotatedSplitter,
    BlackBoxSpanner,
    Span,
    SpanTuple,
    SpannerSignature,
    SpannerSymbol,
    SplitConstraint,
    annotated_split_correct,
    annotated_splittable,
    black_box_split_correct,
    canonical_split_spanner,
    compose,
    compose_semantics,
    compose_splitters,
    cover_condition,
    is_self_splittable,
    is_self_splittable_dfvsa,
    is_splittable,
    minimal_filter_language,
    self_splittability_witness,
    split_correct_dfvsa,
    split_correct_general,
    split_correct_witness,
    splits_of,
    splitters_commute,
    subsumes,
)
from repro.spanners import (
    VSetAutomaton,
    boolean_spanner,
    compile_regex_formula,
    determinize,
    dfvsa_contains,
    is_deterministic,
    is_dfvsa,
    is_weakly_deterministic,
    spanner_contains,
    spanner_equivalent,
)
from repro.splitters import (
    char_ngram_splitter,
    consecutive_sentence_pairs,
    fixed_window_splitter,
    is_disjoint,
    paragraph_splitter,
    record_splitter,
    sentence_splitter,
    separator_splitter,
    token_ngram_splitter,
    token_splitter,
    whole_document_splitter,
)
from repro.runtime import (
    IncrementalExtractor,
    Planner,
    evaluate_whole,
    split_by,
    split_by_parallel,
)
from repro.engine import Corpus, Deadline, Document, ExtractionEngine, Program
from repro.index import (
    CorpusIndex,
    FactorSet,
    IndexFilter,
    SegmentedIndex,
    factors_of,
    open_index,
)
from repro.obs import Metrics, Tracer, kernel_metrics
from repro.runtime import RegisteredSplitter
from repro.serve import ExtractionService, ServiceResult, serve_http

__version__ = "1.4.0"

__all__ = [
    # The fluent query API (the documented front door).
    "Q",
    "Query",
    "Spanner",
    "Splitter",
    "ResultSet",
    # Typed exception hierarchy.
    "ReproError",
    "NotFunctionalError",
    "CertificationError",
    "UnknownSplitterError",
    "DeadlineExceededError",
    "IndexFormatError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    # Corpus engine.
    "Corpus",
    "Deadline",
    "Document",
    "ExtractionEngine",
    "Program",
    "RegisteredSplitter",
    # Resident serving layer (repro.serve).
    "ExtractionService",
    "ServiceResult",
    "serve_http",
    # Corpus index subsystem (literal/trigram prefiltering).
    "CorpusIndex",
    "FactorSet",
    "IndexFilter",
    "SegmentedIndex",
    "factors_of",
    "open_index",
    # Observability (tracing spans + metrics registry).
    "Tracer",
    "Metrics",
    "kernel_metrics",
    # Theorem-level procedures and building blocks.
    "AnnotatedSplitter",
    "BlackBoxSpanner",
    "Span",
    "SpanTuple",
    "SpannerSignature",
    "SpannerSymbol",
    "SplitConstraint",
    "annotated_split_correct",
    "annotated_splittable",
    "black_box_split_correct",
    "canonical_split_spanner",
    "compose",
    "compose_semantics",
    "compose_splitters",
    "cover_condition",
    "is_self_splittable",
    "is_self_splittable_dfvsa",
    "is_splittable",
    "minimal_filter_language",
    "self_splittability_witness",
    "split_correct_dfvsa",
    "split_correct_general",
    "split_correct_witness",
    "splits_of",
    "splitters_commute",
    "subsumes",
    "VSetAutomaton",
    "boolean_spanner",
    "compile_regex_formula",
    "determinize",
    "dfvsa_contains",
    "is_deterministic",
    "is_dfvsa",
    "is_weakly_deterministic",
    "spanner_contains",
    "spanner_equivalent",
    "char_ngram_splitter",
    "consecutive_sentence_pairs",
    "fixed_window_splitter",
    "is_disjoint",
    "paragraph_splitter",
    "record_splitter",
    "sentence_splitter",
    "separator_splitter",
    "token_ngram_splitter",
    "token_splitter",
    "whole_document_splitter",
    "evaluate_whole",
    "split_by",
    "split_by_parallel",
    "IncrementalExtractor",
    "Planner",
]
