"""Splittability: does *some* split-spanner work? (Section 5.2.)

For disjoint splitters the paper characterizes splittability via the
*canonical split-spanner* ``P_S^can`` (Proposition 5.9): on a chunk
``d`` it outputs every tuple that ``P`` outputs inside some context
document from which ``S`` extracts exactly ``d``.  Lemma 5.12 then
shows that ``P`` is splittable by a disjoint ``S`` iff
``P = P_S^can o S``, which together with Theorem 5.1 gives the PSPACE
procedure of Theorem 5.15.

The construction follows Appendix C's proof:  ``P'`` simulates ``P``
in three phases (before / inside / after the split region), ``S'`` is
the splitter with self-loops on the spanner's variable operations, the
``Start`` and ``End`` sets collect the state pairs reachable before
the split opens and co-reachable after it closes, and ``P_S^can`` is a
union of cross products between them.  (The paper's transition table
for phase 2 of ``P'`` lists only ``Gamma_V`` labels; letters must
clearly be included as well, which we do.)
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set, Tuple

from repro.automata.nfa import EPSILON, NFA
from repro.core.composition import splitter_variable
from repro.core.cover import cover_condition
from repro.core.split_correctness import split_correct_general
from repro.spanners.refwords import VarOp, gamma
from repro.spanners.vset_automaton import VSetAutomaton


def canonical_split_spanner(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> VSetAutomaton:
    """Proposition 5.9: the canonical split-spanner ``P_S^can``.

    ``P_S^can(d) = {t | exists d', s in S(d'), d'_s = d,
    (t >> s) in P(d')}``.  Polynomial-size construction.
    """
    p_nfa = spanner.valid_ref_nfa().trim()
    s_nfa = splitter.valid_ref_nfa().trim()
    x = splitter_variable(splitter)
    open_x, close_x = VarOp(x, False), VarOp(x, True)
    doc_alphabet = spanner.doc_alphabet | splitter.doc_alphabet
    variables = spanner.variables

    # --- Start: pairs (q_S, q_P) reachable on a common pure-Sigma
    # prefix, after both take the split-opening move (P's being a
    # silent phase switch).
    start_pairs = _sigma_product_reachable(
        s_nfa, p_nfa, {(s_nfa.initial, p_nfa.initial)}, doc_alphabet,
        forward=True,
    )
    start: Set[Tuple] = set()
    for q_s, q_p in start_pairs:
        for q_s2 in s_nfa.successors(q_s, open_x):
            start.add((q_s2, q_p))

    # --- End: pairs from which, after the split closes, both reach
    # acceptance on a common pure-Sigma suffix.
    end_seeds = {
        (q_s, q_p)
        for q_s in s_nfa.states
        for q_p in p_nfa.states
        if q_s in s_nfa.finals and q_p in p_nfa.finals
    }
    end_sigma = _sigma_product_reachable(
        s_nfa, p_nfa, end_seeds, doc_alphabet, forward=False
    )
    end: Set[Tuple] = set()
    for q_s in s_nfa.states:
        for q_s2 in s_nfa.successors(q_s, close_x):
            for q_s3, q_p in end_sigma:
                if q_s3 == q_s2:
                    end.add((q_s, q_p))

    # --- The mid-region product: S' (with self-loops on Gamma_V) and
    # P (phase 2), running jointly between Start and End.
    alphabet = doc_alphabet | gamma(variables)
    initial = ("can-init",)
    transitions = [(initial, EPSILON, pair) for pair in start]
    for q_s in s_nfa.states:
        for p_source, p_symbol, p_target in p_nfa.transitions():
            if p_symbol is EPSILON or isinstance(p_symbol, VarOp):
                transitions.append(((q_s, p_source), p_symbol,
                                    (q_s, p_target)))
    for s_source, s_symbol, s_target in s_nfa.transitions():
        if s_symbol is EPSILON:
            for q_p in p_nfa.states:
                transitions.append(((s_source, q_p), EPSILON,
                                    (s_target, q_p)))
        elif isinstance(s_symbol, VarOp):
            continue
        else:
            for p_source, p_symbol, p_target in p_nfa.transitions():
                if p_symbol == s_symbol:
                    transitions.append(((s_source, p_source), s_symbol,
                                        (s_target, p_target)))
    states = {initial} | set(end)
    nfa = NFA(alphabet, states, initial, end, transitions).trim()
    return VSetAutomaton(doc_alphabet, variables, nfa).relabel()


def _sigma_product_reachable(
    s_nfa: NFA,
    p_nfa: NFA,
    seeds: Set[Tuple],
    doc_alphabet,
    forward: bool,
) -> Set[Tuple]:
    """Pairs connected to ``seeds`` by a common pure-Sigma word.

    ``forward=True`` computes pairs reachable *from* the seeds;
    ``forward=False`` pairs that can *reach* a seed.  Epsilon moves of
    either automaton are included; variable operations are not (the
    context outside the split carries no operations in the canonical
    construction).
    """
    if forward:
        def moves(q_s, q_p):
            for q_s2 in s_nfa.successors(q_s, EPSILON):
                yield (q_s2, q_p)
            for q_p2 in p_nfa.successors(q_p, EPSILON):
                yield (q_s, q_p2)
            for symbol in doc_alphabet:
                for q_s2 in s_nfa.successors(q_s, symbol):
                    for q_p2 in p_nfa.successors(q_p, symbol):
                        yield (q_s2, q_p2)
    else:
        s_back, p_back = _backward_index(s_nfa), _backward_index(p_nfa)

        def moves(q_s, q_p):
            for q_s2 in s_back.get((q_s, EPSILON), ()):
                yield (q_s2, q_p)
            for q_p2 in p_back.get((q_p, EPSILON), ()):
                yield (q_s, q_p2)
            for symbol in doc_alphabet:
                for q_s2 in s_back.get((q_s, symbol), ()):
                    for q_p2 in p_back.get((q_p, symbol), ()):
                        yield (q_s2, q_p2)

    seen = set(seeds)
    queue = deque(seeds)
    while queue:
        q_s, q_p = queue.popleft()
        for pair in moves(q_s, q_p):
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return seen


def _backward_index(nfa: NFA):
    index = {}
    for source, symbol, target in nfa.transitions():
        index.setdefault((target, symbol), set()).add(source)
    return index


def is_splittable(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    require_disjoint: bool = True,
) -> bool:
    """Theorem 5.15: splittability for disjoint splitters (PSPACE).

    By Lemma 5.12 the three conditions (splittable, splittability
    condition, ``P = P_S^can o S``) coincide for disjoint splitters, so
    the test builds the canonical split-spanner and checks
    split-correctness.  ``require_disjoint=True`` verifies disjointness
    (Proposition 5.5) and raises on violation — decidability without
    it is open (Section 8).
    """
    if require_disjoint:
        from repro.splitters.disjointness import is_disjoint

        if not is_disjoint(splitter):
            raise ValueError(
                "splittability is only characterized for disjoint "
                "splitters (the general case is open, Section 8)"
            )
    if not cover_condition(spanner, splitter, disjoint=True):
        return False
    canonical = canonical_split_spanner(spanner, splitter)
    return split_correct_general(spanner, canonical, splitter)


def splittability_witness(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> Optional[VSetAutomaton]:
    """The canonical split-spanner when ``P`` is splittable, else None.

    By Lemma 5.14 every valid split-spanner contains ``P_S^can``, so
    returning the canonical one is the natural normal form.
    """
    if is_splittable(spanner, splitter):
        return canonical_split_spanner(spanner, splitter)
    return None
