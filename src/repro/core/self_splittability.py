"""Self-splittability: is ``P = P o S``? (Section 5.3.)

Self-splittability is split-correctness with ``P_S = P`` (Definition
3.1(3)); the complexity results are Theorem 5.16 (PSPACE-complete in
general) and Theorem 5.17 (polynomial time for dfVSA with disjoint
splitters, an immediate corollary of Theorem 5.7).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.split_correctness import (
    split_correct_dfvsa,
    split_correct_general,
    split_correct_witness,
)
from repro.spanners.vset_automaton import VSetAutomaton


def is_self_splittable(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> bool:
    """Theorem 5.16: decide ``P = P o S`` (PSPACE procedure)."""
    return split_correct_general(spanner, spanner, splitter)


def is_self_splittable_dfvsa(
    spanner: VSetAutomaton, splitter: VSetAutomaton, check: bool = True
) -> bool:
    """Theorem 5.17: polynomial time for dfVSA and disjoint splitters."""
    return split_correct_dfvsa(spanner, spanner, splitter, check=check)


def self_splittability_witness(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> Optional[Tuple[Tuple, "object"]]:
    """A ``(document, tuple)`` pair where ``P`` and ``P o S`` differ."""
    return split_correct_witness(spanner, spanner, splitter)
