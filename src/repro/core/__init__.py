"""The split-correctness framework (Sections 3, 5, 6, 7 of the paper).

This is the paper's primary contribution: splitters, the composition
``P o S``, and the decision problems Split-correctness, Splittability
and Self-splittability with their general (PSPACE) and tractable
(dfVSA + disjoint splitter) procedures, plus the Section 6 reasoning
problems and the Section 7 extensions (black boxes, regular filters,
annotated splitters).
"""

from repro.core.spans import EMPTY_TUPLE, Span, SpanTuple, all_spans, whole_span
from repro.core.composition import (
    compose,
    compose_semantics,
    splits_of,
    splitter_variable,
)
from repro.core.cover import (
    cover_condition,
    cover_condition_disjoint,
    cover_condition_general,
)
from repro.core.split_correctness import (
    split_correct_dfvsa,
    split_correct_general,
    split_correct_witness,
)
from repro.core.splittability import (
    canonical_split_spanner,
    is_splittable,
    splittability_witness,
)
from repro.core.self_splittability import (
    is_self_splittable,
    is_self_splittable_dfvsa,
    self_splittability_witness,
)
from repro.core.reasoning import (
    compose_splitters,
    self_split_transfers,
    splitters_commute,
    subsumes,
)
from repro.core.black_box import (
    BlackBoxSpanner,
    SpannerSignature,
    SpannerSymbol,
    SplitConstraint,
    black_box_split_correct,
    evaluate_join,
    evaluate_join_split,
    join_relations,
)
from repro.core.filters import (
    FilteredSplitter,
    filtered_splitter_for,
    minimal_filter_language,
    self_splittable_with_filter,
    split_correct_with_filter,
    splittable_with_filter,
)
from repro.core.annotated import (
    AnnotatedSplitter,
    annotated_split_correct,
    annotated_split_correct_highlander,
    annotated_splittable,
    canonical_key_mapping,
    compose_annotated,
)

__all__ = [
    "EMPTY_TUPLE",
    "Span",
    "SpanTuple",
    "all_spans",
    "whole_span",
    "compose",
    "compose_semantics",
    "splits_of",
    "splitter_variable",
    "cover_condition",
    "cover_condition_disjoint",
    "cover_condition_general",
    "split_correct_dfvsa",
    "split_correct_general",
    "split_correct_witness",
    "canonical_split_spanner",
    "is_splittable",
    "splittability_witness",
    "is_self_splittable",
    "is_self_splittable_dfvsa",
    "self_splittability_witness",
    "compose_splitters",
    "self_split_transfers",
    "splitters_commute",
    "subsumes",
    "BlackBoxSpanner",
    "SpannerSignature",
    "SpannerSymbol",
    "SplitConstraint",
    "black_box_split_correct",
    "evaluate_join",
    "evaluate_join_split",
    "join_relations",
    "FilteredSplitter",
    "filtered_splitter_for",
    "minimal_filter_language",
    "self_splittable_with_filter",
    "split_correct_with_filter",
    "splittable_with_filter",
    "AnnotatedSplitter",
    "annotated_split_correct",
    "annotated_split_correct_highlander",
    "annotated_splittable",
    "canonical_key_mapping",
    "compose_annotated",
]
