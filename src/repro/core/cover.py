"""The cover condition (Definition 5.2, Lemmas 5.3-5.6).

A spanner ``P`` and splitter ``S`` satisfy the cover condition when
every output tuple of ``P`` on any document is contained in some span
produced by ``S``.  It is a necessary condition for splittability
(Lemma 5.3), PSPACE-complete in general (Lemma 5.4), and decidable in
polynomial time for deterministic functional VSet-automata with
*disjoint* splitters (Lemma 5.6) by a reduction to containment of
unambiguous finite automata.

The tractable procedure builds the proof's automata ``A_P`` and
``A_S`` over the bit-extended alphabet ``(Sigma + Gamma_V) x {0, 1}``
literally.  One corner case surfaced during this reproduction: when an
output tuple consists solely of empty spans at the boundary between
two *adjacent* disjoint splits, both splits cover the tuple and
``A_S`` has two accepting runs — it is then not unambiguous and the
counting-based containment test does not apply.  The implementation
detects this (an :class:`repro.automata.ufa.AmbiguityError`) and falls
back to the general procedure; see DESIGN.md for discussion.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.automata.nfa import EPSILON, NFA
from repro.automata.ufa import AmbiguityError, ufa_contains
from repro.core.composition import compose, splitter_variable
from repro.spanners.containment import spanner_contains
from repro.spanners.refwords import VarOp
from repro.spanners.vset_automaton import VSetAutomaton

Variable = Hashable

#: Bit marking positions inside the tuple zone (Lemma 5.6 encoding).
_IN, _OUT = 1, 0


def cover_condition_general(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> bool:
    """Lemma 5.4: the cover condition via ``P <= P_V o S``.

    ``P_V`` is the universal spanner selecting every tuple, so
    ``P_V o S`` selects exactly the tuples covered by some split.
    PSPACE in general.
    """
    universal = VSetAutomaton.universal_spanner(
        spanner.doc_alphabet | splitter.doc_alphabet, spanner.variables
    )
    covered = compose(universal, splitter)
    return spanner_contains(spanner, covered)


def cover_condition_disjoint(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    fallback: bool = True,
) -> bool:
    """Lemma 5.6: polynomial-time cover test for disjoint splitters.

    Builds the unambiguous automata ``A_P`` and ``A_S`` of the proof
    and decides ``L(A_P) <= L(A_S)`` with the Stearns-Hunt counting
    test.  ``spanner`` should be unambiguous on ref-words (guaranteed
    for dfVSA); ``splitter`` must be disjoint.

    With ``fallback=True`` the adjacent-empty-span corner case (see
    module docstring) silently falls back to the general procedure.
    """
    if not spanner.variables:
        # The 0-ary cover condition states that S outputs at least one
        # span whenever P produces the empty tuple; the bit encoding of
        # Lemma 5.6 needs at least one variable, so fall back.
        return cover_condition_general(spanner, splitter)
    a_p = _cover_automaton_p(spanner)
    a_s = _cover_automaton_s(spanner, splitter)
    try:
        return ufa_contains(a_p, a_s)
    except AmbiguityError:
        if not fallback:
            raise
        return cover_condition_general(spanner, splitter)


def cover_condition(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    disjoint: Optional[bool] = None,
) -> bool:
    """Decide the cover condition, choosing the best available method.

    ``disjoint`` may be supplied to skip the disjointness check of the
    splitter (Proposition 5.5).
    """
    from repro.splitters.disjointness import is_disjoint

    if disjoint is None:
        disjoint = is_disjoint(splitter)
    if disjoint:
        return cover_condition_disjoint(spanner, splitter)
    return cover_condition_general(spanner, splitter)


def _phase_partition(state: Tuple) -> Optional[str]:
    """Classify a validity-product state by its variable statuses.

    States of :meth:`VSetAutomaton.valid_ref_nfa` are pairs whose
    second component is the status tuple (0 unopened, 1 open,
    2 closed); this realizes the ``Q_pre / Q_mid / Q_post`` partition
    of Freydenberger et al. used in the proof of Lemma 5.6.
    """
    _, status = state
    if all(part == 0 for part in status):
        return "pre"
    if all(part == 2 for part in status):
        return "post"
    return "mid"


def _cover_automaton_p(spanner: VSetAutomaton) -> NFA:
    """The automaton ``A_P``: ref-words with the tuple zone marked.

    Accepts ``(s_1, b_1)...(s_n, b_n)`` where the ``s_k`` form a valid
    accepted ref-word of ``P`` and the bits are 1 exactly from the
    first variable operation through the last one.
    """
    base = spanner.valid_ref_nfa().trim()
    transitions = []
    states = set()
    for source, symbol, target in base.transitions():
        if symbol is EPSILON:
            for phase in (1, 2, 3):
                transitions.append(((phase, source), EPSILON, (phase, target)))
            continue
        src_part = _phase_partition(source)
        tgt_part = _phase_partition(target)
        if isinstance(symbol, VarOp):
            if src_part == "pre":
                # First operation: enter the zone.
                transitions.append(((1, source), (symbol, _IN), (2, target)))
            if tgt_part == "post":
                # Last operation: leave the zone right after it.
                transitions.append(((2, source), (symbol, _IN), (3, target)))
            if tgt_part != "post" and src_part != "pre":
                transitions.append(((2, source), (symbol, _IN), (2, target)))
        else:
            transitions.append(((1, source), (symbol, _OUT), (1, target)))
            transitions.append(((3, source), (symbol, _OUT), (3, target)))
            transitions.append(((2, source), (symbol, _IN), (2, target)))
    alphabet = {label for _, label, _ in transitions if label is not EPSILON}
    finals = {(3, f) for f in base.finals}
    states.add((1, base.initial))
    states.update(finals)
    if not alphabet:
        alphabet = {("cover-dummy", _OUT)}
    return NFA(alphabet, states, (1, base.initial), finals, transitions).trim()


def _cover_automaton_s(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> NFA:
    """The automaton ``A_S``: words of ``A_P`` whose zone fits a split.

    Simulates the splitter in five phases (before its variable opens,
    inside before the zone, inside the zone, inside after the zone,
    after its variable closes); the spanner's variable operations are
    self-loops because the splitter does not read them.
    """
    s_nfa = splitter.valid_ref_nfa().trim()
    x = splitter_variable(splitter)
    open_x, close_x = VarOp(x, False), VarOp(x, True)
    doc_alphabet = spanner.doc_alphabet | splitter.doc_alphabet
    var_ops = [VarOp(v, c) for v in spanner.variables for c in (False, True)]

    transitions = []
    for source, symbol, target in s_nfa.transitions():
        if symbol is EPSILON:
            for phase in (1, 2, 3, 4, 5):
                transitions.append(((phase, source), EPSILON, (phase, target)))
        elif symbol == open_x:
            transitions.append(((1, source), EPSILON, (2, target)))
        elif symbol == close_x:
            transitions.append(((4, source), EPSILON, (5, target)))
        elif isinstance(symbol, VarOp):
            continue
        else:
            transitions.append(((1, source), (symbol, _OUT), (1, target)))
            transitions.append(((2, source), (symbol, _OUT), (2, target)))
            transitions.append(((3, source), (symbol, _IN), (3, target)))
            transitions.append(((4, source), (symbol, _OUT), (4, target)))
            transitions.append(((5, source), (symbol, _OUT), (5, target)))
    for q in s_nfa.states:
        for op in var_ops:
            # Zone entry (first op), interior ops, and zone exit (last
            # op); the splitter state does not change on P's operations.
            transitions.append(((2, q), (op, _IN), (3, q)))
            transitions.append(((3, q), (op, _IN), (3, q)))
            transitions.append(((3, q), (op, _IN), (4, q)))
    finals = {(5, f) for f in s_nfa.finals}
    alphabet = {(symbol, bit)
                for symbol in doc_alphabet for bit in (_IN, _OUT)}
    alphabet |= {(op, _IN) for op in var_ops}
    states = {(1, s_nfa.initial)} | finals
    return NFA(alphabet, states, (1, s_nfa.initial), finals,
               transitions).trim()
