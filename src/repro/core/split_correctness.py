"""Split-correctness: is ``P = P_S o S``? (Section 5.1.)

Two procedures are provided, matching the paper's complexity
landscape:

* :func:`split_correct_general` -- Theorem 5.1: construct the
  polynomial-size automaton for ``P_S o S`` (Lemma C.2) and test
  spanner equivalence (PSPACE via the canonical extended form).
* :func:`split_correct_dfvsa` -- Theorem 5.7: for deterministic
  functional VSet-automata and a *disjoint* splitter, polynomial time.
  First the cover condition is checked (Lemma 5.6); then the proof's
  nondeterministic discrepancy search is run as a reachability problem
  over the deterministic triple product of ``P``, ``S``, and ``P_S``,
  looking for a ref-word on which ``S`` accepts a split and exactly
  one of ``P`` and ``P_S`` accepts.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

from repro.core.composition import compose, splitter_variable
from repro.core.cover import cover_condition_disjoint
from repro.spanners.containment import equivalence_witness, spanner_equivalent
from repro.spanners.determinism import is_deterministic
from repro.spanners.refwords import VarOp
from repro.spanners.vset_automaton import VSetAutomaton

_DEAD = ("dead",)


def split_correct_general(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
) -> bool:
    """Theorem 5.1: split-correctness for arbitrary regular spanners."""
    _check_compatible(spanner, split_spanner)
    composed = compose(split_spanner, splitter)
    return spanner_equivalent(spanner, composed)


def split_correct_witness(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
) -> Optional[Tuple[Tuple, "object"]]:
    """A ``(document, tuple)`` pair on which ``P`` and ``P_S o S``
    differ, or ``None`` when split-correct."""
    composed = compose(split_spanner, splitter)
    return equivalence_witness(spanner, composed)


def split_correct_dfvsa(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    check: bool = True,
) -> bool:
    """Theorem 5.7: polynomial-time split-correctness.

    Requires ``spanner`` and ``split_spanner`` deterministic and
    functional and ``splitter`` a deterministic functional *disjoint*
    splitter; with ``check=True`` determinism is verified (functionality
    and disjointness are assumed from the caller, cf.
    :func:`repro.core.api.split_correct` which verifies everything).
    """
    _check_compatible(spanner, split_spanner)
    if check:
        for name, automaton in (
            ("spanner", spanner),
            ("split spanner", split_spanner),
            ("splitter", splitter),
        ):
            if not is_deterministic(automaton):
                raise ValueError(f"{name} must be deterministic (dfVSA)")
    if not cover_condition_disjoint(spanner, splitter):
        return False
    return not _discrepancy_reachable(spanner, split_spanner, splitter)


def _step(automaton: VSetAutomaton, state, symbol):
    """Deterministic step; ``_DEAD`` absorbs missing transitions."""
    if state is _DEAD:
        return _DEAD
    successors = automaton.nfa.successors(state, symbol)
    if not successors:
        return _DEAD
    (successor,) = successors
    return successor


def _discrepancy_reachable(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
) -> bool:
    """The proof's on-the-fly search for a split where ``P`` and
    ``P_S`` behave differently.

    Simulates guessing a ref-word over ``Sigma + Gamma_V + Gamma_x``
    symbol by symbol.  Because all three automata are deterministic the
    configuration space is the plain triple product with a phase flag,
    and reachability of an accepting discrepancy decides the problem.
    Variable operations outside the split are not explored: by the
    (already verified) cover condition they cannot matter.
    """
    x = splitter_variable(splitter)
    open_x, close_x = VarOp(x, False), VarOp(x, True)
    doc_alphabet = (
        spanner.doc_alphabet
        | split_spanner.doc_alphabet
        | splitter.doc_alphabet
    )
    var_ops = [
        VarOp(v, c) for v in sorted(spanner.variables, key=str)
        for c in (False, True)
    ]
    # Phases: 0 before the split opens, 1 inside, 2 after it closed.
    start = (spanner.nfa.initial, splitter.nfa.initial, None, 0)
    seen = {start}
    queue = deque([start])
    while queue:
        q_p, q_s, q_ps, phase = queue.popleft()
        if phase == 2 and q_s in splitter.nfa.finals:
            p_accepts = q_p is not _DEAD and q_p in spanner.nfa.finals
            ps_accepts = (
                q_ps is not _DEAD and q_ps in split_spanner.nfa.finals
            )
            if p_accepts != ps_accepts:
                return True
        moves = []
        for symbol in doc_alphabet:
            next_ps = _step(split_spanner, q_ps, symbol) if phase == 1 else q_ps
            moves.append(
                (_step(spanner, q_p, symbol),
                 _step(splitter, q_s, symbol),
                 next_ps,
                 phase)
            )
        if phase == 1:
            for op in var_ops:
                moves.append(
                    (_step(spanner, q_p, op),
                     q_s,
                     _step(split_spanner, q_ps, op),
                     1)
                )
        if phase == 0:
            next_s = _step(splitter, q_s, open_x)
            if next_s is not _DEAD:
                moves.append((q_p, next_s, split_spanner.nfa.initial, 1))
        elif phase == 1:
            next_s = _step(splitter, q_s, close_x)
            if next_s is not _DEAD:
                moves.append((q_p, next_s, q_ps, 2))
        for config in moves:
            q_p2, q_s2, _q_ps2, _ = config
            if q_s2 is _DEAD:
                continue
            if config not in seen:
                seen.add(config)
                queue.append(config)
    return False


def _check_compatible(
    spanner: VSetAutomaton, split_spanner: VSetAutomaton
) -> None:
    if spanner.variables != split_spanner.variables:
        raise ValueError(
            "P and P_S must use the same variables: "
            f"{sorted(map(str, spanner.variables))} vs "
            f"{sorted(map(str, split_spanner.variables))}"
        )
