"""Splitters with regular filters (Section 7.2).

A splitter with filter ``S[L]`` behaves like ``S`` on documents in
``L`` and outputs nothing otherwise — a precondition such as "the
document is a well-formed log".  Lemma 7.5 shows the *minimal* useful
filter is ``L_P = {d : P(d) != {}}``, so the existential problems
("is there a filter language that makes things work?") reduce to the
corresponding plain problems with ``S[L_P]`` (Theorems 7.6, 7.7).
"""

from __future__ import annotations

from typing import Set

from repro.automata.nfa import NFA
from repro.core.spans import Span
from repro.spanners.algebra import restrict_to_language
from repro.spanners.vset_automaton import VSetAutomaton


class FilteredSplitter:
    """The splitter with filter ``S[L]`` (a pair of splitter and NFA)."""

    def __init__(self, splitter: VSetAutomaton, language: NFA) -> None:
        self.splitter = splitter
        self.language = language

    def evaluate(self, document: str):
        """``S[L](d)``: ``S(d)`` if ``d`` is in ``L``, else empty."""
        if not self.language.accepts(document):
            return set()
        return self.splitter.evaluate(document)

    def splits(self, document: str) -> Set[Span]:
        from repro.core.composition import splits_of

        if not self.language.accepts(document):
            return set()
        return splits_of(self.splitter, document)

    def as_splitter(self) -> VSetAutomaton:
        """An ordinary splitter equivalent to ``S[L]``.

        Splitters with filter are no more powerful than splitters
        (Section 7.2); the construction is the language restriction
        ``S |><| pi_{}(L)``.
        """
        return restrict_to_language(self.splitter, self.language)


def minimal_filter_language(spanner: VSetAutomaton) -> NFA:
    """Lemma 7.5's ``L_P``: documents on which ``P`` produces output."""
    return spanner.match_language()


def filtered_splitter_for(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> FilteredSplitter:
    """The splitter ``S[L_P]`` used by Theorems 7.6 and 7.7."""
    return FilteredSplitter(splitter, minimal_filter_language(spanner))


def split_correct_with_filter(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
) -> bool:
    """Theorem 7.6: is there a regular ``L`` with ``P = P_S o S[L]``?

    By Lemma 7.5 it suffices to test ``L = L_P``; requires ``P``
    functional (guaranteed for compiled regex formulas).  PSPACE.
    """
    from repro.core.split_correctness import split_correct_general

    effective = filtered_splitter_for(spanner, splitter).as_splitter()
    return split_correct_general(spanner, split_spanner, effective)


def self_splittable_with_filter(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> bool:
    """Theorem 7.6 (self-splittability variant)."""
    return split_correct_with_filter(spanner, spanner, splitter)


def splittable_with_filter(
    spanner: VSetAutomaton, splitter: VSetAutomaton
) -> bool:
    """Theorem 7.7: splittability with a regular filter.

    Requires the splitter disjoint (the underlying splittability
    characterization of Theorem 5.15 does).
    """
    from repro.core.splittability import is_splittable

    effective = filtered_splitter_for(spanner, splitter).as_splitter()
    return is_splittable(spanner, effective)
