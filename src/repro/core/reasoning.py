"""Reasoning about splitters (Section 6).

Query planners manipulate splitters like relational operators:

* :func:`compose_splitters` materializes ``S2 o S1`` (Lemma 6.1);
* :func:`splitters_commute` decides commutativity w.r.t. a regular
  context language (Theorem 6.2, PSPACE-complete);
* :func:`subsumes` decides whether running ``S'`` on the chunks of
  ``S`` is a no-op (Theorem 6.3, PSPACE-complete);
* Observation 6.4 and Lemma 6.5 on transitivity have no decision
  procedure — :func:`self_split_transfers` packages the *sound
  inference* of Lemma 6.5 (self-splittability transfers along splitter
  subsumption) for use by the planner.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.nfa import NFA
from repro.core.composition import compose, splitter_variable
from repro.spanners.algebra import restrict_to_language
from repro.spanners.containment import spanner_equivalent
from repro.spanners.vset_automaton import VSetAutomaton


def compose_splitters(
    outer: VSetAutomaton, inner: VSetAutomaton
) -> VSetAutomaton:
    """Lemma 6.1: a VSet-automaton for ``outer o inner``.

    ``(outer o inner)(d)`` applies ``inner`` to ``d`` and ``outer`` to
    every chunk, e.g. sentences of paragraphs.  Polynomial time via the
    Lemma C.2 composition (the outer splitter is a unary spanner).
    """
    return compose(outer, inner)


def _align(
    left: VSetAutomaton, right: VSetAutomaton
) -> tuple:
    """Rename both splitters to a common variable for comparison."""
    target = ("split",)
    return (
        left.rename_variables({splitter_variable(left): target}),
        right.rename_variables({splitter_variable(right): target}),
    )


def splitters_commute(
    first: VSetAutomaton,
    second: VSetAutomaton,
    context: Optional[NFA] = None,
) -> bool:
    """Theorem 6.2: does ``S1 o S2 = S2 o S1`` on documents in ``R``?

    ``context=None`` means all documents (``R = Sigma*``).  The paper's
    page/paragraph example: if splitting by pages then paragraphs
    equals splitting by paragraphs then pages, the planner may choose
    either order.
    """
    one = compose_splitters(first, second)
    two = compose_splitters(second, first)
    one, two = _align(one, two)
    if context is not None:
        one = restrict_to_language(one, context)
        two = restrict_to_language(two, context)
    return spanner_equivalent(one, two)


def subsumes(
    splitter: VSetAutomaton,
    refiner: VSetAutomaton,
    context: Optional[NFA] = None,
) -> bool:
    """Theorem 6.3: does ``S`` subsume ``S'`` w.r.t. ``R``?

    ``S`` subsumes ``S'`` when ``S(d) = (S' o S)(d)`` for all
    ``d in R`` — i.e. re-splitting the chunks of ``S`` by ``S'``
    changes nothing (every sentence is a sentence of its paragraph).
    """
    composed = compose_splitters(refiner, splitter)
    left, right = _align(splitter, composed)
    if context is not None:
        left = restrict_to_language(left, context)
        right = restrict_to_language(right, context)
    return spanner_equivalent(left, right)


def self_split_transfers(
    spanner: VSetAutomaton,
    fine: VSetAutomaton,
    coarse: VSetAutomaton,
) -> bool:
    """Lemma 6.5 as a sound planner inference.

    If ``P = P o S1`` and ``S1 = S1 o S2`` then ``P = P o S2``: a
    spanner self-splittable by the fine splitter is self-splittable by
    any coarser splitter whose chunks the fine splitter tiles.  Returns
    ``True`` when both premises are verified to hold (so the
    conclusion is guaranteed); ``False`` means *unknown*, not
    non-splittability (cf. Observation 6.4).
    """
    from repro.core.self_splittability import is_self_splittable

    if not is_self_splittable(spanner, fine):
        return False
    refined = compose_splitters(fine, coarse)
    left, right = _align(fine, refined)
    return spanner_equivalent(left, right)
