"""Split-constrained black boxes (Section 7.1).

Real extraction pipelines join regular spanners with opaque components
(coreference resolvers, neural NER taggers, ...).  The framework treats
them as *black boxes* known only through split constraints
``pi <= S`` ("pi is self-splittable by S").  Theorem 7.4 gives the key
sufficient condition: if the splitter is disjoint, the signature is
connected, the regular part is splittable by ``S``, and every black box
is self-splittable by ``S``, then the whole join is splittable by
``S`` — with the concrete split-spanner
``alpha_S |><| P_1 |><| ... |><| P_k``.

This module provides the schema objects (signature, constraints,
instances), the Theorem 7.4 decision procedure, and a runtime that
evaluates joins of regular spanners with Python-callable black boxes —
either directly or chunk-by-chunk when the theorem licenses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.composition import compose_semantics
from repro.core.spans import SpanTuple
from repro.spanners.vset_automaton import VSetAutomaton

Variable = Hashable


@dataclass(frozen=True)
class SpannerSymbol:
    """A named slot ``pi_i`` in a spanner signature."""

    name: str
    variables: FrozenSet[Variable]

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("a spanner symbol needs at least one variable")


@dataclass(frozen=True)
class SpannerSignature:
    """A collection of spanner symbols ``{pi_1, ..., pi_k}``.

    The paper requires the underlying hypergraph (symbols as
    hyperedges over their variables) to be *connected*; Theorem 7.4's
    proof uses connectivity to obtain a single covering split.
    """

    symbols: Tuple[SpannerSymbol, ...]

    def is_connected(self, extra_edges: Iterable[FrozenSet[Variable]] = ()) -> bool:
        """Connectivity of the variable hypergraph (plus extra edges)."""
        edges: List[FrozenSet[Variable]] = [s.variables for s in self.symbols]
        edges.extend(frozenset(e) for e in extra_edges)
        edges = [e for e in edges if e]
        if not edges:
            return True
        component: Set[Variable] = set(edges[0])
        remaining = edges[1:]
        changed = True
        while changed and remaining:
            changed = False
            still = []
            for edge in remaining:
                if edge & component:
                    component |= edge
                    changed = True
                else:
                    still.append(edge)
            remaining = still
        return not remaining


@dataclass(frozen=True)
class SplitConstraint:
    """A regular split constraint ``pi <= S``: the interpretation of
    ``pi`` is promised to be self-splittable by the splitter ``S``."""

    symbol: SpannerSymbol
    splitter: VSetAutomaton


class BlackBoxSpanner:
    """An opaque spanner: any callable from documents to span tuples.

    The callable returns an iterable of :class:`SpanTuple` (or plain
    ``{variable: Span}`` mappings) over exactly ``variables``.
    """

    def __init__(
        self,
        name: str,
        variables: Iterable[Variable],
        function: Callable[[str], Iterable],
    ) -> None:
        self.name = name
        self.variables = frozenset(variables)
        self._function = function

    def svars(self) -> FrozenSet[Variable]:
        return self.variables

    def evaluate(self, document: str) -> Set[SpanTuple]:
        results = set()
        for item in self._function(document):
            t = item if isinstance(item, SpanTuple) else SpanTuple(item)
            if frozenset(t.variables()) != self.variables:
                raise ValueError(
                    f"black box {self.name!r} produced a tuple over "
                    f"{t.variables()} instead of {sorted(map(str, self.variables))}"
                )
            results.add(t)
        return results

    def __repr__(self) -> str:
        return f"BlackBoxSpanner({self.name!r}, vars={sorted(map(str, self.variables))})"


def join_relations(
    relations: Sequence[Set[SpanTuple]],
) -> Set[SpanTuple]:
    """Natural join of span relations (Definition A.1, executed)."""
    if not relations:
        return {SpanTuple({})}
    result = relations[0]
    for relation in relations[1:]:
        joined: Set[SpanTuple] = set()
        for left in result:
            for right in relation:
                if left.agrees_with(right):
                    joined.add(left.join(right))
        result = joined
    return result


def black_box_split_correct(
    alpha: VSetAutomaton,
    signature: SpannerSignature,
    constraints: Sequence[SplitConstraint],
    splitter: VSetAutomaton,
) -> Optional[bool]:
    """Theorem 7.4's sufficient condition for black-box split-correctness.

    Returns ``True`` when the condition applies — the join
    ``alpha |><| P_1 |><| ... |><| P_k`` is guaranteed splittable by
    ``splitter`` for *every* instance satisfying the constraints.
    Returns ``None`` ("unknown") when it does not: the general problem
    is open (Section 8), and Lemma 7.3 shows the naive generalization
    fails, so no negative answer is ever derived here.
    """
    from repro.core.splittability import is_splittable
    from repro.splitters.disjointness import is_disjoint

    if not is_disjoint(splitter):
        return None
    if not signature.is_connected(extra_edges=[alpha.variables]):
        return None
    constrained = {c.symbol.name for c in constraints
                   if _same_splitter(c.splitter, splitter)}
    if {s.name for s in signature.symbols} - constrained:
        return None
    if not is_splittable(alpha, splitter):
        return None
    return True


def _same_splitter(left: VSetAutomaton, right: VSetAutomaton) -> bool:
    """Whether two splitters define the same function."""
    if left is right:
        return True
    from repro.core.reasoning import _align
    from repro.spanners.containment import spanner_equivalent

    a, b = _align(left, right)
    return spanner_equivalent(a, b)


def evaluate_join(
    alpha: VSetAutomaton,
    instances: Sequence[BlackBoxSpanner],
    document: str,
) -> Set[SpanTuple]:
    """Evaluate ``alpha |><| P_1 |><| ... |><| P_k`` on a document."""
    relations = [alpha.evaluate(document)]
    relations.extend(box.evaluate(document) for box in instances)
    return join_relations(relations)


def evaluate_join_split(
    alpha_split: VSetAutomaton,
    instances: Sequence[BlackBoxSpanner],
    splitter: VSetAutomaton,
    document: str,
) -> Set[SpanTuple]:
    """Evaluate the join chunk-by-chunk (the Theorem 7.4 plan).

    ``alpha_split`` is the split-spanner for the regular part (e.g. the
    canonical one); each chunk is processed independently —
    ``P_S = alpha_S |><| P_1 |><| ... |><| P_k`` — and results are
    shifted back, exactly the parallelizable plan the theorem licenses.
    """

    def per_chunk(chunk: str) -> Set[SpanTuple]:
        relations = [alpha_split.evaluate(chunk)]
        relations.extend(box.evaluate(chunk) for box in instances)
        return join_relations(relations)

    return compose_semantics(per_chunk, splitter, document)
