"""The composition ``P o S`` of a spanner and a splitter (Section 3).

``(P o S)(d)`` evaluates ``P`` on every substring extracted by the
splitter ``S`` and shifts the results back into ``d``.  Two layers are
provided:

* :func:`compose_semantics` -- the definition itself, executed on a
  concrete document (used by the runtime and as ground truth in tests);
* :func:`compose` -- the automaton-level construction of Lemmas C.1 and
  C.2: a VSet-automaton for ``P o S`` of polynomial size, built from
  the three-phase product of the proof (before the split, inside the
  split running ``P``, after the split).
"""

from __future__ import annotations

from typing import Callable, Hashable, Set

from repro.automata.nfa import EPSILON, NFA
from repro.core.spans import Span, SpanTuple
from repro.spanners.refwords import VarOp, gamma
from repro.spanners.vset_automaton import VSetAutomaton

Variable = Hashable


def splitter_variable(splitter: VSetAutomaton) -> Variable:
    """The unique variable ``x_S`` of a splitter (unary spanner)."""
    if len(splitter.variables) != 1:
        raise ValueError(
            f"a splitter must be unary, got arity {len(splitter.variables)}"
        )
    return next(iter(splitter.variables))


def splits_of(splitter: VSetAutomaton, document: str) -> Set[Span]:
    """``S(d)`` viewed as a set of spans (the paper's simplified view)."""
    variable = splitter_variable(splitter)
    return {t[variable] for t in splitter.evaluate(document)}


def compose_semantics(
    evaluate: Callable[[str], Set[SpanTuple]],
    splitter: VSetAutomaton,
    document: str,
) -> Set[SpanTuple]:
    """``(P o S)(d)`` by direct evaluation.

    ``evaluate`` is any function from documents to span relations (a
    compiled spanner, a black box, ...); the splitter must be a
    VSet-automaton so its spans can be enumerated.
    """
    results: Set[SpanTuple] = set()
    for span in splits_of(splitter, document):
        chunk = span.extract(document)
        for t in evaluate(chunk):
            results.add(t.shift(span))
    return results


def compose(spanner: VSetAutomaton, splitter: VSetAutomaton) -> VSetAutomaton:
    """A VSet-automaton for ``spanner o splitter`` (Lemma C.2).

    States are ``("pre", q_S)`` before the split opens, ``("mid", q_S,
    q_P)`` while the splitter variable is open and ``P`` runs on the
    chunk, and ``("post", q_S)`` afterwards.  The splitter is made
    functional first so that every accepting run opens and closes its
    variable exactly once.
    """
    if splitter_variable(splitter) in spanner.variables:
        splitter = splitter.rename_variables(
            {splitter_variable(splitter): ("xS-fresh",)}
        )
    s_nfa = splitter.valid_ref_nfa().trim()
    p_nfa = spanner.nfa
    x = splitter_variable(splitter)
    open_x = VarOp(x, False)
    close_x = VarOp(x, True)
    doc_alphabet = spanner.doc_alphabet | splitter.doc_alphabet
    variables = spanner.variables
    alphabet = doc_alphabet | gamma(variables)

    transitions = []
    states = set()

    def pre(q):
        return ("pre", q)

    def mid(q, p):
        return ("mid", q, p)

    def post(q):
        return ("post", q)

    for source, symbol, target in s_nfa.transitions():
        if symbol is EPSILON:
            transitions.append((pre(source), EPSILON, pre(target)))
            transitions.append((post(source), EPSILON, post(target)))
            for p in p_nfa.states:
                transitions.append((mid(source, p), EPSILON, mid(target, p)))
        elif symbol == open_x:
            transitions.append(
                (pre(source), EPSILON, mid(target, p_nfa.initial))
            )
        elif symbol == close_x:
            for p in p_nfa.finals:
                transitions.append((mid(source, p), EPSILON, post(target)))
        elif isinstance(symbol, VarOp):
            # A functional splitter has no other variable operations.
            continue
        else:
            transitions.append((pre(source), symbol, pre(target)))
            transitions.append((post(source), symbol, post(target)))
            for p_source, p_symbol, p_target in p_nfa.transitions():
                if p_symbol == symbol:
                    transitions.append(
                        (mid(source, p_source), symbol, mid(target, p_target))
                    )

    # Inside the split, P's epsilon moves and variable operations happen
    # while the splitter stands still.
    for q in s_nfa.states:
        for p_source, p_symbol, p_target in p_nfa.transitions():
            if p_symbol is EPSILON or isinstance(p_symbol, VarOp):
                transitions.append(
                    (mid(q, p_source), p_symbol, mid(q, p_target))
                )

    initial = pre(s_nfa.initial)
    finals = {post(q) for q in s_nfa.finals}
    states.update([initial])
    states.update(finals)
    nfa = NFA(alphabet, states, initial, finals, transitions).trim()
    composed = VSetAutomaton(doc_alphabet, variables, nfa)
    return composed.relabel()
