"""High-level entry points with automatic procedure selection.

The low-level modules expose one function per theorem; these wrappers
pick the best applicable procedure the way a query planner would:

* verify the preconditions of the tractable fragment (deterministic
  functional automata, disjoint splitter — Theorems 5.7/5.17) and use
  the polynomial procedure when they hold;
* otherwise fall back to the general PSPACE procedures (Theorems 5.1,
  5.15, 5.16).

``method`` can force a specific procedure: ``"fast"`` (raises if the
preconditions fail), ``"general"``, or ``"auto"`` (default).

These functions answer one certification question at a time.  To
*apply* the answers over whole corpora — certify once per program,
deduplicate repeated chunks, fan out over workers — use the corpus
engine, :class:`repro.engine.ExtractionEngine`, which is the preferred
corpus-level entry point and caches the certificates these procedures
produce (see :mod:`repro.engine.cache`).

All of the procedures here bottom out in automaton queries
(membership, emptiness, product emptiness, determinization) that
execute on the compiled integer/bitset kernel of
:mod:`repro.automata.compiled`; the runtime additionally lowers
certified plans onto that kernel at certify time, so certification is
also when evaluation gets compiled — never per document or per chunk.

Every entry point accepts either a raw :class:`VSetAutomaton` or a
fluent wrapper around one (:class:`repro.query.Spanner`,
:class:`repro.query.Splitter`, or anything else exposing the automaton
as ``.automaton`` or ``.specification``); errors are raised from the
typed hierarchy of :mod:`repro.errors` (each subclasses the built-in
exception the pre-fluent API used, so existing ``except ValueError``
handlers keep working).
"""

from __future__ import annotations

from typing import Optional

from repro.core.split_correctness import (
    split_correct_dfvsa,
    split_correct_general,
)
from repro.errors import CertificationError
from repro.spanners.determinism import is_deterministic
from repro.spanners.vset_automaton import VSetAutomaton

_METHODS = ("auto", "fast", "general")


def _as_automaton(spanner: object, role: str = "spanner") -> VSetAutomaton:
    """Unwrap fluent wrappers down to the underlying VSet-automaton.

    Accepts a :class:`VSetAutomaton` itself, or any object exposing one
    as ``.automaton`` (splitter wrappers, registered splitters) or
    ``.specification`` (spanner wrappers, fast executables).
    """
    if isinstance(spanner, VSetAutomaton):
        return spanner
    for attribute in ("automaton", "specification"):
        wrapped = getattr(spanner, attribute, None)
        if isinstance(wrapped, VSetAutomaton):
            return wrapped
    raise CertificationError(
        f"{role} must be a VSetAutomaton or wrap one "
        f"(got {type(spanner).__name__})"
    )


def _fast_applicable(
    splitter: VSetAutomaton, *spanners: VSetAutomaton
) -> bool:
    from repro.splitters.disjointness import is_disjoint

    for automaton in (*spanners, splitter):
        if not is_deterministic(automaton):
            return False
        if not automaton.is_functional():
            return False
    return is_disjoint(splitter)


def check_method(method: str) -> None:
    """Validate a certification-method name (the single source of
    truth for :func:`split_correct`, :class:`repro.runtime.planner.
    Planner` and :meth:`repro.query.Query.method`)."""
    if method not in _METHODS:
        raise CertificationError(
            f"method must be one of {_METHODS}, got {method!r}"
        )


_check_method = check_method


def split_correct(
    spanner: VSetAutomaton,
    split_spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    method: str = "auto",
) -> bool:
    """Is ``P = P_S o S``?  Auto-selects Theorem 5.7 or Theorem 5.1.

    Note the documented corner case of the fast procedure: a tuple
    consisting solely of empty spans on the boundary between two
    adjacent splits is covered by both, which the Theorem 5.7 argument
    (and this implementation of it) does not account for; use
    ``method="general"`` when such tuples can arise.
    """
    _check_method(method)
    spanner = _as_automaton(spanner, "spanner")
    split_spanner = _as_automaton(split_spanner, "split spanner")
    splitter = _as_automaton(splitter, "splitter")
    if method == "general":
        return split_correct_general(spanner, split_spanner, splitter)
    applicable = _fast_applicable(splitter, spanner, split_spanner)
    if method == "fast":
        if not applicable:
            raise CertificationError(
                "fast split-correctness requires dfVSA inputs and a "
                "disjoint splitter (Theorem 5.7)"
            )
        return split_correct_dfvsa(spanner, split_spanner, splitter,
                                   check=False)
    if applicable:
        return split_correct_dfvsa(spanner, split_spanner, splitter,
                                   check=False)
    return split_correct_general(spanner, split_spanner, splitter)


def self_splittable(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
    method: str = "auto",
) -> bool:
    """Is ``P = P o S``?  Auto-selects Theorem 5.17 or Theorem 5.16."""
    return split_correct(spanner, spanner, splitter, method=method)


def splittable(
    spanner: VSetAutomaton,
    splitter: VSetAutomaton,
) -> Optional[bool]:
    """Is some ``P_S`` with ``P = P_S o S`` available?

    Returns ``True``/``False`` for disjoint splitters (Theorem 5.15)
    and ``None`` for non-disjoint ones — decidability there is open
    (Section 8) — unless ``P`` happens to be *self*-splittable, which
    is decidable regardless and implies splittability.
    """
    from repro.core.splittability import is_splittable
    from repro.splitters.disjointness import is_disjoint

    spanner = _as_automaton(spanner, "spanner")
    splitter = _as_automaton(splitter, "splitter")
    if is_disjoint(splitter):
        return is_splittable(spanner, splitter, require_disjoint=False)
    if self_splittable(spanner, splitter, method="general"):
        return True
    return None
