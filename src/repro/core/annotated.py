"""Annotated splitters (Section 7.3 and Appendix E).

An annotated splitter outputs key/span pairs — e.g. an HTTP-log
splitter that tags each record as a GET or POST request — and a
*key-spanner mapping* assigns a (possibly different) split-spanner to
each key.  This generalizes splitters with filters, whose annotation
is the single bit "document satisfied the precondition".

The public representation keeps one splitter per key (equivalently,
one annotation function on final states, cf. Appendix E); all
decision procedures reduce to the unannotated machinery per key:

* :func:`annotated_split_correct` -- Theorem E.3 (PSPACE) via the
  algebraic identity of Lemma E.2;
* :func:`annotated_split_correct_highlander` -- Theorem E.4
  (polynomial time for dfVSA and *highlander* splitters: disjoint and
  at most one key per span);
* :func:`canonical_key_mapping` / :func:`annotated_splittable` --
  Theorem E.7 via the per-key canonical split-spanner (Lemma E.6).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Set, Tuple

from repro.core.composition import compose, splitter_variable
from repro.core.spans import Span
from repro.spanners.algebra import intersect, union
from repro.spanners.containment import spanner_equivalent
from repro.spanners.vset_automaton import VSetAutomaton

Key = Hashable


class AnnotatedSplitter:
    """An annotated splitter as a family ``{key: splitter}``.

    ``S_K(d) = {(key, s) : s in S_key(d)}``.  The equivalent
    annotation-function view (a VSet-automaton whose final states carry
    keys) is obtained by restricting finals per key; both directions
    are supported via :meth:`from_annotation`.
    """

    def __init__(self, keyed: Mapping[Key, VSetAutomaton]) -> None:
        if not keyed:
            raise ValueError("an annotated splitter needs at least one key")
        target = ("split",)
        self.keyed: Dict[Key, VSetAutomaton] = {}
        for key, splitter in keyed.items():
            variable = splitter_variable(splitter)
            self.keyed[key] = (
                splitter if variable == target
                else splitter.rename_variables({variable: target})
            )
        self.variable = target

    @classmethod
    def from_annotation(
        cls, splitter: VSetAutomaton, annotation: Mapping
    ) -> "AnnotatedSplitter":
        """Build from a VSA plus an annotation of its final states.

        ``annotation`` maps each final state of the underlying NFA to
        a key; ``S_key`` keeps only the finals annotated with ``key``.
        """
        missing = set(splitter.nfa.finals) - set(annotation)
        if missing:
            raise ValueError(f"finals without annotation: {missing}")
        keyed = {}
        for key in set(annotation.values()):
            finals = {q for q in splitter.nfa.finals
                      if annotation[q] == key}
            from repro.automata.nfa import NFA

            nfa = NFA(splitter.nfa.alphabet, splitter.nfa.states,
                      splitter.nfa.initial, finals,
                      splitter.nfa.transitions())
            keyed[key] = VSetAutomaton(splitter.doc_alphabet,
                                       splitter.variables, nfa)
        return cls(keyed)

    def keys(self):
        return self.keyed.keys()

    def evaluate(self, document: str) -> Set[Tuple[Key, Span]]:
        """``S_K(d)`` as a set of (key, span) pairs."""
        from repro.core.composition import splits_of

        results: Set[Tuple[Key, Span]] = set()
        for key, splitter in self.keyed.items():
            for span in splits_of(splitter, document):
                results.add((key, span))
        return results

    def union_splitter(self) -> VSetAutomaton:
        """The unannotated splitter (keys forgotten)."""
        splitters = list(self.keyed.values())
        result = splitters[0]
        for other in splitters[1:]:
            result = union(result, other)
        return result

    def is_highlander(self) -> bool:
        """Disjoint, and at most one key per (document, span) pair.

        "There can be only one": the condition under which Theorem E.4
        obtains tractability.
        """
        from repro.splitters.disjointness import is_disjoint

        if not is_disjoint(self.union_splitter()):
            return False
        keys = sorted(self.keyed, key=repr)
        for i, first in enumerate(keys):
            for second in keys[i + 1 :]:
                common = intersect(self.keyed[first], self.keyed[second])
                if not common.extended_nfa().is_empty():
                    return False
        return True


def compose_annotated(
    mapping: Mapping[Key, VSetAutomaton],
    annotated: AnnotatedSplitter,
) -> VSetAutomaton:
    """The spanner ``P_S o S_K`` (Lemma E.2).

    ``(P_S o S_K)(d)`` evaluates ``P_S(key)`` on every chunk annotated
    ``key``; realized as the union over keys of the ordinary
    compositions with the per-key splitters.
    """
    missing = set(annotated.keys()) - set(mapping)
    if missing:
        raise ValueError(f"mapping lacks spanners for keys: {missing}")
    composed = None
    for key in sorted(annotated.keys(), key=repr):
        part = compose(mapping[key], annotated.keyed[key])
        composed = part if composed is None else union(composed, part)
    return composed


def annotated_split_correct(
    spanner: VSetAutomaton,
    mapping: Mapping[Key, VSetAutomaton],
    annotated: AnnotatedSplitter,
) -> bool:
    """Theorem E.3: is ``P = P_S o S_K``?  (PSPACE in general.)"""
    return spanner_equivalent(spanner, compose_annotated(mapping, annotated))


def annotated_split_correct_highlander(
    spanner: VSetAutomaton,
    mapping: Mapping[Key, VSetAutomaton],
    annotated: AnnotatedSplitter,
    check: bool = True,
) -> bool:
    """Theorem E.4: polynomial time for dfVSA inputs and highlander
    splitters.

    The cover condition is checked once against the union splitter;
    then for each key the proof's discrepancy search runs with the
    per-key splitter and split-spanner.
    """
    from repro.core.cover import cover_condition_disjoint
    from repro.core.split_correctness import _discrepancy_reachable
    from repro.spanners.determinism import is_deterministic

    if check:
        if not is_deterministic(spanner):
            raise ValueError("spanner must be deterministic (dfVSA)")
        for key, split_spanner in mapping.items():
            if not is_deterministic(split_spanner):
                raise ValueError(f"split spanner for key {key!r} must be "
                                 "deterministic (dfVSA)")
    if not cover_condition_disjoint(spanner, annotated.union_splitter()):
        return False
    for key in sorted(annotated.keys(), key=repr):
        if _discrepancy_reachable(spanner, mapping[key],
                                  annotated.keyed[key]):
            return False
    return True


def canonical_key_mapping(
    spanner: VSetAutomaton, annotated: AnnotatedSplitter
) -> Dict[Key, VSetAutomaton]:
    """The canonical key-spanner mapping of Appendix E.

    ``P_S^can(key)`` is the ordinary canonical split-spanner of ``P``
    with respect to the per-key splitter ``S_key``.
    """
    from repro.core.splittability import canonical_split_spanner

    return {
        key: canonical_split_spanner(spanner, splitter)
        for key, splitter in annotated.keyed.items()
    }


def annotated_splittable(
    spanner: VSetAutomaton,
    annotated: AnnotatedSplitter,
    require_highlander: bool = True,
) -> bool:
    """Theorem E.7: annotated splittability for highlander splitters.

    By Lemma E.6, ``P`` is splittable by ``S_K`` iff it is splittable
    via the canonical key-spanner mapping.
    """
    if require_highlander and not annotated.is_highlander():
        raise ValueError(
            "annotated splittability is only characterized for "
            "highlander splitters (Lemma E.6)"
        )
    mapping = canonical_key_mapping(spanner, annotated)
    return annotated_split_correct(spanner, mapping, annotated)
