"""Spans, span tuples, and the shift operator (Section 2 of the paper).

A *span* ``[i, j>`` of a document ``d`` marks the substring starting at
(1-based) position ``i`` and ending just before position ``j``; the
paper's Figure 1 example ``[2,6> >> [7,13> = [8,12>`` is reproduced in
the doctests below.

>>> Span(2, 6) >> Span(7, 13)
Span(8, 12)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Mapping, Tuple

Variable = Hashable


@dataclass(frozen=True, order=True)
class Span:
    """A span ``[begin, end>`` with ``1 <= begin <= end``.

    Positions are 1-based and ``end`` is exclusive, exactly matching
    the paper's ``[i, j>`` notation; the empty span at position ``i``
    is ``Span(i, i)``.
    """

    begin: int
    end: int

    def __post_init__(self) -> None:
        if not 1 <= self.begin <= self.end:
            raise ValueError(f"invalid span [{self.begin}, {self.end}>")

    def __repr__(self) -> str:
        return f"Span({self.begin}, {self.end})"

    @property
    def length(self) -> int:
        """Number of characters covered."""
        return self.end - self.begin

    def extract(self, document: str) -> str:
        """The substring ``d[i,j>`` of ``document``.

        >>> Span(2, 4).extract("abcde")
        'bc'
        """
        if self.end > len(document) + 1:
            raise ValueError(f"{self!r} is not a span of a document of "
                             f"length {len(document)}")
        return document[self.begin - 1 : self.end - 1]

    def shift(self, context: "Span") -> "Span":
        """The shift operator ``self >> context`` (Section 3).

        If ``self`` is a span of the substring ``d[context>``, the
        result marks the same region inside the original document:
        ``[i', j'> >> [i, j> = [i' + (i-1), j' + (i-1)>``.

        >>> Span(2, 6).shift(Span(7, 13))
        Span(8, 12)
        """
        offset = context.begin - 1
        return Span(self.begin + offset, self.end + offset)

    def __rshift__(self, context: "Span") -> "Span":
        return self.shift(context)

    def unshift(self, context: "Span") -> "Span":
        """Inverse of :meth:`shift`: re-express within ``context``.

        Requires ``context`` to contain ``self``.
        """
        if not context.contains(self):
            raise ValueError(f"{context!r} does not contain {self!r}")
        offset = context.begin - 1
        return Span(self.begin - offset, self.end - offset)

    def overlaps(self, other: "Span") -> bool:
        """Paper definition: ``[i,j>`` and ``[i',j'>`` overlap iff
        ``i <= i' < j`` or ``i' <= i < j'``.

        >>> Span(1, 3).overlaps(Span(2, 2))
        True
        >>> Span(2, 2).overlaps(Span(2, 2))
        False
        """
        return (self.begin <= other.begin < self.end) or (
            other.begin <= self.begin < other.end
        )

    def disjoint(self, other: "Span") -> bool:
        """Negation of :meth:`overlaps`."""
        return not self.overlaps(other)

    def contains(self, other: "Span") -> bool:
        """``[i,j>`` contains ``[i',j'>`` iff ``i <= i' <= j' <= j``."""
        return self.begin <= other.begin and other.end <= self.end


def whole_span(document: str) -> Span:
    """The span ``[1, |d|+1>`` covering all of ``document``."""
    return Span(1, len(document) + 1)


def all_spans(document: str) -> Iterator[Span]:
    """Enumerate ``Spans(d)``: every ``[i,j>`` with ``1<=i<=j<=|d|+1``."""
    n = len(document)
    for i in range(1, n + 2):
        for j in range(i, n + 2):
            yield Span(i, j)


class SpanTuple(Mapping[Variable, Span]):
    """An immutable ``(V, d)``-tuple: a mapping from variables to spans.

    Hashable so span relations can be plain Python sets.

    >>> t = SpanTuple({"x": Span(1, 3)})
    >>> t["x"]
    Span(1, 3)
    >>> t >> Span(4, 8)
    SpanTuple({'x': Span(4, 6)})
    """

    __slots__ = ("_assignment", "_hash")

    def __init__(self, assignment: Mapping[Variable, Span]) -> None:
        self._assignment: Dict[Variable, Span] = dict(assignment)
        self._hash = hash(frozenset(self._assignment.items()))

    def __getitem__(self, variable: Variable) -> Span:
        return self._assignment[variable]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpanTuple):
            return self._assignment == other._assignment
        if isinstance(other, Mapping):
            return dict(self._assignment) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        items = ", ".join(
            f"{var!r}: {span!r}" for var, span in sorted(
                self._assignment.items(), key=lambda kv: str(kv[0])
            )
        )
        return f"SpanTuple({{{items}}})"

    def shift(self, context: Span) -> "SpanTuple":
        """Component-wise shift ``t >> s`` (Section 3)."""
        return SpanTuple(
            {var: span.shift(context) for var, span in self._assignment.items()}
        )

    def __rshift__(self, context: Span) -> "SpanTuple":
        return self.shift(context)

    def unshift(self, context: Span) -> "SpanTuple":
        """Component-wise inverse shift; ``context`` must cover the tuple."""
        return SpanTuple(
            {var: span.unshift(context) for var, span in self._assignment.items()}
        )

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(sorted(self._assignment, key=str))

    def enclosing_span(self) -> Span:
        """The minimal span containing every span of the tuple.

        This is the span ``[i, j>`` from the proof of Lemma 5.3; for the
        empty (0-ary) tuple there is no enclosure and ``ValueError`` is
        raised.
        """
        if not self._assignment:
            raise ValueError("the 0-ary tuple has no enclosing span")
        begin = min(span.begin for span in self._assignment.values())
        end = max(span.end for span in self._assignment.values())
        return Span(begin, end)

    def covered_by(self, span: Span) -> bool:
        """Whether ``span`` contains every span of the tuple (Def 5.2).

        The 0-ary tuple is covered by every span.
        """
        return all(span.contains(s) for s in self._assignment.values())

    def agrees_with(self, other: "SpanTuple") -> bool:
        """Whether the tuples agree on their shared variables (join)."""
        return all(
            self._assignment[var] == other[var]
            for var in self._assignment
            if var in other
        )

    def join(self, other: "SpanTuple") -> "SpanTuple":
        """The combined tuple (requires :meth:`agrees_with`)."""
        if not self.agrees_with(other):
            raise ValueError("tuples disagree on shared variables")
        merged = dict(self._assignment)
        merged.update(other._assignment)
        return SpanTuple(merged)


#: The unique 0-ary tuple (output of Boolean spanners).
EMPTY_TUPLE = SpanTuple({})
