"""Splitters: unary spanners that segment documents (Section 3).

Builders for the Introduction's catalogue of splitters plus the
disjointness decision procedure of Proposition 5.5.
"""

from repro.splitters.builders import (
    SPLIT_VAR,
    build_named,
    char_ngram_splitter,
    known_splitter_names,
    registry,
    consecutive_sentence_pairs,
    fixed_window_splitter,
    paragraph_splitter,
    record_splitter,
    sentence_splitter,
    separator_splitter,
    token_ngram_splitter,
    token_splitter,
    whole_document_splitter,
)
from repro.splitters.disjointness import (
    is_disjoint,
    overlap_witness,
    overlap_witness_exists,
)

__all__ = [
    "SPLIT_VAR",
    "build_named",
    "char_ngram_splitter",
    "known_splitter_names",
    "registry",
    "consecutive_sentence_pairs",
    "fixed_window_splitter",
    "paragraph_splitter",
    "record_splitter",
    "sentence_splitter",
    "separator_splitter",
    "token_ngram_splitter",
    "token_splitter",
    "whole_document_splitter",
    "is_disjoint",
    "overlap_witness",
    "overlap_witness_exists",
]
